#!/usr/bin/env python
"""Community information management: researchers, name variants, and the
mass-collaboration loop.

The DGE model's II+HI combination on a DBLP-flavoured workload:

1. extract person mentions and affiliations from researcher pages;
2. resolve which mentions co-refer ("David Smith" vs "D. Smith" vs
   "Smith, David") — with confusable hard negatives (distinct people who
   share a last name and first initial);
3. route exactly the *uncertain* pairs to a simulated crowd, aggregate
   votes with reputation weighting, convert them into must/cannot-link
   constraints, and re-resolve;
4. report pairwise F1 before and after feedback, and the crowd
   leaderboard the incentive scheme would display.

Run:  python examples/community_dblp.py
"""

from repro.datagen import PeopleCorpusConfig, generate_people_corpus
from repro.extraction import DictionaryExtractor, RegexExtractor
from repro.hi import (
    ReputationManager,
    SimulatedCrowd,
    aggregate_weighted,
)
from repro.hi.tasks import VerifyMatchTask
from repro.integration import EntityResolver, MatchConstraints, Mention


def pairwise_f1(clusters, truth_of):
    predicted = {
        (a, b)
        for cluster in clusters
        for i, a in enumerate(cluster.mention_ids)
        for b in cluster.mention_ids[i + 1:]
    }
    ids = sorted(truth_of)
    actual = {
        (ids[i], ids[j])
        for i in range(len(ids)) for j in range(i + 1, len(ids))
        if truth_of[ids[i]] == truth_of[ids[j]]
    }
    if not predicted or not actual:
        return 0.0
    tp = len(predicted & actual)
    precision, recall = tp / len(predicted), tp / len(actual)
    return 2 * precision * recall / (precision + recall) if tp else 0.0


def main() -> None:
    corpus, people, mention_map = generate_people_corpus(
        PeopleCorpusConfig(num_people=30, mentions_per_person=4,
                           confusable_fraction=0.5, seed=3)
    )
    print(f"Corpus: {len(corpus)} researcher pages, "
          f"{len(people)} real people\n")

    # -- IE: pull one person mention per page (with its affiliation).
    variants = {v: v for p in people for v in p.variants()}
    name_extractor = DictionaryExtractor(attribute="person", phrases=variants)
    affiliation_extractor = RegexExtractor(
        pattern=r"at (?P<affiliation>[A-Z][A-Za-z ]+?)[\.,]"
    )
    mentions, truth_of = [], {}
    mid = 0
    for doc in corpus:
        names = name_extractor.extract(doc)
        if not names:
            continue
        affiliations = affiliation_extractor.extract(doc)
        attrs = (
            (("affiliation", affiliations[0].value),) if affiliations else ()
        )
        mentions.append(Mention(mid, names[0].value, attrs))
        truth_of[mid] = mention_map[doc.doc_id]
        mid += 1
    print(f"IE produced {len(mentions)} person mentions")

    # -- II: automatic entity resolution.
    resolver = EntityResolver(threshold=0.86, attribute_weight=0.05)
    auto_clusters = resolver.resolve(mentions)
    auto_f1 = pairwise_f1(auto_clusters, truth_of)
    print(f"automatic ER: {len(auto_clusters)} clusters, "
          f"pairwise F1 = {auto_f1:.3f}")

    # -- HI: crowd on the uncertain pairs, reputation-weighted.
    crowd = SimulatedCrowd.mixed(
        [0.95, 0.92, 0.9, 0.6, 0.55], seed=11  # two sloppy workers
    )
    reputation = ReputationManager()
    # calibrate reputations with a handful of gold questions
    for i, pair in enumerate(resolver.uncertain_pairs(mentions, limit=10)):
        truth = truth_of[pair.left] == truth_of[pair.right]
        task = VerifyMatchTask(task_id=f"gold{i}", prompt="gold")
        for response in crowd.ask(task, truth):
            reputation.record_gold(response.worker_id,
                                   response.answer == truth)

    constraints = MatchConstraints()
    asked = 0
    for pair in resolver.uncertain_pairs(mentions, band=0.14, limit=60):
        truth = truth_of[pair.left] == truth_of[pair.right]
        task = VerifyMatchTask(
            task_id=f"pair-{pair.left}-{pair.right}",
            prompt=f"Do mentions {pair.left} and {pair.right} co-refer?",
        )
        responses = crowd.ask(task, truth)
        asked += 1
        answer, share = aggregate_weighted(responses, reputation.weights())
        reputation.record_agreement(responses, answer)
        if answer:
            constraints.add_must(pair.left, pair.right)
        else:
            constraints.add_cannot(pair.left, pair.right)
    print(f"HI asked the crowd about {asked} uncertain pairs "
          f"({len(constraints)} constraints collected)")

    curated_clusters = resolver.resolve(mentions, constraints)
    curated_f1 = pairwise_f1(curated_clusters, truth_of)
    print(f"curated ER  : {len(curated_clusters)} clusters, "
          f"pairwise F1 = {curated_f1:.3f} "
          f"({'+' if curated_f1 >= auto_f1 else ''}"
          f"{curated_f1 - auto_f1:.3f})\n")

    print("Crowd leaderboard (incentive points):")
    for worker_id, points in reputation.leaderboard(5):
        print(f"  {worker_id}: {points} points "
              f"(reputation {reputation.reputation(worker_id):.2f})")

    print("\nSample resolved entities:")
    for cluster in curated_clusters[:6]:
        member_names = [m.name for m in mentions
                        if m.mention_id in cluster.mention_ids]
        print(f"  {cluster.canonical_name}: {member_names}")


if __name__ == "__main__":
    main()
