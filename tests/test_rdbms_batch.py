"""Tests for the batched write path: insert_many + run_batch + recovery."""

import threading
import time

import pytest

from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.table import HeapTable
from repro.storage.rdbms.types import Column, ColumnType, SchemaError, TableSchema
from repro.telemetry.metrics import MetricsRegistry, use_registry


def _schema(name="items"):
    return TableSchema(
        name=name,
        columns=(
            Column("id", ColumnType.INT, nullable=False),
            Column("label", ColumnType.TEXT),
        ),
        primary_key="id",
    )


def _rows(n, start=0):
    return [{"id": i, "label": f"row-{i}"} for i in range(start, start + n)]


# ------------------------------------------------------------- heap table


def test_heap_insert_many_assigns_rids_in_order():
    table = HeapTable(_schema())
    rows = table.insert_many(_rows(5))
    assert [r.rid for r in rows] == [0, 1, 2, 3, 4]
    assert len(table) == 5
    assert table.get_by_pk(3).values["label"] == "row-3"


def test_heap_insert_many_is_atomic_on_pk_violation():
    table = HeapTable(_schema())
    table.insert({"id": 2, "label": "existing"})
    with pytest.raises(SchemaError):
        table.insert_many([{"id": 10, "label": "a"}, {"id": 2, "label": "dup"}])
    with pytest.raises(SchemaError):  # duplicate within the batch itself
        table.insert_many([{"id": 11, "label": "a"}, {"id": 11, "label": "b"}])
    assert len(table) == 1  # nothing from either failed batch landed


def test_heap_insert_many_empty():
    table = HeapTable(_schema())
    assert table.insert_many([]) == []


# ------------------------------------------------------------ transaction


def test_txn_insert_many_visible_after_commit():
    db = Database()
    db.create_table(_schema())
    stored = db.run(lambda t: t.insert_many("items", _rows(100)))
    assert len(stored) == 100
    assert db.table_size("items") == 100


def test_txn_insert_many_undone_on_abort():
    db = Database()
    db.create_table(_schema())
    db.create_index("items", "label")
    txn = db.begin()
    txn.insert_many("items", _rows(10))
    txn.abort()
    assert db.table_size("items") == 0
    assert db.run(lambda t: t.lookup("items", "label", "row-3")) == []


def test_txn_insert_many_maintains_indexes():
    db = Database()
    db.create_table(_schema())
    db.create_index("items", "label")
    db.run(lambda t: t.insert_many("items", _rows(20)))
    hits = db.run(lambda t: t.lookup("items", "label", "row-7"))
    assert [h.values["id"] for h in hits] == [7]


def test_run_batch_single_transaction():
    db = Database()
    db.create_table(_schema())
    results = db.run_batch([
        lambda t: t.insert_many("items", _rows(3)),
        lambda t: t.insert("items", {"id": 99, "label": "tail"}),
        lambda t: len(t.scan("items")),
    ])
    assert len(results[0]) == 3
    assert results[1].values["id"] == 99
    assert results[2] == 4


# -------------------------------------------------------- WAL + recovery


def _wal_records(db):
    return list(db._wal.records())


def test_insert_many_writes_one_wal_record_per_batch(tmp_path):
    db = Database(str(tmp_path))
    db.create_table(_schema())
    db.run(lambda t: t.insert_many("items", _rows(50)))
    records = _wal_records(db)
    inserts = [r for r in records if r.rec_type == "insert"]
    batches = [r for r in records if r.rec_type == "insert_many"]
    assert inserts == []
    assert len(batches) == 1
    assert len(batches[0].payload["rows"]) == 50
    db.close()


def test_insert_many_survives_recovery(tmp_path):
    db = Database(str(tmp_path))
    db.create_table(_schema())
    db.run(lambda t: t.insert_many("items", _rows(25)))
    db.close()  # "crash": reopen from WAL only

    recovered = Database(str(tmp_path))
    assert recovered.table_size("items") == 25
    assert recovered.run(
        lambda t: t.get_by_pk("items", 24)
    ).values["label"] == "row-24"
    recovered.close()


def test_uncommitted_insert_many_not_recovered(tmp_path):
    db = Database(str(tmp_path))
    db.create_table(_schema())
    txn = db.begin()
    txn.insert_many("items", _rows(5))
    # no commit — simulate a crash by abandoning the object
    db._wal._file.flush()
    db.close()

    recovered = Database(str(tmp_path))
    assert recovered.table_size("items") == 0
    recovered.close()


def test_batch_path_writes_fewer_wal_records_than_per_row(tmp_path):
    n = 200
    per_row = Database(str(tmp_path / "per_row"))
    per_row.create_table(_schema())
    for values in _rows(n):
        per_row.run(lambda t, v=values: t.insert("items", v))
    per_row_records = len(_wal_records(per_row))
    per_row.close()

    batched = Database(str(tmp_path / "batched"))
    batched.create_table(_schema())
    batched.run(lambda t: t.insert_many("items", _rows(n)))
    batched_records = len(_wal_records(batched))
    batched.close()

    # per-row: begin+insert+commit per fact; batched: 3 records total
    assert per_row_records >= 3 * n
    assert batched_records <= 5


# -------------------------------------------------------- telemetry metrics


def test_insert_many_records_wal_and_batch_metrics(tmp_path):
    registry = MetricsRegistry()
    with use_registry(registry):
        db = Database(str(tmp_path))
        db.create_table(_schema())
        db.run(lambda t: t.insert_many("items", _rows(50)))
        db.close()
    # the batch is one WAL record — metrics agree with the log itself
    assert registry.get("rdbms.wal.records.insert_many") == 1
    assert registry.get("rdbms.wal.records.insert") == 0
    assert registry.get("rdbms.wal.records") >= 3  # begin + batch + commit
    assert registry.get("rdbms.wal.bytes") > 0
    assert registry.get("rdbms.rows.inserted") == 50
    assert registry.get("rdbms.txn.commits") == 1
    hist = registry.histogram("rdbms.insert.batch_size")
    assert hist is not None
    assert hist["count"] == 1 and hist["sum"] == 50 and hist["max"] == 50


def test_lock_wait_metrics_only_on_contention():
    registry = MetricsRegistry()
    db = Database()
    db.create_table(_schema())
    with use_registry(registry):
        db.run(lambda t: t.insert_many("items", _rows(10)))
    # uncontended single-threaded writes never touch the wait counters
    assert registry.get("rdbms.lock.waits") == 0

    shared = MetricsRegistry()
    first_holds = threading.Event()
    release_first = threading.Event()

    def long_writer():
        def body(t):
            t.update("items", 0, {"label": "held"})
            first_holds.set()
            release_first.wait(timeout=5.0)
        with use_registry(shared):
            db.run(body)

    def blocked_writer():
        first_holds.wait(timeout=5.0)
        with use_registry(shared):
            db.run(lambda t: t.update("items", 0, {"label": "later"}))

    threads = [threading.Thread(target=long_writer),
               threading.Thread(target=blocked_writer)]
    for thread in threads:
        thread.start()
    first_holds.wait(timeout=5.0)
    time.sleep(0.2)  # let the second writer block on the row lock
    release_first.set()
    for thread in threads:
        thread.join(timeout=10.0)
    assert shared.get("rdbms.lock.waits") >= 1
    assert shared.get("rdbms.lock.wait_seconds") > 0.0
    hist = shared.histogram("rdbms.lock.wait_seconds.hist")
    assert hist is not None and hist["count"] >= 1
    db.close()
