"""Property tests for columnar segments: encode/decode round-trips under
random values (including NULLs, NaN-free floats, out-of-int64 ints, and
dictionary overflow), plus a differential suite — random tables compacted
into segments must answer aggregate queries byte-identically to the naive
row-at-a-time oracle."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.segments import ColumnSegment, Segment
from repro.storage.rdbms.sql import execute_sql
from repro.storage.rdbms.types import Column, ColumnType, TableSchema

_INTS = st.one_of(st.none(),
                  st.integers(min_value=-(2 ** 70), max_value=2 ** 70))
_FLOATS = st.one_of(st.none(),
                    st.floats(allow_nan=False, allow_infinity=False))
_TEXTS = st.one_of(st.none(), st.text(max_size=12))
_BOOLS = st.one_of(st.none(), st.booleans())


# --------------------------------------------------------- encode round-trip


@given(values=st.lists(_INTS, max_size=120))
@settings(max_examples=60, deadline=None)
def test_int_column_roundtrip(values):
    col = ColumnSegment.encode("c", ColumnType.INT, values)
    assert col.decoded() == values
    assert [col.value_at(i) for i in range(len(values))] == values
    assert col.null_count == sum(1 for v in values if v is None)


@given(values=st.lists(_FLOATS, max_size=120))
@settings(max_examples=60, deadline=None)
def test_float_column_roundtrip(values):
    col = ColumnSegment.encode("c", ColumnType.FLOAT, values)
    decoded = col.decoded()
    assert len(decoded) == len(values)
    for got, want in zip(decoded, values):
        assert got == want and type(got) is type(want)


@given(values=st.lists(_TEXTS, max_size=120), dict_max=st.integers(1, 20))
@settings(max_examples=60, deadline=None)
def test_text_column_roundtrip_any_dict_budget(values, dict_max):
    col = ColumnSegment.encode("c", ColumnType.TEXT, values,
                               dict_max=dict_max)
    assert col.decoded() == values
    distinct = len({v for v in values if v is not None})
    assert col.encoding == ("dict" if distinct <= dict_max else "raw")


@given(values=st.lists(_BOOLS, max_size=120))
@settings(max_examples=60, deadline=None)
def test_bool_column_roundtrip_is_real_bools(values):
    col = ColumnSegment.encode("c", ColumnType.BOOL, values)
    decoded = col.decoded()
    assert decoded == values
    assert all(v is None or isinstance(v, bool) for v in decoded)


@given(values=st.lists(_INTS, min_size=1, max_size=120))
@settings(max_examples=60, deadline=None)
def test_zone_map_bounds_are_exact(values):
    col = ColumnSegment.encode("c", ColumnType.INT, values)
    non_null = [v for v in values if v is not None]
    zone = col.zone_map()
    assert zone["count"] == len(values)
    assert zone["null_count"] == len(values) - len(non_null)
    assert zone["min"] == (min(non_null) if non_null else None)
    assert zone["max"] == (max(non_null) if non_null else None)


@given(rows=st.lists(st.tuples(_INTS, _TEXTS, _FLOATS), max_size=60),
       seed=st.integers(0, 2 ** 32))
@settings(max_examples=40, deadline=None)
def test_segment_iter_rows_roundtrip_shuffled_rids(rows, seed):
    import random
    schema = TableSchema(
        "t",
        (Column("id", ColumnType.INT, nullable=False),
         Column("v", ColumnType.INT),
         Column("s", ColumnType.TEXT),
         Column("f", ColumnType.FLOAT)),
        primary_key="id",
    )
    items = [(rid, {"id": rid, "v": v, "s": s, "f": f})
             for rid, (v, s, f) in enumerate(rows)]
    random.Random(seed).shuffle(items)
    seg = Segment.from_rows(schema, items, dict_max=8)
    got = list(seg.iter_rows())
    want = sorted(((rid, vals) for rid, vals in items), key=lambda kv: kv[0])
    assert got == want


# --------------------------------------------------------- differential suite

_DIFF_QUERIES = [
    "SELECT COUNT(*), COUNT(v), COUNT(s) FROM t",
    "SELECT SUM(v), AVG(v), MIN(v), MAX(v) FROM t",
    "SELECT SUM(f), AVG(f), MIN(f), MAX(f) FROM t",
    "SELECT MIN(s), MAX(s) FROM t",
    "SELECT s, COUNT(*), SUM(v), MIN(f) FROM t GROUP BY s",
    "SELECT COUNT(*) FROM t WHERE v > 0",
    "SELECT SUM(v) FROM t WHERE s = 'a' AND v < 50",
    "SELECT s, COUNT(*) FROM t WHERE v IS NOT NULL GROUP BY s",
    "SELECT COUNT(*) FROM t WHERE s IN ('a', 'b')",
    "SELECT COUNT(*) FROM t WHERE s LIKE 'a%'",
    "SELECT * FROM t ORDER BY id LIMIT 10",
]

_diff_rows = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(min_value=-100, max_value=100)),
        st.one_of(st.none(), st.sampled_from(["a", "b", "ab", "c"])),
        st.one_of(st.none(), st.floats(min_value=-1e6, max_value=1e6,
                                       allow_nan=False)),
    ),
    min_size=0, max_size=40,
)


def _build(rows, target_rows):
    db = Database()
    db.create_table(TableSchema(
        "t",
        (Column("id", ColumnType.INT, nullable=False),
         Column("v", ColumnType.INT),
         Column("s", ColumnType.TEXT),
         Column("f", ColumnType.FLOAT)),
        primary_key="id",
    ))

    def insert(txn):
        for i, (v, s, f) in enumerate(rows):
            txn.insert("t", {"id": i, "v": v, "s": s, "f": f})

    db.run(insert)
    db._table("t").compact(target_rows=target_rows)
    return db


@given(rows=_diff_rows, target_rows=st.integers(min_value=1, max_value=16))
@settings(max_examples=30, deadline=None)
def test_segmented_execution_matches_naive_oracle(rows, target_rows):
    db = _build(rows, target_rows)
    for sql in _DIFF_QUERIES:
        fast = execute_sql(db, sql, use_planner=True)
        slow = execute_sql(db, sql, use_planner=False)
        assert json.dumps(fast, sort_keys=True) == \
            json.dumps(slow, sort_keys=True), sql


@given(rows=_diff_rows, target_rows=st.integers(min_value=1, max_value=16),
       extra=st.lists(st.tuples(
           st.one_of(st.none(), st.integers(min_value=-100, max_value=100)),
           st.one_of(st.none(), st.sampled_from(["a", "b", "c"])),
           st.one_of(st.none(), st.floats(min_value=-1e6, max_value=1e6,
                                          allow_nan=False))),
           max_size=10))
@settings(max_examples=20, deadline=None)
def test_mixed_segment_and_tail_matches_oracle(rows, target_rows, extra):
    db = _build(rows, target_rows)

    def insert(txn):
        for j, (v, s, f) in enumerate(extra):
            txn.insert("t", {"id": len(rows) + j, "v": v, "s": s, "f": f})

    db.run(insert)
    for sql in _DIFF_QUERIES:
        fast = execute_sql(db, sql, use_planner=True)
        slow = execute_sql(db, sql, use_planner=False)
        assert json.dumps(fast, sort_keys=True) == \
            json.dumps(slow, sort_keys=True), sql
