"""Tests for data generators and the keyword baseline."""

import statistics

import pytest

from repro.baselines.keyword_baseline import KeywordSearchBaseline
from repro.datagen.churn import churn_corpus
from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.datagen.emails import generate_email_corpus
from repro.datagen.people import PeopleCorpusConfig, generate_people_corpus
from repro.docmodel.wikimarkup import parse_infoboxes
from repro.extraction.normalize import MONTHS


def test_city_corpus_deterministic():
    a, truth_a = generate_city_corpus(CityCorpusConfig(num_cities=10, seed=3))
    b, truth_b = generate_city_corpus(CityCorpusConfig(num_cities=10, seed=3))
    assert [d.text for d in a] == [d.text for d in b]
    assert truth_a == truth_b


def test_city_corpus_styles_cycle():
    _, truth = generate_city_corpus(CityCorpusConfig(num_cities=8))
    assert [t.style for t in truth] == [
        "infobox", "infobox_long", "table", "prose",
        "infobox", "infobox_long", "table", "prose",
    ]


def test_city_infobox_pages_parse_with_ground_truth_values():
    corpus, truth = generate_city_corpus(CityCorpusConfig(num_cities=8))
    docs = list(corpus)
    for doc, facts in zip(docs, truth):
        if facts.style != "infobox":
            continue
        box = parse_infoboxes(doc)[0]
        assert box.fields["name"] == facts.name
        assert float(box.fields["sep_temp"]) == facts.monthly_temps[8]


def test_city_seasonality_summer_warmer_than_winter():
    _, truth = generate_city_corpus(CityCorpusConfig(num_cities=20))
    for facts in truth:
        july = facts.temp("july")
        january = facts.temp("january")
        assert july > january + 10


def test_city_corruption_injection():
    _, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=60, corruption_rate=0.5, seed=1)
    )
    corrupted = [t for t in truth if t.corrupted_month is not None]
    assert 10 < len(corrupted) < 50
    for facts in corrupted:
        assert facts.corrupted_value not in facts.monthly_temps


def test_city_temp_lookup_by_month_name():
    _, truth = generate_city_corpus(CityCorpusConfig(num_cities=2))
    facts = truth[0]
    assert facts.temp("September") == facts.monthly_temps[8]
    assert len(facts.monthly_temps) == len(MONTHS)


def test_people_corpus_mention_map_consistent():
    corpus, people, mentions = generate_people_corpus(
        PeopleCorpusConfig(num_people=10, mentions_per_person=3)
    )
    assert len(mentions) == 30
    assert len(corpus) == 30
    person_ids = {p.person_id for p in people}
    assert set(mentions.values()) <= person_ids
    # each document actually mentions one of the person's name variants
    by_id = {p.person_id: p for p in people}
    for doc in corpus:
        person = by_id[mentions[doc.doc_id]]
        assert any(v in doc.text for v in person.variants())


def test_people_confusable_names_exist():
    _, people, _ = generate_people_corpus(
        PeopleCorpusConfig(num_people=30, confusable_fraction=0.8, seed=2)
    )
    keys = [(p.first[0], p.last) for p in people]
    assert len(set(keys)) < len(keys)  # at least one shared (initial, last)


def test_people_distinct_identities():
    _, people, _ = generate_people_corpus(PeopleCorpusConfig(num_people=25))
    identities = {(p.first, p.middle, p.last) for p in people}
    assert len(identities) == 25


def test_email_corpus_meetings_extractable_text():
    corpus, truths = generate_email_corpus(num_messages=40, seed=1)
    with_meeting = [t for t in truths if t.meeting_date is not None]
    assert 5 < len(with_meeting) < 35
    for truth in with_meeting:
        text = corpus.get(truth.doc_id).text
        assert truth.meeting_time in text
        assert truth.meeting_room in text


def test_email_headers_present():
    corpus, truths = generate_email_corpus(num_messages=5)
    for truth in truths:
        text = corpus.get(truth.doc_id).text
        assert text.startswith(f"From: {truth.sender}")
        assert f"To: {truth.recipient}" in text


def test_churn_changes_bounded_fraction():
    corpus, _ = generate_city_corpus(CityCorpusConfig(num_cities=20))
    churned = churn_corpus(corpus, change_fraction=0.1, seed=4)
    changed = sum(
        1 for doc in corpus if churned.get(doc.doc_id).text != doc.text
    )
    assert 0 < changed < 20
    assert len(churned) == len(corpus)


def test_churn_validates_fraction():
    with pytest.raises(ValueError):
        churn_corpus([], change_fraction=1.5)


# ------------------------------------------------------------------ baseline


def test_baseline_search_ranks_city_page():
    corpus, truth = generate_city_corpus(CityCorpusConfig(num_cities=12))
    baseline = KeywordSearchBaseline()
    baseline.index_corpus(corpus)
    target = truth[0]
    hits = baseline.search(f"{target.name} temperature")
    assert hits[0] == f"city_{target.name.lower()}"


def test_baseline_honest_mode_cannot_answer_aggregates():
    corpus, _ = generate_city_corpus(CityCorpusConfig(num_cities=5))
    baseline = KeywordSearchBaseline()
    baseline.index_corpus(corpus)
    answer = baseline.answer_aggregate("average september temperature Fairview")
    assert answer.answerable is False
    assert answer.value is None


def test_baseline_grep_guess_usually_wrong_for_averages():
    corpus, truth = generate_city_corpus(CityCorpusConfig(num_cities=20, seed=9))
    baseline = KeywordSearchBaseline()
    baseline.index_corpus(corpus)
    wrong = 0
    asked = 0
    for facts in truth:
        question = f"average March September temperature {facts.name}"
        expected = statistics.fmean(facts.monthly_temps[2:9])
        answer = baseline.answer_aggregate(question, grep_guess=True)
        if answer.value is None:
            continue
        asked += 1
        if abs(answer.value - expected) > 1.0:
            wrong += 1
    assert asked > 0
    assert wrong / asked > 0.7  # grepping a single number is no aggregate
