"""Tests for the storage manager (device routing) and cross-device flow."""

from repro.docmodel.document import Document
from repro.storage.manager import StorageManager
from repro.storage.rdbms.types import Column, ColumnType, TableSchema


def test_devices_created_under_root(tmp_path):
    manager = StorageManager(str(tmp_path / "ws"))
    assert (tmp_path / "ws" / "raw").is_dir()
    assert (tmp_path / "ws" / "intermediate").is_dir()
    assert (tmp_path / "ws" / "final").is_dir()
    manager.close()


def test_each_form_lands_on_its_device(tmp_path):
    manager = StorageManager(str(tmp_path))
    # raw snapshots
    manager.raw.commit(Document("page", "day one content\n"))
    manager.raw.commit(Document("page", "day two content\n"))
    assert manager.raw.latest_version("page") == 1
    # intermediates
    manager.intermediate.append_many(
        [{"entity": "x", "attribute": "a", "value": 1}] * 5
    )
    assert manager.intermediate.count() == 5
    # final structure
    manager.final.create_table(TableSchema(
        "facts", (Column("id", ColumnType.INT, nullable=False),),
        primary_key="id",
    ))
    manager.final.run(lambda t: t.insert("facts", {"id": 1}))
    assert manager.final.table_size("facts") == 1
    manager.close()


def test_disk_usage_reports_all_devices(tmp_path):
    manager = StorageManager(str(tmp_path))
    manager.raw.commit(Document("p", "content\n" * 20))
    manager.intermediate.append({"k": "v"})
    manager.final.create_table(TableSchema(
        "t", (Column("id", ColumnType.INT, nullable=False),),
        primary_key="id",
    ))
    usage = manager.disk_usage()
    assert usage["raw"] > 0
    assert usage["intermediate"] > 0
    assert usage["final_wal"] > 0
    manager.close()


def test_final_store_survives_reopen(tmp_path):
    manager = StorageManager(str(tmp_path))
    manager.final.create_table(TableSchema(
        "t", (Column("id", ColumnType.INT, nullable=False),),
        primary_key="id",
    ))
    manager.final.run(lambda t: t.insert("t", {"id": 7}))
    manager.close()
    reopened = StorageManager(str(tmp_path))
    assert reopened.final.table_size("t") == 1
    assert reopened.intermediate.count() == 0
    reopened.close()


def test_non_durable_final_store(tmp_path):
    manager = StorageManager(str(tmp_path), durable=False)
    manager.final.create_table(TableSchema(
        "t", (Column("id", ColumnType.INT, nullable=False),),
        primary_key="id",
    ))
    assert manager.final.wal_size_bytes() == 0
    manager.close()
