"""Differential property tests: the SQL engine vs plain-Python semantics.

Random data and random simple predicates are generated with hypothesis;
the engine's answers must match a straightforward Python evaluation over
the same rows.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.sql import execute_sql
from repro.storage.rdbms.types import Column, ColumnType, TableSchema

_NAMES = ["alpha", "beta", "gamma", "delta", "epsilon"]

rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(_NAMES),
        st.integers(min_value=-100, max_value=100),
        st.floats(min_value=-1000, max_value=1000, allow_nan=False,
                  allow_infinity=False),
    ),
    min_size=0, max_size=25,
)


def _load(rows):
    db = Database()
    db.create_table(TableSchema(
        "t",
        (Column("rid", ColumnType.INT, nullable=False),
         Column("name", ColumnType.TEXT),
         Column("qty", ColumnType.INT),
         Column("score", ColumnType.FLOAT)),
        primary_key="rid",
    ))
    def insert_all(txn):
        for i, (name, qty, score) in enumerate(rows):
            txn.insert("t", {"rid": i, "name": name, "qty": qty,
                             "score": score})
    db.run(insert_all)
    return db


@given(rows=rows_strategy, bound=st.integers(min_value=-100, max_value=100))
@settings(max_examples=40, deadline=None)
def test_where_comparison_matches_python(rows, bound):
    db = _load(rows)
    got = execute_sql(db, f"SELECT rid FROM t WHERE qty >= {bound}")
    expected = sorted(i for i, (_, qty, _) in enumerate(rows) if qty >= bound)
    assert sorted(r["rid"] for r in got) == expected


@given(rows=rows_strategy, name=st.sampled_from(_NAMES))
@settings(max_examples=40, deadline=None)
def test_equality_and_count_match_python(rows, name):
    db = _load(rows)
    got = execute_sql(
        db, f"SELECT COUNT(*) AS n FROM t WHERE name = '{name}'"
    )[0]["n"]
    assert got == sum(1 for n, _, _ in rows if n == name)


@given(rows=rows_strategy)
@settings(max_examples=40, deadline=None)
def test_aggregates_match_python(rows):
    db = _load(rows)
    result = execute_sql(
        db, "SELECT COUNT(*) AS n, SUM(qty) AS s, MIN(qty) AS lo, "
            "MAX(qty) AS hi, AVG(score) AS avg_score FROM t"
    )[0]
    assert result["n"] == len(rows)
    if rows:
        quantities = [q for _, q, _ in rows]
        scores = [s for _, _, s in rows]
        assert result["s"] == sum(quantities)
        assert result["lo"] == min(quantities)
        assert result["hi"] == max(quantities)
        assert abs(result["avg_score"] - sum(scores) / len(scores)) < 1e-6
    else:
        assert result["s"] is None and result["lo"] is None


@given(rows=rows_strategy)
@settings(max_examples=40, deadline=None)
def test_group_by_partitions_exactly(rows):
    db = _load(rows)
    grouped = execute_sql(
        db, "SELECT name, COUNT(*) AS n FROM t GROUP BY name"
    )
    from collections import Counter
    expected = Counter(n for n, _, _ in rows)
    assert {g["name"]: g["n"] for g in grouped} == dict(expected)
    # group counts sum back to the table size
    assert sum(g["n"] for g in grouped) == len(rows)


@given(rows=rows_strategy, k=st.integers(min_value=1, max_value=10))
@settings(max_examples=40, deadline=None)
def test_order_by_limit_is_sorted_prefix(rows, k):
    db = _load(rows)
    got = execute_sql(db, f"SELECT rid, qty FROM t ORDER BY qty LIMIT {k}")
    quantities = [r["qty"] for r in got]
    assert quantities == sorted(quantities)
    assert len(got) == min(k, len(rows))
    if rows and got:
        assert quantities[0] == min(q for _, q, _ in rows)


@given(rows=rows_strategy, bound=st.integers(min_value=-100, max_value=100))
@settings(max_examples=30, deadline=None)
def test_delete_then_count_consistent(rows, bound):
    db = _load(rows)
    deleted = execute_sql(db, f"DELETE FROM t WHERE qty < {bound}")[0]["deleted"]
    remaining = execute_sql(db, "SELECT COUNT(*) AS n FROM t")[0]["n"]
    assert deleted + remaining == len(rows)
    assert all(
        r["qty"] >= bound
        for r in execute_sql(db, "SELECT qty FROM t")
    )


@given(rows=rows_strategy, delta=st.integers(min_value=-5, max_value=5))
@settings(max_examples=30, deadline=None)
def test_update_preserves_row_count(rows, delta):
    db = _load(rows)
    execute_sql(db, f"UPDATE t SET qty = {delta}")
    got = execute_sql(db, "SELECT qty FROM t")
    assert len(got) == len(rows)
    assert all(r["qty"] == delta for r in got)
