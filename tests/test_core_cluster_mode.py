"""Tests for running the system with the simulated cluster enabled."""

from repro.cluster.simulator import ClusterConfig
from repro.core.system import FACTS_TABLE, StructureManagementSystem
from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.extraction.infobox import InfoboxExtractor

PROGRAM = 'p = docs()\nf = extract(p, "infobox")\noutput f'


def _system(use_cluster, workers=4):
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=12, seed=53, styles=("infobox",))
    )
    system = StructureManagementSystem(
        use_cluster=use_cluster,
        cluster_config=ClusterConfig(num_workers=workers, seed=2),
    )
    system.registry.register_extractor("infobox", InfoboxExtractor())
    system.ingest(corpus)
    return system, truth


def test_cluster_mode_produces_same_facts_as_inline():
    inline, _ = _system(use_cluster=False)
    clustered, _ = _system(use_cluster=True)
    inline.generate(PROGRAM)
    report = clustered.generate(PROGRAM)
    assert report.cluster_makespan > 0

    def all_facts(system):
        return sorted(
            (r["entity"], r["attribute"], r["value_num"], r["value_text"])
            for r in system.query(
                f"SELECT entity, attribute, value_num, value_text "
                f"FROM {FACTS_TABLE}"
            )
        )

    assert all_facts(inline) == all_facts(clustered)


def test_inline_mode_reports_zero_makespan():
    system, _ = _system(use_cluster=False)
    report = system.generate(PROGRAM)
    assert report.cluster_makespan == 0.0


def test_more_workers_lower_simulated_makespan():
    small, _ = _system(use_cluster=True, workers=1)
    large, _ = _system(use_cluster=True, workers=8)
    makespan_small = small.generate(PROGRAM).cluster_makespan
    makespan_large = large.generate(PROGRAM).cluster_makespan
    assert makespan_large < makespan_small
