"""Tests for the lock manager and transaction isolation."""

import threading
import time

import pytest

from repro.storage.rdbms.engine import Database, TransactionAborted
from repro.storage.rdbms.lockmgr import DeadlockError, LockManager, LockMode
from repro.storage.rdbms.types import Column, ColumnType, TableSchema

IS, IX = LockMode.INTENTION_SHARED, LockMode.INTENTION_EXCLUSIVE
S, X = LockMode.SHARED, LockMode.EXCLUSIVE


def test_shared_locks_compatible():
    lm = LockManager()
    lm.acquire(1, ("t", 0), S)
    lm.acquire(2, ("t", 0), S)  # does not block
    assert ("t", 0) in lm.held(1) and ("t", 0) in lm.held(2)


def test_intention_modes_compatible():
    lm = LockManager()
    lm.acquire(1, ("t", None), IX)
    lm.acquire(2, ("t", None), IX)
    lm.acquire(3, ("t", None), IS)
    assert lm.lock_count() == 1


def test_table_s_blocks_writer_intent():
    lm = LockManager(timeout=0.1)
    lm.acquire(1, ("t", None), S)
    with pytest.raises(TimeoutError):
        lm.acquire(2, ("t", None), IX)


def test_exclusive_blocks_everyone():
    lm = LockManager(timeout=0.1)
    lm.acquire(1, ("t", 0), X)
    with pytest.raises(TimeoutError):
        lm.acquire(2, ("t", 0), S)


def test_release_all_unblocks_waiters():
    lm = LockManager(timeout=5.0)
    lm.acquire(1, ("t", 0), X)
    acquired = threading.Event()

    def waiter():
        lm.acquire(2, ("t", 0), X)
        acquired.set()

    thread = threading.Thread(target=waiter)
    thread.start()
    time.sleep(0.05)
    assert not acquired.is_set()
    lm.release_all(1)
    thread.join(timeout=2)
    assert acquired.is_set()
    lm.release_all(2)


def test_reacquire_held_lock_is_noop():
    lm = LockManager()
    lm.acquire(1, ("t", 0), X)
    lm.acquire(1, ("t", 0), S)  # X subsumes S
    lm.acquire(1, ("t", 0), X)
    assert lm.held(1) == {("t", 0)}


def test_deadlock_detected_and_victim_raised():
    lm = LockManager(timeout=5.0)
    lm.acquire(1, ("t", 0), X)
    lm.acquire(2, ("t", 1), X)
    errors = []

    def txn1():
        try:
            lm.acquire(1, ("t", 1), X)
        except DeadlockError:
            errors.append(1)
            lm.release_all(1)

    thread = threading.Thread(target=txn1)
    thread.start()
    time.sleep(0.1)
    # txn2 requesting t0 completes the cycle; someone must be the victim.
    try:
        lm.acquire(2, ("t", 0), X)
    except DeadlockError:
        errors.append(2)
        lm.release_all(2)
    thread.join(timeout=5)
    assert errors, "no deadlock was detected"


def _make_db():
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            (Column("id", ColumnType.INT, nullable=False),
             Column("v", ColumnType.INT)),
            primary_key="id",
        )
    )
    return db


def test_transaction_abort_undoes_everything():
    db = _make_db()
    rid = db.run(lambda t: t.insert("t", {"id": 1, "v": 10})).rid
    txn = db.begin()
    txn.update("t", rid, {"v": 20})
    txn.insert("t", {"id": 2, "v": 30})
    txn.delete("t", rid)
    txn.abort()
    rows = db.run(lambda t: t.scan("t"))
    assert len(rows) == 1
    assert rows[0].values == {"id": 1, "v": 10}


def test_finished_transaction_rejects_operations():
    db = _make_db()
    txn = db.begin()
    txn.commit()
    with pytest.raises(TransactionAborted):
        txn.insert("t", {"id": 1, "v": 1})
    with pytest.raises(TransactionAborted):
        txn.commit()


def test_context_manager_commits_and_aborts():
    db = _make_db()
    with db.begin() as txn:
        txn.insert("t", {"id": 1, "v": 1})
    assert db.table_size("t") == 1
    with pytest.raises(RuntimeError):
        with db.begin() as txn:
            txn.insert("t", {"id": 2, "v": 2})
            raise RuntimeError("boom")
    assert db.table_size("t") == 1  # rolled back


def test_concurrent_increments_are_serializable():
    db = _make_db()
    rid = db.run(lambda t: t.insert("t", {"id": 1, "v": 0})).rid
    n_threads, n_increments = 4, 25

    def work():
        for _ in range(n_increments):
            def bump(txn):
                current = txn.get("t", rid).values["v"]
                txn.update("t", rid, {"v": current + 1})
            db.run(bump)

    threads = [threading.Thread(target=work) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    final = db.run(lambda t: t.get("t", rid)).values["v"]
    assert final == n_threads * n_increments


def test_index_updates_rolled_back_on_abort():
    db = _make_db()
    db.create_index("t", "v", kind="hash")
    txn = db.begin()
    txn.insert("t", {"id": 1, "v": 42})
    txn.abort()
    hits = db.run(lambda t: t.lookup("t", "v", 42))
    assert hits == []
