"""Tests for the cost-based planner: plan selection, EXPLAIN goldens,
and index-assisted UPDATE/DELETE."""

import pytest

from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.planner import (
    Planner,
    conjoin,
    split_conjuncts,
)
from repro.storage.rdbms.sql import (
    SqlError,
    execute_sql,
    normalize_sql,
    parse_sql,
)
from repro.telemetry import metrics


@pytest.fixture
def db():
    """items (200 rows, hash index on cat, sorted index on score) joined
    against dims (8 rows, indexed pk-like cat column)."""
    database = Database()
    execute_sql(
        database,
        "CREATE TABLE items (item_id INT PRIMARY KEY, cat TEXT, score INT)",
    )
    rows = ", ".join(f"({i}, 'cat{i % 8}', {i})" for i in range(200))
    execute_sql(database,
                f"INSERT INTO items (item_id, cat, score) VALUES {rows}")
    database.create_index("items", "cat", "hash")
    database.create_index("items", "score", "sorted")
    execute_sql(
        database,
        "CREATE TABLE dims (cat TEXT PRIMARY KEY, label TEXT)",
    )
    dim_rows = ", ".join(f"('cat{i}', 'label{i}')" for i in range(8))
    execute_sql(database, f"INSERT INTO dims (cat, label) VALUES {dim_rows}")
    database.create_index("dims", "cat", "hash")
    return database


def _plan_lines(db, sql):
    """EXPLAIN output with the volatile [rows~ cost~] suffixes stripped."""
    return [r["plan"].split("  [")[0] for r in execute_sql(db, sql)]


# ------------------------------------------------------------ access paths


def test_index_lookup_chosen_for_indexed_equality(db):
    lines = _plan_lines(db, "EXPLAIN SELECT * FROM items WHERE cat = 'cat3'")
    assert lines == [
        "Project(*)",
        "  IndexLookup(items.cat = 'cat3' via hash index)",
    ]


def test_range_scan_chosen_for_sorted_index(db):
    lines = _plan_lines(
        db, "EXPLAIN SELECT * FROM items WHERE score >= 10 AND score < 20")
    assert lines == [
        "Project(*)",
        "  RangeScan(items.score in [10, 20) via sorted index)",
    ]


def test_full_scan_when_no_index_applies(db):
    lines = _plan_lines(
        db, "EXPLAIN SELECT * FROM items WHERE item_id != 5")
    assert lines == [
        "Project(*)",
        "  Filter(item_id != 5)",
        "    FullScan(items)",
    ]


def test_residual_filter_on_top_of_index_lookup(db):
    lines = _plan_lines(
        db,
        "EXPLAIN SELECT * FROM items WHERE cat = 'cat3' AND item_id > 100")
    # The equality is consumed by the index; the inequality could also run
    # as a range scan, but the cat lookup is more selective (1/8 vs 1/2).
    assert lines == [
        "Project(*)",
        "  Filter(item_id > 100)",
        "    IndexLookup(items.cat = 'cat3' via hash index)",
    ]


def test_null_equality_is_not_an_access_path(db):
    # col = NULL matches nothing in the evaluator; probing the index with
    # None would be wrong (indexes skip NULLs but the residual must run).
    lines = _plan_lines(db, "EXPLAIN SELECT * FROM items WHERE cat = NULL")
    assert lines[1].startswith("  Filter(")
    assert lines[2] == "    FullScan(items)"


def test_topk_wrapper_for_order_by_limit(db):
    lines = _plan_lines(
        db, "EXPLAIN SELECT * FROM items ORDER BY score DESC LIMIT 5")
    assert lines[0] == "TopK(key=score, desc, k=5)"
    registry = metrics.get_registry()
    assert registry.get("planner.plans.topk") >= 1


def test_sort_and_limit_wrappers_without_topk(db):
    lines = _plan_lines(db, "EXPLAIN SELECT * FROM items ORDER BY score")
    assert lines[0] == "Sort(key=score, asc)"
    lines = _plan_lines(db, "EXPLAIN SELECT * FROM items LIMIT 3")
    assert lines[0] == "Limit(3)"


# -------------------------------------------------------------------- joins


def test_hash_join_builds_on_smaller_side(db):
    lines = _plan_lines(
        db,
        "EXPLAIN SELECT items.item_id, dims.label FROM items "
        "JOIN dims ON items.cat = dims.cat WHERE score < 0",
    )
    # With the selective score predicate pushed to the left side, the
    # left input is estimated smaller than dims -> build=left.
    joined = "\n".join(lines)
    assert "HashJoin" in joined or "IndexNestedLoopJoin" in joined


def test_inlj_chosen_with_selective_outer_and_indexed_inner(db):
    lines = _plan_lines(
        db,
        "EXPLAIN SELECT items.item_id, dims.label FROM items "
        "JOIN dims ON items.cat = dims.cat WHERE label = 'label3'",
    )
    joined = "\n".join(lines)
    assert "IndexNestedLoopJoin" in joined
    assert "inner=items via hash index" in joined
    assert "PushedFilter(dims.label = 'label3')" in joined \
        or "label = 'label3'" in joined


def test_join_predicate_pushdown_per_side(db):
    lines = _plan_lines(
        db,
        "EXPLAIN SELECT items.item_id, dims.label FROM items "
        "JOIN dims ON items.cat = dims.cat "
        "WHERE score >= 10 AND score < 20 AND label LIKE 'label%'",
    )
    joined = "\n".join(lines)
    # left-side range conjuncts became the left access path...
    assert "RangeScan(items.score in [10, 20) via sorted index)" in joined
    # ...and the right-side LIKE was pushed below the join.
    assert "label LIKE 'label%'" in joined
    registry = metrics.get_registry()
    assert registry.get("planner.conjuncts.pushed") >= 3


def test_join_results_match_naive(db):
    for sql in [
        "SELECT items.item_id, dims.label FROM items "
        "JOIN dims ON items.cat = dims.cat WHERE label = 'label3'",
        "SELECT items.item_id, dims.label FROM items "
        "JOIN dims ON items.cat = dims.cat "
        "WHERE score >= 10 AND score < 40 ORDER BY item_id DESC LIMIT 7",
        "SELECT cat, COUNT(*) AS n FROM items "
        "JOIN dims ON items.cat = dims.cat GROUP BY cat",
    ]:
        assert execute_sql(db, sql) == \
            execute_sql(db, sql, use_planner=False), sql


# -------------------------------------------------- planner-executed DML


def test_update_uses_index_access_path(db):
    registry = metrics.get_registry()
    before = registry.get("rdbms.index.lookups")
    rows = execute_sql(
        db, "UPDATE items SET score = 0 WHERE cat = 'cat2'")
    assert rows == [{"updated": 25}]
    assert registry.get("rdbms.index.lookups") > before
    assert execute_sql(
        db, "SELECT COUNT(*) AS n FROM items WHERE cat = 'cat2' "
            "AND score = 0")[0]["n"] == 25


def test_delete_uses_range_scan(db):
    registry = metrics.get_registry()
    before = registry.get("rdbms.index.range_scans")
    rows = execute_sql(db, "DELETE FROM items WHERE score >= 190")
    assert rows == [{"deleted": 10}]
    assert registry.get("rdbms.index.range_scans") > before
    assert execute_sql(db, "SELECT COUNT(*) AS n FROM items")[0]["n"] == 190


def test_update_delete_match_naive_semantics():
    def build():
        database = Database()
        execute_sql(database,
                    "CREATE TABLE t (k INT PRIMARY KEY, v TEXT, n INT)")
        execute_sql(database,
                    "INSERT INTO t (k, v, n) VALUES "
                    "(1, 'a', 10), (2, 'b', 20), (3, 'a', 30), (4, NULL, 40)")
        database.create_index("t", "v", "hash")
        return database

    planner_db, naive_db = build(), build()
    for sql in [
        "UPDATE t SET n = 99 WHERE v = 'a' AND n > 15",
        "DELETE FROM t WHERE v IS NULL",
        "UPDATE t SET v = 'z' WHERE n <= 20",
    ]:
        assert execute_sql(planner_db, sql) == \
            execute_sql(naive_db, sql, use_planner=False)
    assert execute_sql(planner_db, "SELECT * FROM t") == \
        execute_sql(naive_db, "SELECT * FROM t", use_planner=False)


# ---------------------------------------------------------------- plumbing


def test_split_and_conjoin_roundtrip():
    stmt = parse_sql("SELECT * FROM t WHERE a = 1 AND b = 2 AND c > 3")
    conjuncts = split_conjuncts(stmt.where)
    assert len(conjuncts) == 3
    assert split_conjuncts(conjoin(conjuncts)) == conjuncts
    assert conjoin([]) is None
    assert conjoin(conjuncts[:1]) is conjuncts[0]


def test_or_predicate_is_a_single_conjunct(db):
    lines = _plan_lines(
        db, "EXPLAIN SELECT * FROM items WHERE cat = 'cat1' OR cat = 'cat2'")
    # An OR cannot be consumed by a single index probe: residual filter
    # over a full scan.
    assert lines[1].startswith("  Filter(")
    assert lines[2] == "    FullScan(items)"


def test_explain_rejects_non_select(db):
    with pytest.raises(SqlError):
        execute_sql(db, "EXPLAIN DELETE FROM items")


def test_explain_does_not_execute(db):
    before = execute_sql(db, "SELECT COUNT(*) AS n FROM items")[0]["n"]
    execute_sql(db, "EXPLAIN SELECT * FROM items WHERE cat = 'cat0'")
    assert execute_sql(db, "SELECT COUNT(*) AS n FROM items")[0]["n"] == before


def test_normalize_sql_canonicalizes():
    a = normalize_sql("select  *\nfrom items   where cat='x'")
    b = normalize_sql("SELECT * FROM items WHERE cat = 'x'")
    assert a == b
    assert normalize_sql("SELECT 1.5 FROM t") != normalize_sql(
        "SELECT 15 FROM t")


def test_plan_access_estimates_present(db):
    planner = Planner(db)
    stmt = parse_sql("SELECT * FROM items WHERE cat = 'cat1'")
    node, residual = planner.plan_access("items",
                                         split_conjuncts(stmt.where))
    assert residual == []
    assert node.est_rows == pytest.approx(25.0, rel=0.3)
    assert node.cost < 200  # cheaper than the 200-row full scan
