"""Tests for query forms and keyword→structured translation."""

import pytest

from repro.userlayer.forms import FormCatalog, FormSlot, QueryForm
from repro.userlayer.translate import QueryTranslator


def _form():
    return QueryForm(
        form_id="avg_temp",
        title="Average temperature of a city",
        sql_template=(
            "SELECT AVG(value_num) AS result FROM facts "
            "WHERE entity = {entity} AND attribute = {attribute}"
        ),
        slots=(
            FormSlot("entity", "City name"),
            FormSlot("attribute", "Temperature attribute"),
        ),
        keywords=("average", "temperature", "city"),
    )


def test_form_instantiate_quotes_text():
    sql = _form().instantiate({"entity": "Madison", "attribute": "sep_temp"})
    assert "entity = 'Madison'" in sql
    assert "attribute = 'sep_temp'" in sql


def test_form_instantiate_escapes_quotes():
    sql = _form().instantiate({"entity": "O'Fallon", "attribute": "a"})
    assert "O''Fallon" in sql


def test_form_missing_required_slot():
    with pytest.raises(ValueError):
        _form().instantiate({"entity": "Madison"})


def test_form_unknown_slot():
    with pytest.raises(ValueError):
        _form().instantiate({"bogus": 1})


def test_form_number_slot_type_checked():
    form = QueryForm(
        "f", "t", "SELECT * FROM t WHERE pop > {min_pop}",
        slots=(FormSlot("min_pop", "Minimum population", slot_type="number"),),
    )
    assert "pop > 500" in form.instantiate({"min_pop": 500})
    with pytest.raises(ValueError):
        form.instantiate({"min_pop": "lots"})


def test_form_optional_slot_default():
    form = QueryForm(
        "f", "t", "SELECT * FROM t LIMIT {n}",
        slots=(FormSlot("n", "Limit", slot_type="number",
                        required=False, default=10),),
    )
    assert form.instantiate({}) == "SELECT * FROM t LIMIT 10"


def test_catalog_register_and_duplicate():
    catalog = FormCatalog()
    catalog.register(_form())
    assert len(catalog) == 1
    assert catalog.get("avg_temp").title.startswith("Average")
    with pytest.raises(ValueError):
        catalog.register(_form())


def _translator(catalog=None):
    return QueryTranslator(
        table="facts",
        entity_column="entity",
        attributes=["sep_temp", "september_temperature", "april_temperature",
                    "population", "state"],
        entities=["Madison", "Chicago", "Fairview"],
        attribute_column="attribute",
        value_column="value_num",
        catalog=catalog,
    )


def test_translate_aggregate_entity_attribute():
    candidates = _translator().translate("average september temperature Madison")
    assert candidates
    top = candidates[0]
    assert "AVG(" in top.sql
    assert "entity = 'Madison'" in top.sql
    assert "september" in top.sql or "sep_temp" in top.sql


def test_translate_full_token_coverage_beats_partial():
    candidates = _translator().translate("average september temperature Madison", k=5)
    sqls = [c.sql for c in candidates]
    september = next(i for i, s in enumerate(sqls) if "september_temperature" in s)
    april = [i for i, s in enumerate(sqls) if "april_temperature" in s]
    assert not april or september < april[0]


def test_translate_count_and_max_intents():
    count = _translator().translate("how many population Fairview")[0]
    assert "COUNT(" in count.sql
    maxi = _translator().translate("highest population")[0]
    assert "MAX(" in maxi.sql


def test_translate_no_aggregate_lists_values():
    candidates = _translator().translate("population Madison")
    assert any("SELECT entity, value_num" in c.sql for c in candidates)


def test_translate_unknown_terms_returns_empty_or_generic():
    candidates = _translator().translate("zzz qqq www")
    assert all("attribute" not in c.sql or c.score <= 0.6 for c in candidates)


def test_translate_results_are_deduplicated():
    candidates = _translator().translate("average september temperature Madison", k=10)
    assert len({c.sql for c in candidates}) == len(candidates)


def test_translate_ranks_form_candidates():
    catalog = FormCatalog()
    catalog.register(_form())
    candidates = _translator(catalog).translate(
        "average temperature Madison", k=10
    )
    form_hits = [c for c in candidates if c.form_id == "avg_temp"]
    assert form_hits
    assert form_hits[0].slot_values.get("entity") == "Madison"


def test_translate_wide_table_layout():
    translator = QueryTranslator(
        table="city", entity_column="name",
        attributes=["sep_temp", "population"], entities=["Madison"],
    )
    top = translator.translate("average sep_temp Madison")[0]
    assert "AVG(sep_temp)" in top.sql
    assert "name = 'Madison'" in top.sql
