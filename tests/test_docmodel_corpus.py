"""Tests for corpus containers."""

import pytest

from repro.docmodel.corpus import DirectoryCorpus, InMemoryCorpus
from repro.docmodel.document import Document


def _docs(n=3):
    return [Document(f"d{i}", f"text {i}") for i in range(n)]


def test_in_memory_add_iterate_len():
    corpus = InMemoryCorpus(_docs())
    assert len(corpus) == 3
    assert [d.doc_id for d in corpus] == ["d0", "d1", "d2"]


def test_in_memory_get_and_contains():
    corpus = InMemoryCorpus(_docs())
    assert corpus.get("d1").text == "text 1"
    assert "d1" in corpus
    assert "missing" not in corpus
    with pytest.raises(KeyError):
        corpus.get("missing")


def test_in_memory_replace_same_id():
    corpus = InMemoryCorpus(_docs())
    corpus.add(Document("d1", "replaced"))
    assert len(corpus) == 3
    assert corpus.get("d1").text == "replaced"


def test_in_memory_remove():
    corpus = InMemoryCorpus(_docs())
    corpus.remove("d0")
    assert len(corpus) == 2
    with pytest.raises(KeyError):
        corpus.remove("d0")


def test_directory_corpus_roundtrip(tmp_path):
    corpus = DirectoryCorpus(str(tmp_path / "corpus"))
    for doc in _docs():
        corpus.add(doc)
    assert len(corpus) == 3
    fetched = corpus.get("d2")
    assert fetched.text == "text 2"
    assert fetched.metadata.source.endswith("d2.txt")


def test_directory_corpus_iterates_sorted(tmp_path):
    corpus = DirectoryCorpus(str(tmp_path))
    corpus.add(Document("b", "B"))
    corpus.add(Document("a", "A"))
    assert [d.doc_id for d in corpus] == ["a", "b"]


def test_directory_corpus_missing_doc(tmp_path):
    corpus = DirectoryCorpus(str(tmp_path))
    with pytest.raises(KeyError):
        corpus.get("nope")


def test_directory_corpus_rejects_path_traversal(tmp_path):
    corpus = DirectoryCorpus(str(tmp_path))
    with pytest.raises(ValueError):
        corpus.add(Document("../evil", "x"))


def test_doc_ids_helper():
    corpus = InMemoryCorpus(_docs(2))
    assert corpus.doc_ids() == ["d0", "d1"]
