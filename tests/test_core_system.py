"""Tests for the end-to-end StructureManagementSystem."""

import statistics

import pytest

from repro.core.system import FACTS_TABLE, StructureManagementSystem
from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.extraction.infobox import InfoboxExtractor
from repro.extraction.normalize import MONTHS, normalize_temperature
from repro.extraction.rules import ContextRule, RuleCascadeExtractor
from repro.extraction.dictionary import DictionaryExtractor
from repro.hi.crowd import SimulatedCrowd
from repro.integration.entity_resolution import EntityResolver

PROGRAM = """
pages = docs()
facts = extract(pages, "infobox")
output facts
"""


@pytest.fixture
def city_system():
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=16, seed=13)
    )
    system = StructureManagementSystem()
    system.registry.register_extractor("infobox", InfoboxExtractor())
    names = [t.name for t in truth]
    cities = DictionaryExtractor(attribute="city", phrases=names)
    rules = [
        ContextRule(f"{m[:3]}_temp", (m.capitalize(), "temperature"),
                    r"(\d+(?:\.\d+)?)\s*degrees",
                    normalizer=normalize_temperature, confidence=0.75)
        for m in MONTHS
    ]
    system.registry.register_extractor(
        "prose", RuleCascadeExtractor(rules=rules, entity_dictionary=cities)
    )
    system.registry.register_resolver("er", EntityResolver())
    system.registry.crowd = SimulatedCrowd.uniform(5, accuracy=0.95, seed=3)
    system.ingest(corpus)
    return system, truth


def test_ingest_indexes_pages(city_system):
    system, truth = city_system
    assert system.search.corpus_size() == 16
    hits = system.keyword(f"{truth[0].name} climate")
    assert hits


def test_generate_stores_queryable_facts(city_system):
    system, truth = city_system
    report = system.generate(PROGRAM)
    assert report.facts_stored > 0
    assert system.fact_count() == report.facts_stored
    infobox_city = next(t for t in truth if t.style == "infobox")
    rows = system.query(
        f"SELECT value_num FROM {FACTS_TABLE} "
        f"WHERE entity = '{infobox_city.name}' AND attribute = 'sep_temp'"
    )
    assert rows and rows[0]["value_num"] == infobox_city.monthly_temps[8]


def test_aggregate_query_matches_ground_truth(city_system):
    system, truth = city_system
    system.generate(PROGRAM)
    infobox_city = next(t for t in truth if t.style == "infobox")
    months = ["mar", "apr", "may", "jun", "jul", "aug", "sep"]
    attr_list = ", ".join(f"'{m}_temp'" for m in months)
    rows = system.query(
        f"SELECT AVG(value_num) AS avg_t FROM {FACTS_TABLE} "
        f"WHERE entity = '{infobox_city.name}' AND attribute IN ({attr_list})"
    )
    expected = statistics.fmean(infobox_city.monthly_temps[2:9])
    assert rows[0]["avg_t"] == pytest.approx(expected)


def test_generate_with_full_pipeline_program(city_system):
    system, truth = city_system
    program = """
pages = docs()
box = extract(pages, "infobox")
prose = extract(pages, "prose")
all = union(box, prose)
canon = resolve(all, "er")
fused = fuse(canon, "weighted_vote")
output fused
"""
    report = system.generate(program)
    assert report.facts_stored > 0
    # prose-only cities are now covered too
    prose_city = next(t for t in truth if t.style == "prose")
    rows = system.query(
        f"SELECT value_num FROM {FACTS_TABLE} "
        f"WHERE entity = '{prose_city.name}' AND attribute = 'sep_temp'"
    )
    assert rows and rows[0]["value_num"] == pytest.approx(
        prose_city.monthly_temps[8]
    )


def test_debugger_flags_corrupted_extraction():
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=40, seed=21, corruption_rate=0.2)
    )
    system = StructureManagementSystem()
    system.registry.register_extractor("infobox", InfoboxExtractor())
    system.ingest(corpus)
    # teach the debugger sane ranges under both attribute naming styles
    system.debugger.learn(
        [{f"{m[:3]}_temp": t.monthly_temps[i]}
         for t in truth for i, m in enumerate(MONTHS)]
        + [{f"{m}_temperature": t.monthly_temps[i]}
           for t in truth for i, m in enumerate(MONTHS)]
        + [{"population": float(t.population)} for t in truth]
    )
    report = system.generate(PROGRAM, learn_constraints_first=False)
    corrupted_infobox_cities = [
        t for t in truth
        if t.corrupted_month is not None and t.style in ("infobox",
                                                         "infobox_long")
    ]
    assert corrupted_infobox_cities, "seed produced no corrupted infobox city"
    assert report.facts_flagged >= len(corrupted_infobox_cities)
    flagged_values = {a.detail["value"] for a in system.debugger.alerts}
    assert any(t.corrupted_value in flagged_values
               for t in corrupted_infobox_cities)


def test_flagged_facts_get_halved_confidence():
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=40, seed=21, corruption_rate=0.2)
    )
    system = StructureManagementSystem()
    system.registry.register_extractor("infobox", InfoboxExtractor())
    system.ingest(corpus)
    system.debugger.learn([
        {f"{m[:3]}_temp": t.monthly_temps[i]}
        for t in truth for i, m in enumerate(MONTHS)
    ])
    system.generate(PROGRAM, learn_constraints_first=False)
    corrupted = next(
        t for t in truth
        if t.corrupted_month is not None and t.style == "infobox"
    )
    attr = f"{MONTHS[corrupted.corrupted_month][:3]}_temp"
    rows = system.query(
        f"SELECT confidence FROM {FACTS_TABLE} "
        f"WHERE entity = '{corrupted.name}' AND attribute = '{attr}'"
    )
    assert rows and rows[0]["confidence"] < 0.6


def test_translator_reflects_stored_structure(city_system):
    system, truth = city_system
    system.generate(PROGRAM)
    translator = system.translator()
    infobox_city = next(t for t in truth if t.style == "infobox")
    candidates = translator.translate(
        f"average sep_temp {infobox_city.name}"
    )
    assert candidates
    rows = system.query(candidates[0].sql)
    assert rows[0]["result"] == pytest.approx(infobox_city.monthly_temps[8])


def test_session_end_to_end(city_system):
    system, truth = city_system
    system.generate(PROGRAM)
    infobox_city = next(t for t in truth if t.style == "infobox")
    session = system.session("enduser")
    session.keyword(f"{infobox_city.name} temperature")
    session.suggest(f"average sep_temp {infobox_city.name}")
    rows = session.choose(0)
    assert rows[0]["result"] == pytest.approx(infobox_city.monthly_temps[8])
    assert "enduser" in session.transcript()


def test_explain_produces_provenance(city_system):
    system, truth = city_system
    system.generate(PROGRAM)
    infobox_city = next(t for t in truth if t.style == "infobox")
    explanation = system.explain(infobox_city.name, "sep_temp")
    assert "[fact]" in explanation
    assert "[span]" in explanation
    assert system.explain("Nowhere", "nothing").startswith("no recorded")


def test_keyword_facts_search(city_system):
    system, truth = city_system
    system.generate(PROGRAM)
    infobox_city = next(t for t in truth if t.style == "infobox")
    facts = system.keyword_facts(f"{infobox_city.name} population")
    assert any(f["attribute"].startswith("population") for f in facts)


def test_workspace_persistence(tmp_path, city_system):
    corpus, _ = generate_city_corpus(CityCorpusConfig(num_cities=4, seed=2))
    system = StructureManagementSystem(workspace=str(tmp_path / "ws"))
    system.registry.register_extractor("infobox", InfoboxExtractor())
    system.ingest(corpus)
    system.generate(PROGRAM)
    stored = system.fact_count()
    assert stored > 0
    assert system.storage.intermediate.count() > 0
    assert system.storage.raw.latest_version(next(iter(corpus)).doc_id) == 0
    system.close()
    # reopen: final structure survives via WAL recovery
    reopened = StructureManagementSystem(workspace=str(tmp_path / "ws"))
    assert reopened.fact_count() == stored
    reopened.close()


def test_generation_report_counts(city_system):
    system, _ = city_system
    report = system.generate(PROGRAM)
    assert report.intermediate_records == report.facts_stored
    assert report.chars_scanned > 0
    assert "extract" in report.plan_rendering
