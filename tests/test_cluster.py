"""Tests for the simulated cluster and Map-Reduce engine."""

import pytest

from repro.cluster.mapreduce import MapReduceJob, run_mapreduce
from repro.cluster.simulator import (
    ClusterConfig,
    SimulatedCluster,
    Task,
    TaskFailedError,
)


def _tasks(n, cost=1.0):
    return [Task(task_id=f"t{i}", fn=lambda i=i: i * 2, cost=cost) for i in range(n)]


def test_all_tasks_execute_and_return_values():
    cluster = SimulatedCluster(ClusterConfig(num_workers=3, seed=1))
    results, makespan = cluster.run(_tasks(10))
    assert sorted(r.value for r in results) == [i * 2 for i in range(10)]
    assert makespan > 0


def test_makespan_decreases_with_more_workers():
    makespans = []
    for workers in (1, 2, 4, 8):
        cluster = SimulatedCluster(
            ClusterConfig(num_workers=workers, seed=42, heterogeneity=0.0)
        )
        _, makespan = cluster.run(_tasks(64))
        makespans.append(makespan)
    assert makespans == sorted(makespans, reverse=True)
    # near-linear scaling for embarrassingly parallel equal tasks
    assert makespans[0] / makespans[-1] > 6.0


def test_deterministic_given_seed():
    a = SimulatedCluster(ClusterConfig(num_workers=4, seed=9, failure_prob=0.2))
    b = SimulatedCluster(ClusterConfig(num_workers=4, seed=9, failure_prob=0.2))
    _, ma = a.run(_tasks(20))
    _, mb = b.run(_tasks(20))
    assert ma == mb
    assert a.worker_speeds() == b.worker_speeds()


def test_failures_are_retried():
    cluster = SimulatedCluster(
        ClusterConfig(num_workers=4, seed=3, failure_prob=0.3, max_attempts=10)
    )
    results, _ = cluster.run(_tasks(30))
    assert len(results) == 30
    assert any(r.attempts > 1 for r in results)


def test_task_exhausts_attempts():
    cluster = SimulatedCluster(
        ClusterConfig(num_workers=2, seed=0, failure_prob=0.999, max_attempts=2)
    )
    with pytest.raises(TaskFailedError):
        cluster.run(_tasks(5))


def test_failures_increase_makespan():
    clean = SimulatedCluster(ClusterConfig(num_workers=4, seed=5))
    flaky = SimulatedCluster(
        ClusterConfig(num_workers=4, seed=5, failure_prob=0.3, max_attempts=20)
    )
    _, clean_ms = clean.run(_tasks(40))
    _, flaky_ms = flaky.run(_tasks(40))
    assert flaky_ms > clean_ms


def test_speculative_execution_beats_stragglers():
    base = dict(num_workers=4, seed=7, straggler_prob=0.3, straggler_factor=8.0)
    with_spec = SimulatedCluster(ClusterConfig(**base, speculative_execution=True))
    without = SimulatedCluster(ClusterConfig(**base, speculative_execution=False))
    _, ms_with = with_spec.run(_tasks(40))
    _, ms_without = without.run(_tasks(40))
    assert ms_with < ms_without


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        ClusterConfig(num_workers=0)
    with pytest.raises(ValueError):
        ClusterConfig(failure_prob=1.0)


def _wordcount_job(**kwargs):
    return MapReduceJob(
        map_fn=lambda line: [(w, 1) for w in line.split()],
        reduce_fn=lambda key, values: sum(values),
        **kwargs,
    )


def test_mapreduce_wordcount():
    lines = ["a b a", "b c", "a"] * 10
    result = run_mapreduce(
        _wordcount_job(split_size=5, num_reducers=3), lines,
        config=ClusterConfig(num_workers=4, seed=1),
    )
    assert result.output == {"a": 30, "b": 20, "c": 10}
    assert result.makespan > 0


def test_mapreduce_combiner_reduces_shuffle():
    lines = ["x x x x x"] * 20
    plain = run_mapreduce(
        _wordcount_job(split_size=5), lines,
        config=ClusterConfig(num_workers=2, seed=1),
    )
    combined = run_mapreduce(
        _wordcount_job(split_size=5, combine_fn=lambda k, vs: [sum(vs)]),
        lines, config=ClusterConfig(num_workers=2, seed=1),
    )
    assert combined.output == plain.output == {"x": 100}
    assert combined.shuffle_records < plain.shuffle_records


def test_mapreduce_empty_input():
    result = run_mapreduce(_wordcount_job(), [],
                           config=ClusterConfig(num_workers=2, seed=0))
    assert result.output == {}


def test_mapreduce_partitioning_is_stable():
    lines = ["alpha beta gamma delta"] * 5
    a = run_mapreduce(_wordcount_job(num_reducers=4), lines,
                      config=ClusterConfig(num_workers=2, seed=1))
    b = run_mapreduce(_wordcount_job(num_reducers=4), lines,
                      config=ClusterConfig(num_workers=2, seed=1))
    assert a.output == b.output
    assert a.shuffle_records == b.shuffle_records
