"""Tests for the SQL subset."""

import pytest

from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.sql import SqlError, execute_sql, parse_sql


@pytest.fixture
def db():
    database = Database()
    execute_sql(
        database,
        "CREATE TABLE city (name TEXT PRIMARY KEY, state TEXT, "
        "pop INT, temp FLOAT)",
    )
    execute_sql(
        database,
        "INSERT INTO city (name, state, pop, temp) VALUES "
        "('Madison', 'WI', 233209, 45.2), "
        "('Milwaukee', 'WI', 594833, 47.1), "
        "('Austin', 'TX', 950000, 68.5), "
        "('Houston', 'TX', 2300000, 70.1), "
        "('Portland', 'OR', 650000, 54.3)",
    )
    return database


def test_select_star(db):
    rows = execute_sql(db, "SELECT * FROM city")
    assert len(rows) == 5
    assert set(rows[0]) == {"name", "state", "pop", "temp"}


def test_select_projection_and_where(db):
    rows = execute_sql(db, "SELECT name FROM city WHERE state = 'TX'")
    assert sorted(r["name"] for r in rows) == ["Austin", "Houston"]


def test_where_comparisons(db):
    rows = execute_sql(db, "SELECT name FROM city WHERE pop >= 650000 AND temp < 60")
    assert [r["name"] for r in rows] == ["Portland"]


def test_where_or_and_not(db):
    rows = execute_sql(
        db, "SELECT name FROM city WHERE state = 'OR' OR (NOT state = 'WI' AND pop > 1000000)"
    )
    assert sorted(r["name"] for r in rows) == ["Houston", "Portland"]


def test_like_and_in(db):
    rows = execute_sql(db, "SELECT name FROM city WHERE name LIKE 'M%'")
    assert sorted(r["name"] for r in rows) == ["Madison", "Milwaukee"]
    rows = execute_sql(db, "SELECT name FROM city WHERE state IN ('TX', 'OR')")
    assert len(rows) == 3
    rows = execute_sql(db, "SELECT name FROM city WHERE state NOT IN ('TX', 'OR', 'WI')")
    assert rows == []


def test_is_null(db):
    execute_sql(db, "INSERT INTO city (name, state) VALUES ('Ghosttown', NULL)")
    rows = execute_sql(db, "SELECT name FROM city WHERE state IS NULL")
    assert [r["name"] for r in rows] == ["Ghosttown"]
    rows = execute_sql(db, "SELECT COUNT(*) AS n FROM city WHERE state IS NOT NULL")
    assert rows[0]["n"] == 5


def test_aggregates_without_group(db):
    rows = execute_sql(
        db, "SELECT COUNT(*) AS n, AVG(temp) AS avg_t, MIN(pop) AS lo, "
            "MAX(pop) AS hi, SUM(pop) AS total FROM city"
    )
    row = rows[0]
    assert row["n"] == 5
    assert row["lo"] == 233209 and row["hi"] == 2300000
    assert abs(row["avg_t"] - (45.2 + 47.1 + 68.5 + 70.1 + 54.3) / 5) < 1e-9


def test_group_by(db):
    rows = execute_sql(
        db, "SELECT state, COUNT(*) AS n, AVG(temp) AS avg_t FROM city "
            "GROUP BY state ORDER BY state"
    )
    assert [r["state"] for r in rows] == ["OR", "TX", "WI"]
    tx = next(r for r in rows if r["state"] == "TX")
    assert tx["n"] == 2
    assert abs(tx["avg_t"] - 69.3) < 1e-9


def test_having_filters_groups(db):
    rows = execute_sql(
        db, "SELECT state, COUNT(*) AS n FROM city GROUP BY state "
            "HAVING n >= 2 ORDER BY state"
    )
    assert [r["state"] for r in rows] == ["TX", "WI"]


def test_having_on_aggregate_alias_with_avg(db):
    rows = execute_sql(
        db, "SELECT state, AVG(temp) AS avg_t FROM city GROUP BY state "
            "HAVING avg_t > 50"
    )
    assert {r["state"] for r in rows} == {"OR", "TX"}


def test_having_without_group_by_rejected(db):
    with pytest.raises(SqlError):
        execute_sql(db, "SELECT name FROM city HAVING name = 'Madison'")


def test_group_by_rejects_naked_column(db):
    with pytest.raises(SqlError):
        execute_sql(db, "SELECT name FROM city GROUP BY state")


def test_order_by_and_limit(db):
    rows = execute_sql(db, "SELECT name, pop FROM city ORDER BY pop DESC LIMIT 2")
    assert [r["name"] for r in rows] == ["Houston", "Austin"]


def test_count_on_empty_group(db):
    rows = execute_sql(db, "SELECT COUNT(*) AS n FROM city WHERE pop > 99999999")
    assert rows[0]["n"] == 0


def test_update_with_where(db):
    result = execute_sql(db, "UPDATE city SET temp = 50.0 WHERE state = 'WI'")
    assert result == [{"updated": 2}]
    rows = execute_sql(db, "SELECT temp FROM city WHERE state = 'WI'")
    assert all(r["temp"] == 50.0 for r in rows)


def test_delete_with_where(db):
    result = execute_sql(db, "DELETE FROM city WHERE pop < 500000")
    assert result == [{"deleted": 1}]
    assert execute_sql(db, "SELECT COUNT(*) AS n FROM city")[0]["n"] == 4


def test_join(db):
    execute_sql(db, "CREATE TABLE capitals (state TEXT, capital TEXT)")
    execute_sql(
        db, "INSERT INTO capitals (state, capital) VALUES "
            "('WI', 'Madison'), ('TX', 'Austin')"
    )
    rows = execute_sql(
        db, "SELECT city.name, capitals.capital FROM city "
            "JOIN capitals ON city.state = capitals.state "
            "ORDER BY name"
    )
    assert len(rows) == 4  # 2 WI cities + 2 TX cities
    madison = next(r for r in rows if r["city.name"] == "Madison")
    assert madison["capitals.capital"] == "Madison"


def test_insert_arity_mismatch(db):
    with pytest.raises(SqlError):
        execute_sql(db, "INSERT INTO city (name, pop) VALUES ('X')")


def test_string_escaping(db):
    execute_sql(db, "INSERT INTO city (name, state) VALUES ('O''Fallon', 'MO')")
    rows = execute_sql(db, "SELECT name FROM city WHERE name = 'O''Fallon'")
    assert rows[0]["name"] == "O'Fallon"


def test_parse_errors():
    with pytest.raises(SqlError):
        parse_sql("SELEC * FROM t")
    with pytest.raises(SqlError):
        parse_sql("SELECT FROM t")
    with pytest.raises(SqlError):
        parse_sql("SELECT * FROM t WHERE")
    with pytest.raises(SqlError):
        parse_sql("SELECT * FROM t LIMIT 'x'")


def test_unknown_column_raises(db):
    with pytest.raises(SqlError):
        execute_sql(db, "SELECT bogus FROM city")


def test_equality_uses_index(db):
    db.create_index("city", "state", kind="hash")
    rows = execute_sql(db, "SELECT name FROM city WHERE state = 'WI' AND pop > 300000")
    assert [r["name"] for r in rows] == ["Milwaukee"]


def test_sql_within_explicit_transaction(db):
    txn = db.begin()
    execute_sql(db, "INSERT INTO city (name, state) VALUES ('Temp', 'XX')", txn=txn)
    txn.abort()
    rows = execute_sql(db, "SELECT name FROM city WHERE name = 'Temp'")
    assert rows == []


def test_comparison_type_error_raises(db):
    with pytest.raises(SqlError):
        execute_sql(db, "SELECT name FROM city WHERE name > 5")


def test_explain_returns_plan_rows(db):
    rows = execute_sql(db, "EXPLAIN SELECT name FROM city WHERE state = 'WI'")
    assert rows and all(set(r) == {"plan"} for r in rows)
    assert rows[0]["plan"].startswith("Project(name)")
    assert any("Scan" in r["plan"] or "Lookup" in r["plan"] for r in rows)


def test_explain_reflects_available_indexes(db):
    db.create_index("city", "state", kind="hash")
    rows = execute_sql(db, "EXPLAIN SELECT name FROM city WHERE state = 'WI'")
    plan = "\n".join(r["plan"] for r in rows)
    assert "IndexLookup(city.state = 'WI' via hash index)" in plan


def test_explain_non_select_raises(db):
    with pytest.raises(SqlError):
        execute_sql(db, "EXPLAIN INSERT INTO city (name) VALUES ('x')")


def test_planner_off_oracle_matches(db):
    db.create_index("city", "state", kind="hash")
    db.create_index("city", "pop", kind="sorted")
    for sql in [
        "SELECT name FROM city WHERE state = 'WI' AND pop > 300000",
        "SELECT name, pop FROM city WHERE pop >= 500000 ORDER BY pop DESC LIMIT 2",
        "SELECT state, COUNT(*) AS n FROM city GROUP BY state",
    ]:
        assert execute_sql(db, sql) == \
            execute_sql(db, sql, use_planner=False), sql
