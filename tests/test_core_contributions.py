"""Tests for user contributions and system-level attribute unification."""

import pytest

from repro.core.system import FACTS_TABLE, StructureManagementSystem
from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.debugger.constraints import RangeConstraint
from repro.extraction.infobox import InfoboxExtractor
from repro.extraction.normalize import MONTHS


@pytest.fixture
def system():
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=8, seed=88)
    )
    sys_ = StructureManagementSystem()
    sys_.registry.register_extractor("infobox", InfoboxExtractor())
    sys_.ingest(corpus)
    sys_.generate('p = docs()\nf = extract(p, "infobox")\noutput f')
    return sys_, truth


def test_contribute_requires_registered_user(system):
    sys_, _ = system
    with pytest.raises(ValueError):
        sys_.contribute("ghost", "Madison", "nickname", "Mad City")


def test_contribution_is_stored_and_queryable(system):
    sys_, _ = system
    sys_.users.register("alice", "pw")
    sys_.contribute("alice", "Madison", "nickname", "Mad City")
    rows = sys_.query(
        f"SELECT value_text, confidence, doc_id FROM {FACTS_TABLE} "
        "WHERE entity = 'Madison' AND attribute = 'nickname'"
    )
    assert rows[0]["value_text"] == "Mad City"
    assert rows[0]["doc_id"] == "user:alice"
    assert rows[0]["confidence"] == pytest.approx(0.75)  # fresh reputation


def test_contribution_confidence_tracks_reputation(system):
    sys_, _ = system
    sys_.users.register("veteran", "pw")
    for _ in range(20):
        sys_.users.reputation.record_gold("veteran", True)
    sys_.contribute("veteran", "Madison", "motto", "Forward")
    rows = sys_.query(
        f"SELECT confidence FROM {FACTS_TABLE} WHERE attribute = 'motto'"
    )
    assert rows[0]["confidence"] > 0.9


def test_contribution_screened_by_debugger(system):
    sys_, _ = system
    sys_.debugger.add_constraint(RangeConstraint("sep_temp", -80.0, 130.0))
    sys_.users.register("sloppy", "pw")
    sys_.contribute("sloppy", "Madison", "sep_temp", 500.0)
    rows = sys_.query(
        f"SELECT confidence FROM {FACTS_TABLE} "
        "WHERE doc_id = 'user:sloppy'"
    )
    assert rows[0]["confidence"] < 0.5  # halved by the violation
    assert any("500" in a.message for a in sys_.debugger.alerts)


def test_contribution_has_feedback_provenance(system):
    sys_, _ = system
    sys_.users.register("bob", "pw")
    sys_.contribute("bob", "Madison", "nickname", "Mad City")
    explanation = sys_.explain("Madison", "nickname")
    assert "[feedback]" in explanation
    assert "bob" in explanation


def test_contribution_searchable(system):
    sys_, _ = system
    sys_.users.register("carol", "pw")
    sys_.contribute("carol", "Madison", "nickname", "Mad City")
    facts = sys_.keyword_facts("Mad City nickname")
    assert any(f["attribute"] == "nickname" for f in facts)


def test_unify_attributes_folds_long_names(system):
    sys_, truth = system
    short = [f"{m[:3]}_temp" for m in MONTHS]
    long = [f"{m}_temperature" for m in MONTHS]
    before = sys_.query(
        f"SELECT COUNT(*) AS n FROM {FACTS_TABLE} "
        f"WHERE attribute = 'september_temperature'"
    )[0]["n"]
    assert before > 0  # the corpus contains infobox_long pages
    results = sys_.unify_attributes(long, short)
    assert len(results) == 12
    for left, right, rewritten in results:
        assert left.split("_")[0][:3] == right.split("_")[0]
        assert rewritten > 0
    after = sys_.query(
        f"SELECT COUNT(*) AS n FROM {FACTS_TABLE} "
        f"WHERE attribute = 'september_temperature'"
    )[0]["n"]
    assert after == 0


def test_unify_attributes_no_samples_is_noop(system):
    sys_, _ = system
    assert sys_.unify_attributes(["ghost_attr"], ["sep_temp"]) == []


def test_unify_attributes_handles_quoted_names(system):
    # Regression: attribute names containing a single quote used to break
    # the interpolated UPDATE statement.  The rewrite is now parameterized.
    sys_, _ = system
    sys_.users.register("pat", "pw")
    for value in (6.0, 7.0, 8.0):
        sys_.contribute("pat", "Madison", "o'clock_temp", value)
        sys_.contribute("pat", "Madison", "oclock_temperature", value)
    results = sys_.unify_attributes(["o'clock_temp"], ["oclock_temperature"])
    assert results == [("o'clock_temp", "oclock_temperature", 3)]
    remaining = sys_.query(
        f"SELECT attribute FROM {FACTS_TABLE}"
    )
    names = {r["attribute"] for r in remaining}
    assert "o'clock_temp" not in names
    assert "oclock_temperature" in names
