"""Tests for the telemetry subsystem: metrics, tracing, reports, e2e."""

import json
import threading

import pytest

from repro import telemetry
from repro.cluster.backends import (
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
)
from repro.core.system import StructureManagementSystem
from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.extraction.infobox import InfoboxExtractor
from repro.telemetry.metrics import (
    MetricsRegistry,
    get_registry,
    global_registry,
    use_registry,
)
from repro.telemetry.report import (
    layer_of,
    load_telemetry,
    render_report,
    summarize_trace,
)
from repro.telemetry.tracing import (
    InMemorySpanExporter,
    JsonlSpanExporter,
    Span,
    Tracer,
)


def _metered_payload(x):
    """Module-level (picklable) payload that records metrics."""
    registry = get_registry()
    registry.inc("test.calls")
    registry.inc("test.sum", x)
    registry.observe("test.values", x, buckets=(10, 100, 1000))
    return x * 2


# ----------------------------------------------------------------- registry


def test_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.inc("a.b")
    registry.inc("a.b", 2)
    registry.set_gauge("g", 1.5)
    registry.set_gauge("g", 2.5)
    registry.observe("h", 3.0, buckets=(1, 5, 10))
    registry.observe("h", 7.0)
    assert registry.get("a.b") == 3
    assert registry.get("missing") == 0.0
    assert registry.gauge("g") == 2.5
    hist = registry.histogram("h")
    assert hist["count"] == 2 and hist["sum"] == 10.0
    assert hist["min"] == 3.0 and hist["max"] == 7.0
    assert hist["counts"] == [0, 1, 1, 0]  # <=1, <=5, <=10, overflow


def test_labeled_returns_counter_semantics():
    registry = MetricsRegistry()
    registry.inc("executor.rows.f", 4)
    registry.inc("executor.rows.g", 2)
    registry.inc("executor.rowsextra", 9)  # not under the dotted prefix
    rows = registry.labeled("executor.rows")
    assert rows == {"f": 4, "g": 2}
    assert rows["never_seen"] == 0  # Counter: missing keys read as zero


def test_merge_rules():
    left = MetricsRegistry()
    right = MetricsRegistry()
    left.inc("c", 1)
    right.inc("c", 2)
    left.set_gauge("g", 1.0)
    right.set_gauge("g", 9.0)
    left.observe("h", 1.0, buckets=(2, 4))
    right.observe("h", 3.0, buckets=(2, 4))
    left.merge(right)
    assert left.get("c") == 3  # counters add
    assert left.gauge("g") == 9.0  # gauges: incoming wins
    hist = left.histogram("h")
    assert hist["count"] == 2 and hist["counts"] == [1, 1, 0]
    assert hist["min"] == 1.0 and hist["max"] == 3.0


def test_merge_rejects_bucket_mismatch():
    left = MetricsRegistry()
    right = MetricsRegistry()
    left.observe("h", 1.0, buckets=(1, 2))
    right.observe("h", 1.0, buckets=(5, 6))
    with pytest.raises(ValueError):
        left.merge(right)


def test_merge_accepts_snapshot_dict_round_trip():
    source = MetricsRegistry()
    source.inc("n", 5)
    source.observe("h", 2.0, buckets=(1, 10))
    snapshot = json.loads(json.dumps(source.snapshot()))  # wire round-trip
    target = MetricsRegistry()
    target.merge(snapshot)
    assert target.get("n") == 5
    assert target.histogram("h")["count"] == 1


def test_ambient_registry_is_per_thread():
    override = MetricsRegistry()
    seen_in_thread = []

    def worker():
        seen_in_thread.append(get_registry())

    with use_registry(override):
        assert get_registry() is override
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    assert get_registry() is global_registry()
    # the override was installed on the main thread only
    assert seen_in_thread == [global_registry()]


# ------------------------------------------------- backend merge determinism


def _run_backend(backend, items):
    registry = MetricsRegistry()
    with use_registry(registry):
        with backend:
            results = backend.map(_metered_payload, items)
    return results, registry.snapshot()


def test_metric_totals_identical_across_backends():
    items = list(range(40))
    serial_out, serial_snap = _run_backend(SerialBackend(), items)
    thread_out, thread_snap = _run_backend(
        ThreadPoolBackend(max_workers=4), items)
    process_out, process_snap = _run_backend(
        ProcessPoolBackend(max_workers=2), items)
    assert serial_out == thread_out == process_out == [x * 2 for x in items]
    assert serial_snap == thread_snap == process_snap
    assert serial_snap["counters"]["test.calls"] == 40
    assert serial_snap["counters"]["test.sum"] == sum(items)
    assert serial_snap["histograms"]["test.values"]["count"] == 40


# ------------------------------------------------------------------ tracing


def test_span_nesting_and_export_order():
    memory = InMemorySpanExporter()
    tracer = Tracer([memory])
    with tracer.span("outer", kind="root") as outer:
        with tracer.span("middle") as middle:
            with tracer.span("inner"):
                pass
        with tracer.span("sibling"):
            pass
    names = [s.name for s in memory.spans]
    assert names == ["inner", "middle", "sibling", "outer"]  # finish order
    by_name = {s.name: s for s in memory.spans}
    assert by_name["outer"].parent_id is None
    assert by_name["middle"].parent_id == outer.span_id
    assert by_name["inner"].parent_id == middle.span_id
    assert by_name["sibling"].parent_id == outer.span_id
    assert len({s.trace_id for s in memory.spans}) == 1
    assert by_name["outer"].attributes == {"kind": "root"}
    assert all(s.end >= s.start for s in memory.spans)


def test_span_error_status_propagates():
    memory = InMemorySpanExporter()
    tracer = Tracer([memory])
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("kaput")
    span = memory.spans[0]
    assert span.status == "error"
    assert "kaput" in span.error
    assert span.end is not None  # finished despite the exception


def test_separate_roots_get_separate_traces():
    memory = InMemorySpanExporter()
    tracer = Tracer([memory])
    with tracer.span("first"):
        pass
    with tracer.span("second"):
        pass
    assert memory.spans[0].trace_id != memory.spans[1].trace_id


def test_jsonl_export_round_trip(tmp_path):
    path = str(tmp_path / "tel.jsonl")
    exporter = JsonlSpanExporter(path)
    tracer = Tracer([exporter])
    with tracer.span("a", n=1):
        with tracer.span("b"):
            pass
    registry = MetricsRegistry()
    registry.inc("x.y", 7)
    exporter.export_metrics(registry.snapshot())
    exporter.close()

    spans, snapshot = load_telemetry(path)
    assert [s.name for s in spans] == ["b", "a"]
    assert isinstance(spans[0], Span)
    assert spans[0].parent_id == spans[1].span_id
    assert spans[1].attributes == {"n": 1}
    assert snapshot["counters"]["x.y"] == 7


# ------------------------------------------------------------------ reports


def test_layer_mapping():
    assert layer_of("system.generate") == "user"
    assert layer_of("executor.op.extract") == "processing"
    assert layer_of("mapreduce.wave.map") == "cluster"
    assert layer_of("rdbms.txn") == "storage"


def test_summarize_trace_self_time_and_top_spans():
    spans = [
        Span("system.generate", "t1", "s1", None, start=0.0, end=10.0),
        Span("executor.plan", "t1", "s2", "s1", start=1.0, end=9.0),
        Span("rdbms.txn", "t1", "s3", "s2", start=2.0, end=5.0),
    ]
    summary = summarize_trace(spans, top_k=2)
    assert summary["span_count"] == 3
    assert summary["trace_count"] == 1
    assert summary["top_spans"][0]["name"] == "system.generate"
    layers = summary["layer_seconds"]
    # self time: generate 10-8=2, plan 8-3=5, txn 3
    assert layers["user"] == pytest.approx(2.0)
    assert layers["processing"] == pytest.approx(5.0)
    assert layers["storage"] == pytest.approx(3.0)
    text = render_report(summary)
    assert "system.generate" in text and "per-layer" in text


# -------------------------------------------------------------- end-to-end


def test_end_to_end_span_tree_and_metrics(tmp_path):
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=6, seed=42, styles=("infobox",))
    )
    registry = MetricsRegistry()
    path = str(tmp_path / "tel.jsonl")
    with use_registry(registry):
        session = telemetry.enable(jsonl_path=path)
        try:
            system = StructureManagementSystem(
                workspace=str(tmp_path / "ws"), use_cluster=True
            )
            system.registry.register_extractor("infobox", InfoboxExtractor())
            system.ingest(corpus)
            report = system.generate(
                'p = docs()\nf = extract(p, "infobox")\noutput f'
            )
            rows = system.query(
                "SELECT entity FROM facts WHERE attribute = 'sep_temp'"
            )
            system.close()
            spans = session.spans()
            snapshot = session.finish()
        finally:
            telemetry.disable()

    assert report.facts_stored > 0 and len(rows) == len(truth)
    by_name = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span)

    # coherent tree: system root -> executor plan -> extract op ->
    # mapreduce job -> waves; rdbms txns nested somewhere below the root
    generate_span = by_name["system.generate"][0]
    assert generate_span.parent_id is None
    assert generate_span.attributes["facts_stored"] == report.facts_stored
    plan_span = by_name["executor.plan"][0]
    extract_span = by_name["executor.op.extract"][0]
    job_span = by_name["mapreduce.job"][0]
    map_wave = by_name["mapreduce.wave.map"][0]
    parents = {s.span_id: s.parent_id for group in by_name.values()
               for s in group}
    def ancestors(span):
        seen = []
        current = span.parent_id
        while current is not None:
            seen.append(current)
            current = parents.get(current)
        return seen
    assert generate_span.span_id in ancestors(plan_span)
    assert plan_span.span_id in ancestors(extract_span)
    assert extract_span.span_id in ancestors(job_span)
    assert job_span.span_id == map_wave.parent_id
    assert any(generate_span.span_id in ancestors(s)
               for s in by_name["rdbms.txn"])
    assert all(s.trace_id == generate_span.trace_id
               for s in (plan_span, extract_span, job_span, map_wave))
    # per-task spans exist while tracing is on
    assert any(name.startswith("mapreduce.task.") for name in by_name)

    # metrics snapshot covers all four layers
    counters = snapshot["counters"]
    assert counters["rdbms.wal.records"] > 0
    assert counters["executor.rows.f"] > 0
    assert counters["mapreduce.shuffle.bytes"] > 0
    assert counters["system.facts.stored"] == report.facts_stored

    # the JSONL file carries the same story
    file_spans, file_snapshot = load_telemetry(path)
    assert {s.span_id for s in file_spans} == {s.span_id for s in spans}
    assert file_snapshot["counters"]["rdbms.wal.records"] \
        == counters["rdbms.wal.records"]
    summary = summarize_trace(file_spans)
    assert summary["span_count"] == len(spans)
    assert set(summary["layer_seconds"]) >= {"user", "processing", "storage"}


def test_enable_twice_raises_and_disable_is_idempotent(tmp_path):
    session = telemetry.enable()
    try:
        with pytest.raises(RuntimeError):
            telemetry.enable()
    finally:
        telemetry.disable()
    telemetry.disable()  # idempotent
    assert telemetry.current_session() is None
    assert session.spans() == []
