"""Determinism contract of execution backends at the plan/system level:
serial == thread == process output, with and without the simulated cluster.
"""

from collections import Counter

import pytest

from repro.cluster.backends import make_backend
from repro.cluster.simulator import ClusterConfig
from repro.core.system import FACTS_TABLE, StructureManagementSystem
from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.extraction.infobox import InfoboxExtractor
from repro.lang.executor import run_program
from repro.lang.registry import OperatorRegistry

PROGRAM = 'p = docs()\nf = extract(p, "infobox")\noutput f'


def _corpus(num_cities=16):
    corpus, _ = generate_city_corpus(
        CityCorpusConfig(num_cities=num_cities, seed=53, styles=("infobox",))
    )
    return list(corpus)


def _registry():
    registry = OperatorRegistry()
    registry.register_extractor("infobox", InfoboxExtractor())
    return registry


def _run(backend=None, cluster=None):
    return run_program(PROGRAM, _corpus(), _registry(), backend=backend,
                       cluster=cluster)


# --------------------------------------------------------- executor level


@pytest.mark.parametrize("spec", ["serial", "thread", "process"])
def test_executor_backend_rows_match_inline(spec):
    inline = _run()
    with make_backend(spec, max_workers=3) as backend:
        result = _run(backend=backend)
    assert result.rows == inline.rows
    assert result.stats.backend_name == spec
    assert result.stats.real_parallel_seconds >= 0.0
    assert result.stats.wave_task_counts["map"] == len(_corpus())


def test_executor_accepts_backend_spec_string():
    result = _run(backend="serial")
    assert result.stats.backend_name == "serial"
    assert result.rows == _run().rows


def test_inline_stats_report_no_backend():
    stats = _run().stats
    assert stats.backend_name == "inline"
    assert stats.real_parallel_seconds == 0.0
    assert stats.wave_task_counts == Counter()


def test_stats_counters_are_counters():
    stats = _run().stats
    assert isinstance(stats.chars_scanned, Counter)
    assert isinstance(stats.docs_extracted, Counter)
    assert isinstance(stats.tuples_produced, Counter)
    assert stats.total_chars_scanned > 0
    # Counter is a dict: existing readers keep working
    assert dict(stats.docs_extracted)


# ----------------------------------------------------------- system level


def _system_facts(backend, use_cluster=False):
    system = StructureManagementSystem(
        backend=backend, backend_workers=3, use_cluster=use_cluster,
        cluster_config=ClusterConfig(num_workers=4, seed=2),
    )
    system.registry.register_extractor("infobox", InfoboxExtractor())
    system.ingest(_corpus())
    report = system.generate(PROGRAM)
    facts = sorted(
        (r["entity"], r["attribute"], r["value_num"], r["value_text"])
        for r in system.query(
            f"SELECT entity, attribute, value_num, value_text "
            f"FROM {FACTS_TABLE}"
        )
    )
    system.close()
    return facts, report


def test_system_backend_facts_identical_to_inline():
    base, base_report = _system_facts(None)
    assert base_report.backend_name == "inline"
    for spec in ("serial", "thread", "process"):
        facts, report = _system_facts(spec)
        assert facts == base, spec
        assert report.backend_name == spec


def test_system_backend_combines_with_cluster():
    base, _ = _system_facts(None)
    facts, report = _system_facts("thread", use_cluster=True)
    assert facts == base
    assert report.cluster_makespan > 0  # simulated model still reported
    assert report.backend_name == "thread"
    # and the simulated makespan matches the no-backend cluster run
    _, inline_report = _system_facts(None, use_cluster=True)
    assert report.cluster_makespan == inline_report.cluster_makespan


def test_system_rejects_unknown_backend():
    from repro.cluster.backends import BackendError

    with pytest.raises(BackendError):
        StructureManagementSystem(backend="warp-drive")


def test_ingest_batch_deduplicates_doc_ids():
    system = StructureManagementSystem()
    docs = _corpus(4)
    # same page twice in one batch, plus a reingest of the whole batch
    assert system.ingest(docs + [docs[0]]) == 5
    assert system.search.corpus_size() == 4
    assert system.ingest(docs) == 4
    assert system.search.corpus_size() == 4
    system.close()
