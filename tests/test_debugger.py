"""Tests for the semantic debugger and system monitor."""

import pytest

from repro.debugger.constraints import (
    DomainConstraint,
    FunctionalDependency,
    RangeConstraint,
    TypeConstraint,
    learn_constraints,
)
from repro.debugger.semantic import SemanticDebugger, SystemMonitor


def _temp_sample(n=20):
    return [{"temp": 20.0 + i, "city": "Madison", "state": "WI"}
            for i in range(n)]


def test_learn_range_constraint_widened():
    constraints = learn_constraints(_temp_sample())
    ranges = [c for c in constraints if isinstance(c, RangeConstraint)]
    assert len(ranges) == 1
    constraint = ranges[0]
    assert constraint.low < 20.0
    assert constraint.high > 39.0


def test_range_constraint_flags_the_papers_135_example():
    debugger = SemanticDebugger()
    debugger.learn(_temp_sample())
    violations = debugger.check({"temp": 135.0})
    assert violations
    assert violations[0].constraint == "range"
    assert "135" in violations[0].message


def test_range_constraint_accepts_nearby_unseen_value():
    debugger = SemanticDebugger()
    debugger.learn(_temp_sample())
    assert debugger.check({"temp": 41.0}) == []  # just above max, within slack


def test_type_constraint():
    constraint = TypeConstraint("temp", "number")
    assert constraint.check({"temp": 20.0}) == []
    assert constraint.check({"temp": "warm"})[0].constraint == "type"
    assert constraint.check({"temp": None}) == []
    assert constraint.check({}) == []


def test_domain_constraint_learned_for_categorical():
    constraints = learn_constraints(_temp_sample())
    domains = {c.attribute for c in constraints
               if isinstance(c, DomainConstraint)}
    assert "state" in domains
    debugger = SemanticDebugger()
    debugger.learn(_temp_sample())
    assert any(v.constraint == "domain"
               for v in debugger.check({"state": "NOTASTATE"}))


def test_domain_not_learned_for_high_cardinality():
    facts = [{"name": f"unique-{i}"} for i in range(20)]
    constraints = learn_constraints(facts)
    assert not any(isinstance(c, DomainConstraint) for c in constraints)


def test_functional_dependency_learned_and_enforced():
    facts = [
        {"city": "Madison", "state": "WI"},
        {"city": "Madison", "state": "WI"},
        {"city": "Austin", "state": "TX"},
        {"city": "Austin", "state": "TX"},
        {"city": "Houston", "state": "TX"},
    ]
    constraints = learn_constraints(facts, domain_min_support=99)
    fds = [c for c in constraints if isinstance(c, FunctionalDependency)
           and c.determinant == "city" and c.dependent == "state"]
    assert fds
    violation = fds[0].check({"city": "Madison", "state": "TX"})
    assert violation and violation[0].constraint == "fd"
    assert fds[0].check({"city": "Madison", "state": "WI"}) == []
    assert fds[0].check({"city": "NewCity", "state": "ZZ"}) == []


def test_fd_not_learned_when_inconsistent():
    facts = [
        {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
        {"a": 2, "b": "x"}, {"a": 2, "b": "x"}, {"a": 3, "b": "z"},
    ]
    constraints = learn_constraints(facts)
    assert not any(isinstance(c, FunctionalDependency) and c.determinant == "a"
                   for c in constraints)


def test_debugger_screen_and_counters():
    debugger = SemanticDebugger()
    debugger.learn(_temp_sample())
    flagged = debugger.screen([{"temp": 25.0}, {"temp": 500.0}, {"temp": 30.0}])
    assert flagged == [1]
    assert debugger.facts_checked == 3
    assert debugger.facts_flagged == 1
    assert len(debugger.alerts) >= 1


def test_debugger_manual_constraint():
    debugger = SemanticDebugger()
    debugger.add_constraint(RangeConstraint("temp", -80.0, 130.0))
    assert debugger.check({"temp": 135.0})
    assert "temp" in debugger.describe_rules()[0]


def test_monitor_z_score_alert():
    monitor = SystemMonitor(window=10, z_threshold=3.0)
    for _ in range(8):
        assert monitor.record("extractions", 100.0) is None
    alert = monitor.record("extractions", 2000.0)
    assert alert is not None
    assert "extractions" in alert.message


def test_monitor_requires_history_before_alerting():
    monitor = SystemMonitor()
    assert monitor.record("m", 1.0) is None
    assert monitor.record("m", 99999.0) is None  # only 1 past observation


def test_monitor_error_rate_alert():
    monitor = SystemMonitor(max_error_rate=0.1)
    assert monitor.record_batch(processed=100, errors=5) is None
    alert = monitor.record_batch(processed=100, errors=30)
    assert alert is not None and alert.severity == "error"


def test_monitor_invalid_window():
    with pytest.raises(ValueError):
        SystemMonitor(window=2)
