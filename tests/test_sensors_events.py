"""Tests for the Section 6 generalization: sensor logs and event IE."""

import pytest

from repro.datagen.sensors import (
    EVENT_TYPES,
    SensorCorpusConfig,
    generate_sensor_corpus,
)
from repro.docmodel.document import Document
from repro.extraction.events import (
    Reading,
    SensorEventExtractor,
    parse_sensor_log,
)


def test_corpus_deterministic_and_sized():
    a, truth_a = generate_sensor_corpus(SensorCorpusConfig(seed=1))
    b, truth_b = generate_sensor_corpus(SensorCorpusConfig(seed=1))
    assert [d.text for d in a] == [d.text for d in b]
    assert truth_a == truth_b
    assert len(a) == 9  # 3 kinds x 3 sensors


def test_corpus_events_raise_values():
    corpus, truth = generate_sensor_corpus(
        SensorCorpusConfig(noise=0.02, seed=2)
    )
    event = truth[0]
    doc = corpus.get(f"log_{event.sensor_id}")
    readings = parse_sensor_log(doc)
    inside = readings[event.start_minute].value
    outside_index = (event.start_minute + 100) % len(readings)
    outside = readings[outside_index].value
    assert inside > outside


def test_parse_sensor_log_offsets():
    doc = Document("log", "0 door0 0.1\n1 door0 0.9\nbad line\n2 door0 0.2")
    readings = parse_sensor_log(doc)
    assert len(readings) == 3
    for reading in readings:
        line = doc.text[reading.line_start:reading.line_end]
        assert line.split()[1] == reading.sensor_id


def test_parse_skips_malformed():
    doc = Document("log", "x y\n1 s notanumber\n2 s 1.0")
    readings = parse_sensor_log(doc)
    assert [r.minute for r in readings] == [2]


def test_detector_finds_injected_events():
    corpus, truth = generate_sensor_corpus(
        SensorCorpusConfig(noise=0.05, seed=3)
    )
    extractor = SensorEventExtractor()
    detected = extractor.extract_corpus(corpus)

    def matches(d, t):
        minute = int(d.value.split("@")[1])
        return (d.entity == t.sensor_id
                and t.start_minute - 2 <= minute
                <= t.start_minute + t.duration)

    recall = sum(
        1 for t in truth if any(matches(d, t) for d in detected)
    ) / len(truth)
    false_positives = sum(
        1 for d in detected if not any(matches(d, t) for t in truth)
    )
    assert recall > 0.9
    assert false_positives <= 1


def test_detector_quiet_log_has_no_events():
    doc = Document(
        "log", "\n".join(f"{i} temp0 68.0{i % 7}" for i in range(200))
    )
    assert SensorEventExtractor().extract(doc) == []


def test_detector_short_log_returns_empty():
    doc = Document("log", "0 s 1.0\n1 s 1.0")
    assert SensorEventExtractor(baseline_window=60).extract(doc) == []


def test_detector_min_duration_filters_blips():
    lines = [f"{i} s 10.0" for i in range(100)]
    lines[50] = "50 s 99.0"  # single-reading blip
    doc = Document("log", "\n".join(lines))
    assert SensorEventExtractor(min_duration=3).extract(doc) == []
    lines[50:55] = [f"{i} s 99.0" for i in range(50, 55)]
    doc2 = Document("log", "\n".join(lines))
    events = SensorEventExtractor(min_duration=3).extract(doc2)
    assert len(events) == 1
    assert events[0].value.endswith("@50")


def test_detector_classifier_labels_events():
    corpus, truth = generate_sensor_corpus(
        SensorCorpusConfig(noise=0.05, seed=4, num_sensors=1)
    )
    extractor = SensorEventExtractor(
        classify=lambda sensor, mag: EVENT_TYPES[sensor.rstrip("0123456789")]
    )
    detected = extractor.extract_corpus(corpus)
    labels = {d.value.split("@")[0] for d in detected}
    assert labels <= set(EVENT_TYPES.values())
    assert "entry" in labels


def test_detector_confidence_in_bounds_and_spans_valid():
    corpus, _ = generate_sensor_corpus(SensorCorpusConfig(seed=5))
    extractor = SensorEventExtractor()
    for extraction in extractor.extract_corpus(corpus):
        assert 0.5 <= extraction.confidence <= 0.99
        doc = corpus.get(extraction.span.doc_id)
        assert doc.text[extraction.span.start:extraction.span.end] \
            == extraction.span.text


def test_noise_degrades_detection():
    def f1_at(noise):
        corpus, truth = generate_sensor_corpus(
            SensorCorpusConfig(noise=noise, seed=6)
        )
        detected = SensorEventExtractor().extract_corpus(corpus)

        def matches(d, t):
            minute = int(d.value.split("@")[1])
            return (d.entity == t.sensor_id
                    and t.start_minute - 2 <= minute
                    <= t.start_minute + t.duration)

        tp = sum(1 for t in truth if any(matches(d, t) for d in detected))
        fp = sum(1 for d in detected if not any(matches(d, t) for t in truth))
        precision = tp / (tp + fp) if tp + fp else 1.0
        recall = tp / len(truth)
        return (2 * precision * recall / (precision + recall)
                if precision + recall else 0.0)

    assert f1_at(0.05) >= f1_at(0.6)
