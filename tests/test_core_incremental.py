"""Tests for incremental best-effort extraction."""

import pytest

from repro.core.incremental import IncrementalExtractionManager
from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.extraction.infobox import InfoboxExtractor
from repro.extraction.regex_extractor import RegexExtractor
from repro.extraction.normalize import normalize_number


def _manager():
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=12, seed=17, styles=("infobox",))
    )
    manager = IncrementalExtractionManager(corpus=list(corpus))
    manager.register(
        "temps",
        InfoboxExtractor(include_fields=tuple(
            f"{m}_temp" for m in
            ("jan", "feb", "mar", "apr", "may", "jun",
             "jul", "aug", "sep", "oct", "nov", "dec")
        )),
        attributes=[f"{m}_temp" for m in
                    ("jan", "feb", "mar", "apr", "may", "jun",
                     "jul", "aug", "sep", "oct", "nov", "dec")],
    )
    manager.register(
        "population",
        RegexExtractor(pattern=r"population = (?P<population>[\d,]+)",
                       normalizers={"population": normalize_number}),
        attributes=["population"],
    )
    manager.register(
        "state",
        RegexExtractor(pattern=r"state = (?P<state>[A-Za-z ]+)"),
        attributes=["state"],
    )
    return manager, truth


def test_demand_runs_only_covering_extractors():
    manager, _ = _manager()
    results = manager.demand(["sep_temp"])
    assert results
    assert all(r.attribute == "sep_temp" for r in results)
    assert manager.demanded_attributes() >= {"sep_temp", "jan_temp"}
    assert "population" not in manager.demanded_attributes()


def test_demand_is_cached():
    manager, _ = _manager()
    manager.demand(["sep_temp"])
    work_after_first = manager.work_done
    manager.demand(["sep_temp", "jan_temp"])  # same extractor, no rerun
    assert manager.work_done == work_after_first


def test_incremental_cost_grows_with_need():
    manager, _ = _manager()
    manager.demand(["sep_temp"])
    cost1 = manager.work_done
    manager.demand(["population"])
    cost2 = manager.work_done
    assert cost2 > cost1


def test_incremental_total_can_stay_below_one_shot():
    incremental, _ = _manager()
    incremental.demand(["sep_temp"])
    incremental.demand(["population"])
    one_shot, _ = _manager()
    one_shot.extract_all()
    assert incremental.work_done < one_shot.work_done  # 'state' never needed


def test_one_shot_equals_incremental_union():
    a, _ = _manager()
    a.demand(["sep_temp"])
    a.demand(["population"])
    a.demand(["state"])
    b, _ = _manager()
    b.extract_all()
    key = lambda e: (e.entity, e.attribute, str(e.value))
    assert sorted(map(key, a.cached())) == sorted(map(key, b.cached()))


def test_unknown_attribute_raises():
    manager, _ = _manager()
    with pytest.raises(KeyError):
        manager.demand(["nonexistent_attr"])


def test_register_validation():
    manager = IncrementalExtractionManager(corpus=[])
    extractor = RegexExtractor(pattern=r"(?P<x>\d)")
    manager.register("a", extractor, ["x"])
    with pytest.raises(ValueError):
        manager.register("a", extractor, ["y"])
    with pytest.raises(ValueError):
        manager.register("b", extractor, [])


def test_values_match_ground_truth():
    manager, truth = _manager()
    results = manager.demand(["sep_temp"])
    by_city = {r.entity: r.value for r in results}
    for facts in truth:
        assert by_city[facts.name] == facts.monthly_temps[8]
