"""Tests for value normalizers."""

from repro.extraction.normalize import (
    month_number,
    normalize_date,
    normalize_month,
    normalize_number,
    normalize_person_name,
    normalize_temperature,
)


def test_normalize_number_plain_and_separators():
    assert normalize_number("42") == 42.0
    assert normalize_number("3.14") == 3.14
    assert normalize_number("-7") == -7.0
    assert normalize_number("233,209") == 233209.0
    assert normalize_number("1,234,567.89") == 1234567.89


def test_normalize_number_words():
    assert normalize_number("seventy") == 70.0
    assert normalize_number("twelve") == 12.0


def test_normalize_number_embedded_and_failure():
    assert normalize_number("about 55 degrees") == 55.0
    assert normalize_number("no digits here") is None


def test_normalize_month():
    assert normalize_month("September") == "september"
    assert normalize_month("sep") == "september"
    assert normalize_month("Sep.") == "september"
    assert normalize_month("wednesday") is None


def test_month_number():
    assert month_number("january") == 1
    assert month_number("Dec") == 12
    assert month_number("notamonth") is None


def test_normalize_temperature_fahrenheit_default():
    assert normalize_temperature("70") == 70.0
    assert normalize_temperature("70 °F") == 70.0
    assert normalize_temperature("70 degrees") == 70.0


def test_normalize_temperature_celsius_converted():
    assert normalize_temperature("21 C") == 21 * 9 / 5 + 32
    assert normalize_temperature("0C") == 32.0


def test_normalize_temperature_unparseable():
    assert normalize_temperature("warm") is None


def test_normalize_date_long_form():
    assert normalize_date("September 8, 2008") == "2008-09-08"
    assert normalize_date("met on March 3 2009 in town") == "2009-03-03"


def test_normalize_date_iso():
    assert normalize_date("2008-09-08") == "2008-09-08"


def test_normalize_date_invalid():
    assert normalize_date("Foober 8, 2008") is None
    assert normalize_date("no date") is None
    assert normalize_date("2008-13-40") is None


def test_normalize_person_name_variants():
    assert normalize_person_name("Smith, David") == "David Smith"
    assert normalize_person_name("Dr. David Smith") == "David Smith"
    assert normalize_person_name("David Smith Jr.") == "David Smith"
    assert normalize_person_name("D. Smith") == "D. Smith"
    assert normalize_person_name("  David   Smith ") == "David Smith"


def test_normalize_person_name_suffix_after_comma():
    assert normalize_person_name("Smith, Jr.") == "Smith"
