"""Tests for the diff-based snapshot store."""

import pytest

from repro.datagen.churn import churn_corpus
from repro.docmodel.corpus import InMemoryCorpus
from repro.docmodel.document import Document
from repro.storage.snapshots import (
    FullCopyStore,
    SnapshotStore,
    apply_delta,
    compute_delta,
)


def test_delta_roundtrip_basic():
    old = ["a\n", "b\n", "c\n"]
    new = ["a\n", "B\n", "c\n", "d\n"]
    delta = compute_delta(old, new)
    assert apply_delta(old, delta) == new


def test_delta_empty_to_content():
    delta = compute_delta([], ["x\n"])
    assert apply_delta([], delta) == ["x\n"]


def test_delta_content_to_empty():
    delta = compute_delta(["x\n", "y\n"], [])
    assert apply_delta(["x\n", "y\n"], delta) == []


def test_apply_delta_detects_corruption():
    delta = compute_delta(["a\n", "b\n"], ["a\n"])
    with pytest.raises(ValueError):
        apply_delta(["a\n"], delta)  # wrong base


def test_commit_and_checkout_latest(tmp_path):
    store = SnapshotStore(str(tmp_path))
    doc = Document("page", "line1\nline2\n")
    assert store.commit(doc) == 0
    doc2 = Document("page", "line1\nline2 changed\nline3\n")
    assert store.commit(doc2) == 1
    assert store.checkout("page").text == doc2.text
    assert store.checkout("page", 0).text == doc.text


def test_checkout_unknown_raises(tmp_path):
    store = SnapshotStore(str(tmp_path))
    with pytest.raises(KeyError):
        store.checkout("missing")
    store.commit(Document("p", "x"))
    with pytest.raises(KeyError):
        store.checkout("p", 5)


def test_keyframe_interval(tmp_path):
    store = SnapshotStore(str(tmp_path), keyframe_every=3)
    for i in range(7):
        store.commit(Document("p", f"version {i}\ncommon\n"))
    infos = list(store.history("p"))
    keyframes = [i.version for i in infos if i.is_keyframe]
    assert keyframes == [0, 3, 6]
    # every version still reconstructs
    for i in range(7):
        assert store.checkout("p", i).text == f"version {i}\ncommon\n"


def test_invalid_keyframe_interval(tmp_path):
    with pytest.raises(ValueError):
        SnapshotStore(str(tmp_path), keyframe_every=0)


def test_diff_store_smaller_than_full_copy_on_overlap(tmp_path):
    base = "\n".join(f"line {i} with stable content here" for i in range(80))
    diff_store = SnapshotStore(str(tmp_path / "diff"), keyframe_every=50)
    full_store = FullCopyStore(str(tmp_path / "full"))
    corpus = InMemoryCorpus([Document("p", base)])
    for day in range(10):
        doc = next(iter(corpus))
        diff_store.commit(doc)
        full_store.commit(doc)
        corpus = churn_corpus(corpus, change_fraction=0.05, seed=day)
    assert diff_store.total_bytes() < full_store.total_bytes() / 2


def test_multiple_documents_tracked_separately(tmp_path):
    store = SnapshotStore(str(tmp_path))
    store.commit(Document("a", "A0"))
    store.commit(Document("b", "B0"))
    store.commit(Document("a", "A1"))
    assert store.latest_version("a") == 1
    assert store.latest_version("b") == 0
    assert store.doc_ids() == ["a", "b"]
    assert store.checkout("b").text == "B0"


def test_full_copy_store_checkout(tmp_path):
    store = FullCopyStore(str(tmp_path))
    store.commit(Document("p", "v0"))
    store.commit(Document("p", "v1"))
    assert store.checkout("p").text == "v1"
    assert store.checkout("p", 0).text == "v0"
    with pytest.raises(KeyError):
        store.checkout("missing")
