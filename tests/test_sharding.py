"""Sharded tables + parallel SQL execution (DESIGN.md §14).

Covers seed-stable shard routing (identical across processes and
``PYTHONHASHSEED`` values), the SHARD BY / RESHARD DDL surface, shard
membership maintenance under DML, plan-time shard pruning, EXPLAIN
ANALYZE actuals summed across fanned-out shards, bounded streaming with
LIMIT early-exit, parallel aggregation/join differentials, and WAL/
checkpoint recovery of shard layouts including a torn ``reshard`` record.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.cluster.backends import ProcessPoolBackend, SerialBackend
from repro.storage.rdbms import parallel
from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.sharding import (
    ShardSpec,
    canonical_key_bytes,
    shard_of_value,
)
from repro.storage.rdbms.sql import SqlError, execute_sql
from repro.storage.rdbms.types import Column, ColumnType, SchemaError, TableSchema
from repro.telemetry import metrics

REGIONS = ["eu", "us", "apac", "latam", "mea"]


def _events_schema():
    return TableSchema(
        "ev",
        (Column("id", ColumnType.INT, nullable=False),
         Column("day", ColumnType.INT),
         Column("region", ColumnType.TEXT),
         Column("qty", ColumnType.INT)),
        primary_key="id",
    )


def _load(db, n=600):
    rows = [{"id": i, "day": i % 30, "region": REGIONS[i % len(REGIONS)],
             "qty": (i * 7) % 100 if i % 11 else None}
            for i in range(n)]
    with db.begin() as txn:
        txn.insert_many("ev", rows)


def _sharded_db(shards=4, n=600, compact=True, backend=None):
    db = Database()
    db.create_table(_events_schema(), shard_key="region", shard_count=shards)
    _load(db, n)
    if compact:
        db.compact("ev")
    db.exec_backend = backend if backend is not None else SerialBackend()
    return db


def _oracle_db(n=600):
    db = Database()
    db.create_table(_events_schema())
    _load(db, n)
    return db


def _canon(rows):
    return json.dumps(rows, sort_keys=True, default=str)


def _plan_lines(db, sql):
    return [r["plan"] for r in execute_sql(db, sql)]


# ------------------------------------------------------------ routing


def test_canonical_bytes_follow_sql_equality():
    # SQL `=` treats 1, 1.0 and True as equal; routing must agree or
    # shard pruning would drop matching rows.
    assert canonical_key_bytes(1) == canonical_key_bytes(1.0)
    assert canonical_key_bytes(1) == canonical_key_bytes(True)
    assert canonical_key_bytes(0) == canonical_key_bytes(-0.0)
    assert canonical_key_bytes(0) == canonical_key_bytes(False)
    # ...but strings stay in their own namespace,
    assert canonical_key_bytes(1) != canonical_key_bytes("1")
    # NULL routes stably too (NULL never *matches*, but rows carrying a
    # NULL key still need a home shard).
    assert canonical_key_bytes(None) == canonical_key_bytes(None)
    assert canonical_key_bytes(2.5) != canonical_key_bytes(2)
    assert canonical_key_bytes("nan") != canonical_key_bytes(float("nan"))


def test_shard_of_value_range_and_degenerate_count():
    values = [0, 1, -7, 3.5, True, None, "eu", "", float("nan")]
    for v in values:
        assert shard_of_value(v, 1) == 0
        assert 0 <= shard_of_value(v, 8) < 8


def test_shard_routing_stable_across_processes_and_hash_seeds():
    """Builtin hash() is salted per process; crc32 routing must not be."""
    values = [0, 1, -7, 42, 3.5, True, False, None, "eu", "us", "", "北京"]
    prog = (
        "import json, sys\n"
        "from repro.storage.rdbms.sharding import shard_of_value\n"
        "values = json.loads(sys.argv[1])\n"
        "print(json.dumps([shard_of_value(v, 8) for v in values]))\n"
    )
    payload = json.dumps(values)
    outputs = []
    for seed in ("0", "1", "424242"):
        env = dict(os.environ, PYTHONHASHSEED=seed,
                   PYTHONPATH="src" + os.pathsep + os.environ.get("PYTHONPATH", ""))
        out = subprocess.run([sys.executable, "-c", prog, payload],
                             env=env, capture_output=True, text=True,
                             check=True)
        outputs.append(out.stdout.strip())
    assert outputs[0] == outputs[1] == outputs[2]
    # and the parent process agrees with the children
    assert json.loads(outputs[0]) == [shard_of_value(v, 8) for v in values]


def test_shard_spec_validation():
    with pytest.raises(ValueError):
        ShardSpec("", 4)
    with pytest.raises(ValueError):
        ShardSpec("k", 0)
    spec = ShardSpec.from_dict(ShardSpec("k", 4).to_dict())
    assert (spec.key, spec.count) == ("k", 4)


# ------------------------------------------------------------ DDL surface


def test_create_table_shard_by_sql():
    db = Database()
    execute_sql(db, "CREATE TABLE t (k INT PRIMARY KEY, v TEXT) "
                    "SHARD BY (v) SHARDS 4")
    spec = db._table("t").shard_spec
    assert spec is not None and (spec.key, spec.count) == ("v", 4)


def test_create_table_shard_by_rejects_bad_grammar():
    db = Database()
    with pytest.raises(SqlError):
        execute_sql(db, "CREATE TABLE t (k INT PRIMARY KEY) "
                        "SHARD BY (k) SHARDS 0")
    with pytest.raises(SqlError):
        execute_sql(db, "CREATE TABLE t (k INT PRIMARY KEY) "
                        "SHARD BY (k) SHARDS x")
    with pytest.raises(SqlError):
        execute_sql(db, "CREATE TABLE t (k INT PRIMARY KEY) SHARD (k)")


def test_create_table_shard_key_must_be_a_column():
    db = Database()
    with pytest.raises(SchemaError):
        db.create_table(_events_schema(), shard_key="nope", shard_count=4)
    with pytest.raises(SchemaError):
        db.create_table(_events_schema(), shard_count=4)  # count w/o key


def test_reshard_sql_and_api_roundtrip():
    db = _sharded_db(shards=4)
    out = execute_sql(db, "ALTER TABLE ev RESHARD BY (day) SHARDS 8")
    assert out == [{"resharded": "ev", "shard_key": "day",
                    "shard_count": 8, "rows": 600}]
    assert db._table("ev").shard_spec == ShardSpec("day", 8)
    # API unshard
    summary = db.reshard("ev", None)
    assert summary["shard_key"] is None
    assert db._table("ev").shard_spec is None
    rows = execute_sql(db, "SELECT count(*) FROM ev", use_planner=False)
    assert rows[0]["count(*)"] == 600


# ---------------------------------------------------- membership under DML


def test_shard_membership_tracks_insert_update_delete():
    db = _sharded_db(shards=4, compact=False)
    heap = db._table("ev")
    spec = heap.shard_spec

    def assert_membership():
        seen = set()
        for shard, rids in enumerate(heap._shard_rids):
            for rid in rids:
                assert rid not in seen
                seen.add(rid)
                assert spec.shard_of(heap._rows[rid]["region"]) == shard
        assert seen == set(heap._rows)

    assert_membership()
    # move rows between shards by rewriting the shard key
    execute_sql(db, "UPDATE ev SET region = 'mars' WHERE day = 3")
    assert_membership()
    execute_sql(db, "DELETE FROM ev WHERE qty > 80")
    assert_membership()


def test_sharded_scan_units_cover_every_row_once():
    db = _sharded_db(shards=4)
    heap = db._table("ev")
    units_by_shard = heap.sharded_scan_units()
    assert len(units_by_shard) == 4
    rids = []
    for units in units_by_shard:
        for kind, unit in units:
            if kind == "segment":
                rids.extend(unit.rids)
            else:
                rids.extend(r for r, _ in unit)
    expected = set(heap._rows)  # tail...
    for segment in heap._segments:  # ...plus frozen rows
        expected.update(segment.rids)
    assert sorted(rids) == sorted(expected)
    assert len(rids) == 600


# ------------------------------------------------------- planning + pruning


def test_parallel_scan_matches_oracle_and_prunes():
    db = _sharded_db(shards=4)
    oracle = _oracle_db()
    registry = metrics.get_registry()
    for sql in ["SELECT * FROM ev WHERE qty > 50",
                "SELECT * FROM ev WHERE region = 'eu' AND day < 10",
                "SELECT * FROM ev WHERE region IN ('eu', 'us')",
                "SELECT * FROM ev ORDER BY qty DESC LIMIT 7"]:
        assert _canon(execute_sql(db, sql)) == \
            _canon(execute_sql(oracle, sql, use_planner=False)), sql
    before = registry.get("parallel.shards.pruned")
    lines = _plan_lines(db, "EXPLAIN SELECT * FROM ev WHERE region = 'eu'")
    assert any("ParallelScan" in l and "shards=1/4" in l for l in lines), lines
    execute_sql(db, "SELECT * FROM ev WHERE region = 'eu'")
    assert registry.get("parallel.shards.pruned") - before >= 3


def test_in_predicate_pruning_keeps_null_home_shard():
    # NULL in an IN list matches NULL-keyed rows under eval_predicate's
    # `value in values`, so the home shard of None must stay live.
    db = _sharded_db(shards=4, compact=False)
    with db.begin() as txn:
        txn.insert("ev", {"id": 9999, "day": 1, "region": None, "qty": 1})
    oracle = _oracle_db()
    with oracle.begin() as txn:
        txn.insert("ev", {"id": 9999, "day": 1, "region": None, "qty": 1})
    sql = "SELECT * FROM ev WHERE region IN ('eu', NULL)"
    assert _canon(execute_sql(db, sql)) == \
        _canon(execute_sql(oracle, sql, use_planner=False))


def test_equality_pruning_routes_numeric_like_sql():
    # day = 3 must find rows whether the stored value is 3 or 3.0.
    db = Database()
    db.create_table(TableSchema(
        "m", (Column("k", ColumnType.INT, nullable=False),
              Column("x", ColumnType.FLOAT)), primary_key="k"),
        shard_key="x", shard_count=8)
    with db.begin() as txn:
        txn.insert_many("m", [{"k": i, "x": float(i % 10)} for i in range(80)])
    db.exec_backend = SerialBackend()
    rows = execute_sql(db, "SELECT * FROM m WHERE x = 3")
    assert len(rows) == 8
    assert all(r["x"] == 3.0 for r in rows)


def test_index_point_lookup_still_wins_on_shard_key():
    # The PR 5 index fast path beats fan-out for point lookups: a hash
    # index on the shard key must keep planning as IndexLookup.
    db = _sharded_db(shards=4)
    db.create_index("ev", "id", "hash")
    lines = _plan_lines(db, "EXPLAIN SELECT * FROM ev WHERE id = 42")
    assert any("IndexLookup" in l for l in lines), lines
    assert not any("ParallelScan" in l for l in lines), lines


def test_unsharded_or_backendless_tables_plan_serially():
    db = _sharded_db(shards=4)
    db.exec_backend = None
    lines = _plan_lines(db, "EXPLAIN SELECT * FROM ev WHERE qty > 5")
    assert not any("Parallel" in l for l in lines), lines
    db2 = _oracle_db()
    db2.exec_backend = SerialBackend()
    lines = _plan_lines(db2, "EXPLAIN SELECT * FROM ev WHERE qty > 5")
    assert not any("Parallel" in l for l in lines), lines


# ------------------------------------------------- EXPLAIN ANALYZE actuals


def test_explain_analyze_sums_actuals_across_shards():
    db = _sharded_db(shards=4, n=600)
    spec = db._table("ev").shard_spec
    populated = len({spec.shard_of(r) for r in REGIONS})
    lines = _plan_lines(db, "EXPLAIN ANALYZE SELECT * FROM ev")
    [scan] = [l for l in lines if "ShardScan" in l]
    # Per-shard worker actuals are summed into ONE plan line: all 600
    # rows, one loop per shard that held data — not shard 0's share only.
    assert "actual rows=600" in scan, scan
    assert f"loops={populated}" in scan, scan
    [pscan] = [l for l in lines if "ParallelScan" in l]
    assert "actual rows=600" in pscan, pscan
    assert "shards=4/4 pruned=0" in pscan, pscan


def test_explain_analyze_never_executed_on_full_prune():
    db = _sharded_db(shards=4)
    # Contradictory equalities on the shard key prune every shard when
    # the two values route differently; pick such a pair explicitly.
    spec = db._table("ev").shard_spec
    a, b = REGIONS[0], next(r for r in REGIONS[1:]
                            if spec.shard_of(r) != spec.shard_of(REGIONS[0]))
    lines = _plan_lines(
        db, f"EXPLAIN ANALYZE SELECT * FROM ev "
            f"WHERE region = '{a}' AND region = '{b}'")
    [scan] = [l for l in lines if "ShardScan" in l]
    assert "(never executed)" in scan, scan
    [pscan] = [l for l in lines if "ParallelScan" in l]
    assert "shards=0/4 pruned=4" in pscan, pscan


def test_explain_analyze_null_equality_prunes_all_shards():
    db = _sharded_db(shards=4)
    lines = _plan_lines(
        db, "EXPLAIN ANALYZE SELECT * FROM ev WHERE region = NULL")
    [scan] = [l for l in lines if "ShardScan" in l]
    assert "(never executed)" in scan, scan


# ----------------------------------------------------- streaming / early exit


class _CountingBackend(SerialBackend):
    """Serial backend that records how many tasks actually executed."""

    def __init__(self):
        super().__init__()
        self.executed = 0
        self.submitted = 0

    def map_stream(self, fn, items, window=None):
        items = list(items)
        self.submitted += len(items)
        inner = super().map_stream(fn, items, window)

        def gen():
            for result in inner:
                self.executed += 1
                yield result
        return gen()


def test_limit_early_exit_does_not_materialize_all_chunks(monkeypatch):
    # Tiny chunks -> many tasks per shard; a bare LIMIT must abandon the
    # merge after a handful of chunks instead of scanning the table.
    monkeypatch.setattr(parallel, "CHUNK_TARGET_ROWS", 25)
    backend = _CountingBackend()
    db = _sharded_db(shards=4, n=1000, compact=False, backend=backend)
    rows = execute_sql(db, "SELECT * FROM ev LIMIT 5")
    assert len(rows) == 5
    assert backend.submitted >= 20  # plenty of chunks existed...
    assert backend.executed <= 8    # ...but only the head of each shard ran


def test_full_consumption_executes_every_chunk(monkeypatch):
    monkeypatch.setattr(parallel, "CHUNK_TARGET_ROWS", 25)
    backend = _CountingBackend()
    db = _sharded_db(shards=4, n=300, compact=False, backend=backend)
    oracle = _oracle_db(n=300)
    sql = "SELECT * FROM ev"
    assert _canon(execute_sql(db, sql)) == \
        _canon(execute_sql(oracle, sql, use_planner=False))
    assert backend.executed == backend.submitted


# -------------------------------------------------------- parallel aggregate


def test_parallel_aggregate_matches_oracle_and_counts_plans():
    db = _sharded_db(shards=4)
    oracle = _oracle_db()
    registry = metrics.get_registry()
    before = registry.get("planner.plans.parallel_agg")
    for sql in [
        "SELECT count(*) FROM ev",
        "SELECT count(*), sum(qty), min(day), max(day) FROM ev",
        "SELECT region, count(*), sum(qty) FROM ev GROUP BY region",
        "SELECT day, count(*) FROM ev WHERE qty > 30 GROUP BY day",
    ]:
        assert _canon(execute_sql(db, sql)) == \
            _canon(execute_sql(oracle, sql, use_planner=False)), sql
    assert registry.get("planner.plans.parallel_agg") - before >= 4
    lines = _plan_lines(
        db, "EXPLAIN SELECT region, count(*) FROM ev GROUP BY region")
    assert any("ParallelAggregate" in l for l in lines), lines


def test_float_aggregates_fall_back_to_serial_fold():
    # FLOAT sums are non-associative: the parallel partial->final merge is
    # gated off and the serial fold runs over globally rid-ordered rows.
    db = Database()
    db.create_table(TableSchema(
        "f", (Column("k", ColumnType.INT, nullable=False),
              Column("grp", ColumnType.TEXT),
              Column("x", ColumnType.FLOAT)), primary_key="k"),
        shard_key="grp", shard_count=4)
    oracle = Database()
    oracle.create_table(TableSchema(
        "f", (Column("k", ColumnType.INT, nullable=False),
              Column("grp", ColumnType.TEXT),
              Column("x", ColumnType.FLOAT)), primary_key="k"))
    rows = [{"k": i, "grp": REGIONS[i % 5], "x": (i * 0.1) ** 2}
            for i in range(500)]
    for target in (db, oracle):
        with target.begin() as txn:
            txn.insert_many("f", rows)
        target.compact("f")
    db.exec_backend = SerialBackend()
    sql = "SELECT grp, sum(x), avg(x) FROM f GROUP BY grp"
    assert _canon(execute_sql(db, sql)) == \
        _canon(execute_sql(oracle, sql, use_planner=False))
    lines = _plan_lines(db, f"EXPLAIN {sql}")
    assert not any("ParallelAggregate" in l for l in lines), lines
    assert any("ParallelScan" in l for l in lines), lines


# ------------------------------------------------------------ parallel join


def _join_pair(sharded):
    dbs = []
    for shard in (sharded, False):
        db = Database()
        users = TableSchema(
            "users", (Column("uid", ColumnType.INT, nullable=False),
                      Column("name", ColumnType.TEXT)), primary_key="uid")
        orders = TableSchema(
            "orders", (Column("oid", ColumnType.INT, nullable=False),
                       Column("uid", ColumnType.INT),
                       Column("total", ColumnType.INT)), primary_key="oid")
        if shard:
            db.create_table(users, shard_key="uid", shard_count=4)
            db.create_table(orders, shard_key="uid", shard_count=4)
        else:
            db.create_table(users)
            db.create_table(orders)
        with db.begin() as txn:
            txn.insert_many("users", [{"uid": i, "name": f"u{i}"}
                                      for i in range(200)])
            txn.insert_many("orders", [{"oid": i, "uid": i % 200,
                                        "total": i % 50}
                                       for i in range(800)])
        dbs.append(db)
    dbs[0].exec_backend = SerialBackend()
    return dbs


def test_co_partitioned_join_matches_oracle():
    db, oracle = _join_pair(sharded=True)
    sql = ("SELECT * FROM users JOIN orders ON users.uid = orders.uid "
           "WHERE orders.total > 40")
    assert _canon(execute_sql(db, sql)) == \
        _canon(execute_sql(oracle, sql, use_planner=False))
    lines = _plan_lines(
        db, "EXPLAIN SELECT * FROM users JOIN orders "
            "ON users.uid = orders.uid")
    assert any("ParallelHashJoin" in l and "co-partitioned" in l
               for l in lines), lines


def test_broadcast_join_matches_oracle():
    db, oracle = _join_pair(sharded=True)
    # an unsharded side forces broadcast mode
    tiny = TableSchema(
        "tags", (Column("uid", ColumnType.INT, nullable=False),
                 Column("tag", ColumnType.TEXT)), primary_key="uid")
    for target, rows in ((db, True), (oracle, True)):
        target.create_table(tiny)
        with target.begin() as txn:
            txn.insert_many("tags", [{"uid": i, "tag": f"t{i}"}
                                     for i in range(0, 200, 20)])
    sql = "SELECT * FROM users JOIN tags ON users.uid = tags.uid"
    assert _canon(execute_sql(db, sql)) == \
        _canon(execute_sql(oracle, sql, use_planner=False))
    lines = _plan_lines(db, f"EXPLAIN {sql}")
    assert any("ParallelHashJoin" in l and "broadcast" in l
               for l in lines), lines


# ------------------------------------------------------------ real backends


def test_process_backend_executes_sharded_plans():
    backend = ProcessPoolBackend(max_workers=2)
    try:
        db = _sharded_db(shards=4, n=400, backend=backend)
        oracle = _oracle_db(n=400)
        for sql in ["SELECT * FROM ev WHERE qty > 50",
                    "SELECT region, count(*), sum(qty) FROM ev "
                    "GROUP BY region"]:
            assert _canon(execute_sql(db, sql)) == \
                _canon(execute_sql(oracle, sql, use_planner=False)), sql
    finally:
        backend.close()


# ------------------------------------------------------------- persistence


def test_reshard_survives_crash_and_checkpoint(tmp_path):
    db = Database(str(tmp_path))
    db.create_table(_events_schema(), shard_key="region", shard_count=4)
    _load(db, 300)
    db.compact("ev")
    db.reshard("ev", "day", 8)
    expected = _canon(execute_sql(db, "SELECT * FROM ev WHERE day < 9",
                                  use_planner=False))
    # crash (no close): layout replays from the WAL
    db2 = Database(str(tmp_path))
    db2.exec_backend = SerialBackend()
    assert db2._table("ev").shard_spec == ShardSpec("day", 8)
    assert _canon(execute_sql(db2, "SELECT * FROM ev WHERE day < 9")) \
        == expected
    # checkpoint persists the spec + per-shard segment layout
    db2.compact("ev")
    db2.checkpoint()
    db2.close()
    db3 = Database(str(tmp_path))
    db3.exec_backend = SerialBackend()
    assert db3._table("ev").shard_spec == ShardSpec("day", 8)
    assert _canon(execute_sql(db3, "SELECT * FROM ev WHERE day < 9")) \
        == expected


def test_torn_reshard_wal_record_recovers_consistently(tmp_path):
    db = Database(str(tmp_path))
    db.create_table(_events_schema(), shard_key="region", shard_count=4)
    _load(db, 200)
    db.close()
    # crash mid-append of the reshard record: a torn JSON tail
    with open(tmp_path / "wal.jsonl", "a", encoding="utf-8") as f:
        f.write('{"lsn": 9999, "txn": 0, "type": "reshard", "table": "ev"')
    db2 = Database(str(tmp_path))
    db2.exec_backend = SerialBackend()
    # the torn record is dropped: the pre-reshard layout survives intact
    assert db2._table("ev").shard_spec == ShardSpec("region", 4)
    rows = execute_sql(db2, "SELECT count(*) FROM ev")
    assert rows[0]["count(*)"] == 200
    # and the reopened database still accepts a clean reshard
    db2.reshard("ev", "day", 2)
    db3 = Database(str(tmp_path))
    assert db3._table("ev").shard_spec == ShardSpec("day", 2)


def test_segment_layout_restores_per_shard(tmp_path):
    db = Database(str(tmp_path))
    db.create_table(_events_schema(), shard_key="region", shard_count=4)
    _load(db, 400)
    db.compact("ev")
    layout = db._table("ev").segment_layout()
    assert layout and all(len(entry) == 4 for entry in layout)
    shards = {entry[3] for entry in layout}
    assert len(shards) > 1  # segments are tagged per shard
    db.checkpoint()
    db.close()
    db2 = Database(str(tmp_path))
    assert db2._table("ev").segment_layout() == layout
