"""Property-based tests for integration invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docmodel.document import Document
from repro.docmodel.wikimarkup import strip_markup
from repro.integration.entity_resolution import (
    EntityResolver,
    MatchConstraints,
    Mention,
)
from repro.integration.fusion import fuse_extractions
from repro.docmodel.document import Span
from repro.extraction.base import Extraction

names = st.lists(
    st.text(alphabet=string.ascii_letters + " .", min_size=1, max_size=25)
    .filter(lambda s: s.strip()),
    min_size=1, max_size=12,
)


@given(name_list=names)
@settings(max_examples=60)
def test_clusters_partition_mentions(name_list):
    mentions = [Mention(i, n) for i, n in enumerate(name_list)]
    clusters = EntityResolver().resolve(mentions)
    covered = [mid for c in clusters for mid in c.mention_ids]
    assert sorted(covered) == list(range(len(mentions)))  # exact partition


@given(name_list=names)
@settings(max_examples=60)
def test_canonical_name_is_a_member_name(name_list):
    mentions = [Mention(i, n) for i, n in enumerate(name_list)]
    by_id = {m.mention_id: m.name for m in mentions}
    for cluster in EntityResolver().resolve(mentions):
        member_names = {by_id[mid] for mid in cluster.mention_ids}
        assert cluster.canonical_name in member_names


@given(name_list=names, seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=40)
def test_must_link_is_always_honored(name_list, seed):
    if len(name_list) < 2:
        return
    mentions = [Mention(i, n) for i, n in enumerate(name_list)]
    import random
    rng = random.Random(seed)
    a, b = rng.sample(range(len(mentions)), 2)
    constraints = MatchConstraints()
    constraints.add_must(a, b)
    clusters = EntityResolver().resolve(mentions, constraints)
    cluster_of = {mid: c.cluster_id for c in clusters for mid in c.mention_ids}
    assert cluster_of[a] == cluster_of[b]


@given(name_list=names, seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=40)
def test_cannot_link_is_always_honored(name_list, seed):
    if len(name_list) < 2:
        return
    mentions = [Mention(i, n) for i, n in enumerate(name_list)]
    import random
    rng = random.Random(seed)
    a, b = rng.sample(range(len(mentions)), 2)
    constraints = MatchConstraints()
    constraints.add_cannot(a, b)
    clusters = EntityResolver().resolve(mentions, constraints)
    cluster_of = {mid: c.cluster_id for c in clusters for mid in c.mention_ids}
    assert cluster_of[a] != cluster_of[b]


values_with_conf = st.lists(
    st.tuples(st.floats(min_value=-100, max_value=100, allow_nan=False),
              st.floats(min_value=0.05, max_value=1.0)),
    min_size=1, max_size=8,
)


@given(pairs=values_with_conf)
@settings(max_examples=80)
def test_fusion_chooses_an_observed_value(pairs):
    span = Span("d", 0, 1, "x")
    extractions = [
        Extraction("e", "a", v, span, c) for v, c in pairs
    ]
    for strategy in ("max_confidence", "weighted_vote", "numeric_median"):
        fused = fuse_extractions(extractions, strategy=strategy)
        assert len(fused) == 1
        fact = fused[0]
        assert 0.0 <= fact.confidence <= 1.0
        assert fact.support + fact.conflict == len(pairs)
        observed = {v for v, _ in pairs}
        assert fact.value in observed


@given(text=st.text(alphabet=string.printable, max_size=300))
@settings(max_examples=80)
def test_strip_markup_removes_link_brackets(text):
    plain = strip_markup(text)
    assert "[[" not in plain or "]]" not in plain.split("[[", 1)[1]


@given(
    fields=st.dictionaries(
        st.text(alphabet=string.ascii_lowercase + "_", min_size=1,
                max_size=10),
        st.text(alphabet=string.ascii_letters + string.digits + " ",
                min_size=1, max_size=15).map(str.strip).filter(bool),
        min_size=1, max_size=6,
    )
)
@settings(max_examples=60)
def test_infobox_roundtrip_property(fields):
    from repro.docmodel.wikimarkup import parse_infoboxes

    body = "\n".join(f" | {k} = {v}" for k, v in fields.items())
    doc = Document("d", "{{Infobox test\n" + body + "\n}}")
    boxes = parse_infoboxes(doc)
    assert len(boxes) == 1
    assert boxes[0].fields == {k: v for k, v in fields.items()}
    for key, span in boxes[0].field_spans.items():
        assert doc.text[span.start:span.end] == fields[key]
