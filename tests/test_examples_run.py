"""Every example script must run end-to-end (guards the deliverables)."""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart",
    "wikipedia_city_portal",
    "community_dblp",
    "email_pim",
    "sensor_events",
]


def _load(name):
    path = os.path.join(EXAMPLES_DIR, name + ".py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_cleanly(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"


def test_quickstart_answers_match_ground_truth(capsys):
    module = _load("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "ground truth" in out
    # the printed SQL answer equals the printed ground truth
    for line in out.splitlines():
        if line.startswith("SQL answer"):
            assert line.split("= ")[1].split(" ")[0] in line.split(
                "ground truth "
            )[1]


def test_portal_beats_baseline(capsys):
    module = _load("wikipedia_city_portal")
    module.main()
    out = capsys.readouterr().out
    portal_line = next(l for l in out.splitlines()
                       if l.startswith("structured portal"))
    baseline_line = next(l for l in out.splitlines()
                         if l.startswith("keyword baseline"))
    portal_score = int(portal_line.split(":")[1].strip().split("/")[0])
    baseline_score = int(baseline_line.split(":")[1].strip().split("/")[0])
    assert portal_score > baseline_score


def test_dblp_feedback_never_hurts(capsys):
    module = _load("community_dblp")
    module.main()
    out = capsys.readouterr().out
    auto = float(next(l for l in out.splitlines()
                      if l.startswith("automatic ER")).split("= ")[1])
    curated = float(
        next(l for l in out.splitlines() if l.startswith("curated ER"))
        .split("= ")[1].split(" ")[0]
    )
    assert curated >= auto
