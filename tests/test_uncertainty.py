"""Tests for probabilistic values and the confidence algebra."""

import pytest

from repro.uncertainty.probabilistic import (
    ProbabilisticValue,
    combine_independent_and,
    combine_noisy_or,
    expected_value,
    possible_worlds,
)


def test_certain_value():
    dist = ProbabilisticValue.certain(70)
    assert dist.most_likely() == (70, 1.0)
    assert dist.residual() == 0.0


def test_rejects_bad_probabilities():
    with pytest.raises(ValueError):
        ProbabilisticValue(((1, 0.0),))
    with pytest.raises(ValueError):
        ProbabilisticValue(((1, 1.2),))
    with pytest.raises(ValueError):
        ProbabilisticValue(((1, 0.7), (2, 0.7)))


def test_from_confidences_normalizes_overcommitted():
    dist = ProbabilisticValue.from_confidences([(1, 0.9), (2, 0.9)])
    total = sum(p for _, p in dist.alternatives)
    assert total == pytest.approx(1.0)
    assert dist.probability_of(1) == pytest.approx(0.5)


def test_from_confidences_keeps_undercommitted():
    dist = ProbabilisticValue.from_confidences([(1, 0.3), (2, 0.2)])
    assert dist.probability_of(1) == 0.3
    assert dist.residual() == pytest.approx(0.5)


def test_most_likely_and_probability_of():
    dist = ProbabilisticValue(((70, 0.6), (7, 0.3)))
    assert dist.most_likely() == (70, 0.6)
    assert dist.probability_of(7) == 0.3
    assert dist.probability_of(999) == 0.0
    with pytest.raises(ValueError):
        ProbabilisticValue(()).most_likely()


def test_threshold_filters():
    dist = ProbabilisticValue(((1, 0.6), (2, 0.1)))
    cut = dist.threshold(0.5)
    assert cut.alternatives == ((1, 0.6),)


def test_map_values_merges_collisions():
    dist = ProbabilisticValue(((1.4, 0.3), (1.6, 0.3), (5.0, 0.2)))
    rounded = dist.map_values(round)
    assert rounded.probability_of(2) == pytest.approx(0.6, abs=1e-9) or \
        rounded.probability_of(1) + rounded.probability_of(2) == pytest.approx(0.6)
    assert rounded.probability_of(5) == 0.2


def test_combine_and():
    assert combine_independent_and(0.5, 0.5) == 0.25
    assert combine_independent_and() == 1.0
    with pytest.raises(ValueError):
        combine_independent_and(1.5)


def test_combine_noisy_or():
    assert combine_noisy_or(0.5, 0.5) == pytest.approx(0.75)
    assert combine_noisy_or(1.0, 0.1) == 1.0
    assert combine_noisy_or() == 0.0
    with pytest.raises(ValueError):
        combine_noisy_or(-0.1)


def test_noisy_or_exceeds_any_single_witness():
    confidences = (0.6, 0.7, 0.5)
    assert combine_noisy_or(*confidences) > max(confidences)


def test_expected_value():
    dist = ProbabilisticValue(((70.0, 0.5), (80.0, 0.5)))
    assert expected_value(dist) == 75.0
    # residual mass is ignored (conditional expectation)
    dist2 = ProbabilisticValue(((10.0, 0.2), (20.0, 0.2)))
    assert expected_value(dist2) == 15.0
    with pytest.raises(ValueError):
        expected_value(ProbabilisticValue((("x", 1.0),)))


def test_possible_worlds_probabilities_sum_to_one():
    facts = [
        ("a", ProbabilisticValue(((1, 0.7), (2, 0.3)))),
        ("b", ProbabilisticValue(((True, 0.6),))),
    ]
    worlds = list(possible_worlds(facts))
    assert sum(p for _, p in worlds) == pytest.approx(1.0)
    # 2 alternatives x (1 alternative + residual) = 4 worlds
    assert len(worlds) == 4


def test_possible_worlds_assignments():
    facts = [("t", ProbabilisticValue(((70, 0.9), (7, 0.1))))]
    worlds = dict()
    for assignment, p in possible_worlds(facts):
        worlds[assignment["t"]] = p
    assert worlds == {70: pytest.approx(0.9), 7: pytest.approx(0.1)}
