"""Tests for the xlog executor."""

import pytest

from repro.cluster.simulator import ClusterConfig, SimulatedCluster
from repro.docmodel.document import Document
from repro.extraction.dictionary import DictionaryExtractor
from repro.extraction.infobox import InfoboxExtractor
from repro.extraction.normalize import normalize_temperature
from repro.extraction.rules import ContextRule, RuleCascadeExtractor
from repro.hi.crowd import SimulatedCrowd
from repro.integration.entity_resolution import EntityResolver
from repro.lang.executor import run_program
from repro.lang.registry import OperatorRegistry, RegistryError


def _registry(crowd=None, oracle=None):
    registry = OperatorRegistry(crowd=crowd, hi_truth_oracle=oracle)
    cities = DictionaryExtractor(
        attribute="city", phrases=["Madison", "Chicago"]
    )
    registry.register_extractor(
        "temps",
        RuleCascadeExtractor(
            rules=[ContextRule("sep_temp", ("September", "temperature"),
                               r"(\d+)\s*degrees",
                               normalizer=normalize_temperature,
                               confidence=0.7)],
            entity_dictionary=cities,
        ),
    )
    registry.register_extractor("cities", cities)
    registry.register_extractor("infobox", InfoboxExtractor())
    registry.register_resolver("er", EntityResolver())
    return registry


CORPUS = [
    Document("d1", "The September temperature in Madison is 70 degrees."),
    Document("d2", "The September temperature in Chicago is 65 degrees."),
    Document("d3", "{{Infobox city | name = Madison | sep_temp = 71 }}"),
    Document("d4", "Nothing to see here at all."),
]


def test_extract_filter_select():
    program = (
        'a = docs()\nb = extract(a, "temps")\n'
        "c = filter(b, value >= 68)\n"
        "d = select(c, entity, value)\noutput d"
    )
    result = run_program(program, CORPUS, _registry(), optimize=False)
    assert result.rows == [{"entity": "Madison", "value": 70.0}]


def test_union_and_fuse():
    program = (
        'a = docs()\nb = extract(a, "temps")\nc = extract(a, "infobox")\n'
        'u = union(b, c)\nf = fuse(u, "weighted_vote")\n'
        'final = filter(f, attribute = "sep_temp")\noutput final'
    )
    result = run_program(program, CORPUS, _registry(), optimize=False)
    by_entity = {r["entity"]: r for r in result.rows}
    # infobox (0.97) beats prose (0.7) for Madison: 71 wins
    assert by_entity["Madison"]["value"] == 71.0
    assert by_entity["Madison"]["conflict"] == 1
    assert by_entity["Chicago"]["value"] == 65.0


def test_join_on_entity():
    program = (
        'a = docs()\nt = extract(a, "temps")\nc = extract(a, "cities")\n'
        "j = join(t, c, on = entity)\noutput j"
    )
    result = run_program(program, CORPUS, _registry(), optimize=False)
    assert all(r["entity"] in ("Madison", "Chicago") for r in result.rows)
    assert len(result.rows) >= 2


def test_limit():
    program = ('a = docs()\nb = extract(a, "cities")\nc = limit(b, 1)\noutput c')
    result = run_program(program, CORPUS, _registry(), optimize=False)
    assert len(result.rows) == 1


def test_resolve_canonicalizes_entities():
    docs = [
        Document("p1", "David Smith is a researcher."),
        Document("p2", "D. Smith wrote a paper."),
    ]
    registry = OperatorRegistry()
    registry.register_extractor(
        "names",
        DictionaryExtractor(attribute="person",
                            phrases=["David Smith", "D. Smith"]),
    )
    registry.register_resolver("er", EntityResolver())
    program = ('a = docs()\nb = extract(a, "names")\nc = resolve(b, "er")\noutput c')
    result = run_program(program, docs, registry, optimize=False)
    assert {r["entity"] for r in result.rows} == {"David Smith"}


def test_ask_validate_drops_crowd_rejected():
    # oracle says tuples with value < 68 are wrong; a reliable crowd drops them
    crowd = SimulatedCrowd.uniform(5, accuracy=0.98, seed=1)
    registry = _registry(crowd=crowd, oracle=lambda row: row["value"] >= 68)
    program = (
        'a = docs()\nb = extract(a, "temps")\n'
        'c = ask(b, "validate", redundancy = 5)\noutput c'
    )
    result = run_program(program, CORPUS, registry, optimize=False)
    assert {r["entity"] for r in result.rows} == {"Madison"}
    assert result.stats.hi_questions == 10  # 2 tuples x 5 workers


def test_ask_verify_sets_confidence_to_vote_share():
    crowd = SimulatedCrowd.uniform(5, accuracy=1.0, seed=1)
    registry = _registry(crowd=crowd, oracle=lambda row: True)
    program = (
        'a = docs()\nb = extract(a, "temps")\n'
        'c = ask(b, "verify", redundancy = 5)\noutput c'
    )
    result = run_program(program, CORPUS, registry, optimize=False)
    assert all(r["confidence"] == 1.0 for r in result.rows)


def test_ask_where_routes_subset():
    crowd = SimulatedCrowd.uniform(3, accuracy=1.0, seed=1)
    registry = _registry(crowd=crowd, oracle=lambda row: True)
    program = (
        'a = docs()\nb = extract(a, "temps")\n'
        'c = ask(b, "validate", where = value < 68, redundancy = 3)\noutput c'
    )
    result = run_program(program, CORPUS, registry, optimize=False)
    assert result.stats.hi_questions == 3  # only Chicago (65) routed
    assert len(result.rows) == 2  # Madison passed through, Chicago accepted


def test_ask_without_crowd_raises():
    registry = _registry(crowd=None)
    program = ('a = docs()\nb = extract(a, "temps")\nc = ask(b, "validate")\noutput c')
    with pytest.raises(RuntimeError):
        run_program(program, CORPUS, registry, optimize=False)


def test_unknown_extractor_raises():
    program = 'a = docs()\nb = extract(a, "ghost")\noutput b'
    with pytest.raises(RegistryError):
        run_program(program, CORPUS, _registry(), optimize=False)


def test_optimized_equals_naive_results():
    program = (
        'a = docs()\nb = extract(a, "temps")\n'
        "c = filter(b, confidence >= 0.5)\noutput c"
    )
    registry = _registry()
    naive = run_program(program, CORPUS, registry, optimize=False)
    optimized = run_program(program, CORPUS, registry, optimize=True)
    key = lambda r: (r["entity"], r["attribute"], r["value"])
    assert sorted(map(key, naive.rows)) == sorted(map(key, optimized.rows))


def test_stats_track_extraction_work():
    program = 'a = docs()\nb = extract(a, "temps")\noutput b'
    result = run_program(program, CORPUS, _registry(), optimize=False)
    assert result.stats.total_chars_scanned == sum(len(d.text) for d in CORPUS)
    assert result.stats.docs_extracted["temps@b"] == 4


def test_cluster_execution_matches_inline():
    program = 'a = docs()\nb = extract(a, "temps")\noutput b'
    registry = _registry()
    inline = run_program(program, CORPUS, registry, optimize=False)
    cluster = SimulatedCluster(ClusterConfig(num_workers=3, seed=2))
    parallel = run_program(program, CORPUS, registry, optimize=False,
                           cluster=cluster)
    key = lambda r: (r["doc_id"], r["attribute"], r["value"])
    assert sorted(map(key, inline.rows)) == sorted(map(key, parallel.rows))
    assert parallel.stats.cluster_makespan > 0


def test_dedup_all_fields_and_by_keys():
    program = (
        'a = docs()\nb = extract(a, "cities")\nc = extract(a, "cities")\n'
        "u = union(b, c)\nd = dedup(u)\noutput d"
    )
    result = run_program(program, CORPUS, _registry(), optimize=False)
    single = run_program(
        'a = docs()\nb = extract(a, "cities")\noutput b',
        CORPUS, _registry(), optimize=False,
    )
    assert len(result.rows) == len(single.rows)

    by_key = (
        'a = docs()\nb = extract(a, "cities")\n'
        "d = dedup(b, entity)\noutput d"
    )
    result = run_program(by_key, CORPUS, _registry(), optimize=False)
    entities = [r["entity"] for r in result.rows]
    assert len(entities) == len(set(entities))


def test_dedup_first_occurrence_wins():
    program = (
        'a = docs()\nhigh = extract(a, "infobox")\nlow = extract(a, "temps")\n'
        "u = union(high, low)\nd = dedup(u, entity, attribute)\noutput d"
    )
    result = run_program(program, CORPUS, _registry(), optimize=False)
    madison_sep = [r for r in result.rows
                   if r["entity"] == "Madison" and r["attribute"] == "sep_temp"]
    assert len(madison_sep) == 1
    assert madison_sep[0]["extractor"] == "infobox"  # union order preserved


def test_doc_stream_output_rendered_as_rows():
    program = 'a = docs()\noutput a'
    result = run_program(program, CORPUS, _registry(), optimize=False)
    assert [r["doc_id"] for r in result.rows] == ["d1", "d2", "d3", "d4"]
