"""Cross-module integration tests: the full DGE loop on each scenario."""

import statistics

import pytest

from repro.baselines.keyword_baseline import KeywordSearchBaseline
from repro.core.system import FACTS_TABLE, StructureManagementSystem
from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.datagen.emails import generate_email_corpus
from repro.datagen.people import PeopleCorpusConfig, generate_people_corpus
from repro.extraction.dictionary import DictionaryExtractor
from repro.extraction.infobox import InfoboxExtractor
from repro.extraction.normalize import (
    MONTHS,
    normalize_date,
    normalize_temperature,
)
from repro.extraction.regex_extractor import RegexExtractor
from repro.extraction.rules import ContextRule, RuleCascadeExtractor
from repro.hi.crowd import SimulatedCrowd
from repro.hi.tasks import VerifyMatchTask
from repro.hi.aggregate import aggregate_majority
from repro.integration.entity_resolution import (
    EntityResolver,
    MatchConstraints,
    Mention,
)


def _pairwise_f1(clusters, truth_of):
    """Pairwise F1 of predicted clusters against a truth mapping."""
    predicted = set()
    for cluster in clusters:
        ids = cluster.mention_ids
        for i in range(len(ids)):
            for j in range(i + 1, len(ids)):
                predicted.add((ids[i], ids[j]))
    mention_ids = sorted(truth_of)
    actual = set()
    for i in range(len(mention_ids)):
        for j in range(i + 1, len(mention_ids)):
            a, b = mention_ids[i], mention_ids[j]
            if truth_of[a] == truth_of[b]:
                actual.add((a, b))
    if not predicted or not actual:
        return 0.0
    tp = len(predicted & actual)
    precision = tp / len(predicted)
    recall = tp / len(actual)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def test_city_scenario_structured_beats_keyword_baseline():
    """The paper's motivating claim, end to end (E1 in miniature)."""
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=12, seed=31, styles=("infobox",))
    )
    system = StructureManagementSystem()
    system.registry.register_extractor("infobox", InfoboxExtractor())
    system.ingest(corpus)
    system.generate('pages = docs()\nf = extract(pages, "infobox")\noutput f')

    baseline = KeywordSearchBaseline()
    baseline.index_corpus(corpus)

    months = ["mar", "apr", "may", "jun", "jul", "aug", "sep"]
    attr_list = ", ".join(f"'{m}_temp'" for m in months)
    structured_correct = baseline_correct = 0
    for facts in truth:
        expected = statistics.fmean(facts.monthly_temps[2:9])
        rows = system.query(
            f"SELECT AVG(value_num) AS a FROM {FACTS_TABLE} "
            f"WHERE entity = '{facts.name}' AND attribute IN ({attr_list})"
        )
        if rows[0]["a"] is not None and abs(rows[0]["a"] - expected) < 0.5:
            structured_correct += 1
        answer = baseline.answer_aggregate(
            f"average March September temperature {facts.name}",
            grep_guess=True,
        )
        if answer.value is not None and abs(answer.value - expected) < 0.5:
            baseline_correct += 1
    assert structured_correct == len(truth)
    assert baseline_correct < len(truth) / 2


def test_people_scenario_hi_feedback_improves_er():
    """E2 in miniature: crowd feedback on uncertain pairs raises F1."""
    _, people, _ = generate_people_corpus(
        PeopleCorpusConfig(num_people=25, mentions_per_person=3,
                           confusable_fraction=0.5, seed=41)
    )
    mentions = []
    truth_of = {}
    mid = 0
    for person in people:
        for variant in person.variants()[:3]:
            mentions.append(Mention(mid, variant))
            truth_of[mid] = person.person_id
            mid += 1

    resolver = EntityResolver(threshold=0.86)
    baseline_f1 = _pairwise_f1(resolver.resolve(mentions), truth_of)

    crowd = SimulatedCrowd.uniform(5, accuracy=0.95, seed=7)
    constraints = MatchConstraints()
    for pair in resolver.uncertain_pairs(mentions, band=0.15, limit=40):
        truth = truth_of[pair.left] == truth_of[pair.right]
        task = VerifyMatchTask(task_id=f"p{pair.left}-{pair.right}",
                               prompt="same person?")
        answer, _ = aggregate_majority(crowd.ask(task, truth, redundancy=5))
        if answer:
            constraints.add_must(pair.left, pair.right)
        else:
            constraints.add_cannot(pair.left, pair.right)
    improved_f1 = _pairwise_f1(resolver.resolve(mentions, constraints),
                               truth_of)
    assert improved_f1 > baseline_f1


def test_email_scenario_pim_extraction():
    """Meetings extracted from e-mail and queried relationally."""
    corpus, truths = generate_email_corpus(num_messages=50, seed=5)
    system = StructureManagementSystem()
    system.registry.register_extractor(
        "meetings",
        RegexExtractor(
            pattern=(r"at (?P<meeting_time>\d{2}:\d{2}) "
                     r"in (?P<meeting_room>[A-Za-z0-9 ]+?)\."),
        ),
    )
    system.registry.register_extractor(
        "dates",
        RegexExtractor(
            pattern=r"on (?P<meeting_date>[A-Z][a-z]+ \d{1,2}, \d{4})",
            normalizers={"meeting_date": normalize_date},
        ),
    )
    system.ingest(corpus)
    system.generate(
        'mail = docs()\n'
        'meet = extract(mail, "meetings")\n'
        'dates = extract(mail, "dates")\n'
        'all = union(meet, dates)\noutput all'
    )
    with_meeting = [t for t in truths if t.meeting_time is not None]
    rows = system.query(
        f"SELECT doc_id, value_text FROM {FACTS_TABLE} "
        "WHERE attribute = 'meeting_time'"
    )
    extracted = {r["doc_id"]: r["value_text"] for r in rows}
    hits = sum(
        1 for t in with_meeting if extracted.get(t.doc_id) == t.meeting_time
    )
    assert hits == len(with_meeting)
    date_rows = system.query(
        f"SELECT doc_id, value_text FROM {FACTS_TABLE} "
        "WHERE attribute = 'meeting_date'"
    )
    dates = {r["doc_id"]: r["value_text"] for r in date_rows}
    date_hits = sum(
        1 for t in with_meeting if dates.get(t.doc_id) == t.meeting_date
    )
    assert date_hits == len(with_meeting)


def test_mixed_style_corpus_needs_union_of_extractors():
    """Coverage grows as extractor variety grows — the best-effort story."""
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=16, seed=51)
    )
    names = [t.name for t in truth]
    cities = DictionaryExtractor(attribute="city", phrases=names)
    rules = [
        ContextRule(f"{m[:3]}_temp", (m.capitalize(), "temperature"),
                    r"(\d+(?:\.\d+)?)\s*degrees",
                    normalizer=normalize_temperature, confidence=0.75)
        for m in MONTHS
    ]

    def coverage(program):
        system = StructureManagementSystem()
        system.registry.register_extractor("infobox", InfoboxExtractor())
        system.registry.register_extractor(
            "prose", RuleCascadeExtractor(rules=list(rules),
                                          entity_dictionary=cities)
        )
        system.ingest(corpus)
        system.generate(program)
        rows = system.query(
            f"SELECT entity FROM {FACTS_TABLE} WHERE attribute = 'sep_temp'"
        )
        return {r["entity"] for r in rows}

    infobox_only = coverage(
        'p = docs()\nf = extract(p, "infobox")\noutput f'
    )
    both = coverage(
        'p = docs()\na = extract(p, "infobox")\nb = extract(p, "prose")\n'
        "u = union(a, b)\noutput u"
    )
    assert len(both) > len(infobox_only)
