"""Tests for the human-intervention subsystem."""

import pytest

from repro.hi.aggregate import aggregate_majority, aggregate_weighted
from repro.hi.crowd import SimulatedCrowd, SimulatedWorker
from repro.hi.reputation import ReputationManager
from repro.hi.tasks import (
    GenerateAnswerTask,
    HiTask,
    SelectCandidateTask,
    TaskQueue,
    TaskResponse,
    ValidateValueTask,
    VerifyMatchTask,
)


# ------------------------------------------------------------------ queue


def test_queue_priority_order():
    queue = TaskQueue()
    queue.submit(HiTask("low", "p", priority=10))
    queue.submit(HiTask("high", "p", priority=1))
    queue.submit(HiTask("mid", "p", priority=5))
    assert queue.next_task().task_id == "high"
    assert queue.next_task().task_id == "mid"
    assert queue.next_task().task_id == "low"
    assert queue.next_task() is None


def test_queue_fifo_within_priority():
    queue = TaskQueue()
    queue.submit_all([HiTask("a", "p"), HiTask("b", "p")])
    assert queue.next_task().task_id == "a"


def test_queue_rejects_duplicates():
    queue = TaskQueue()
    queue.submit(HiTask("x", "p"))
    with pytest.raises(ValueError):
        queue.submit(HiTask("x", "p"))


def test_queue_records_responses():
    queue = TaskQueue()
    queue.submit(HiTask("x", "p"))
    queue.record(TaskResponse("x", "w1", True))
    queue.record(TaskResponse("x", "w2", False))
    assert len(queue.responses("x")) == 2
    with pytest.raises(KeyError):
        queue.record(TaskResponse("missing", "w", 1))


# ------------------------------------------------------------------ crowd


def test_worker_accuracy_statistics():
    worker = SimulatedWorker("w", accuracy=0.8, seed=5)
    correct = 0
    for i in range(500):
        task = VerifyMatchTask(task_id=f"t{i}", prompt="")
        if worker.answer(task, truth=True).answer:
            correct += 1
    assert 0.74 < correct / 500 < 0.86


def test_worker_validates_accuracy_bounds():
    with pytest.raises(ValueError):
        SimulatedWorker("w", accuracy=1.5)


def test_worker_selection_within_attention_budget():
    worker = SimulatedWorker("w", accuracy=0.95, attention_budget=5, seed=1)
    candidates = tuple(f"option{i}" for i in range(5))
    hits = 0
    for i in range(200):
        task = SelectCandidateTask(task_id=f"s{i}", prompt="",
                                   candidates=candidates)
        response = worker.answer(task, truth="option2")
        if response.answer == 2:
            hits += 1
    assert hits / 200 > 0.85


def test_worker_selection_beyond_attention_budget_fails():
    worker = SimulatedWorker("w", accuracy=0.95, attention_budget=3, seed=1)
    candidates = tuple(f"option{i}" for i in range(30))
    hits = 0
    for i in range(200):
        task = SelectCandidateTask(task_id=f"s{i}", prompt="",
                                   candidates=candidates)
        if worker.answer(task, truth="option25").answer == 25:
            hits += 1
    assert hits == 0  # option25 is never inspected


def test_worker_generation_much_harder_than_recognition():
    worker = SimulatedWorker("w", accuracy=0.9, generation_skill=0.2, seed=2)
    generated = 0
    for i in range(300):
        task = GenerateAnswerTask(task_id=f"g{i}", prompt="")
        if worker.answer(task, truth="the-answer").answer == "the-answer":
            generated += 1
    assert generated / 300 < 0.3


def test_crowd_uniform_and_mixed_builders():
    crowd = SimulatedCrowd.uniform(5, accuracy=0.7)
    assert len(crowd) == 5
    mixed = SimulatedCrowd.mixed([0.9, 0.5])
    assert mixed.workers[0].accuracy == 0.9


def test_crowd_redundancy_subset():
    crowd = SimulatedCrowd.uniform(10)
    task = ValidateValueTask(task_id="v", prompt="")
    responses = crowd.ask(task, truth=True, redundancy=3)
    assert len(responses) == 3
    assert len({r.worker_id for r in responses}) == 3


def test_empty_crowd_raises():
    with pytest.raises(ValueError):
        SimulatedCrowd().ask(ValidateValueTask(task_id="v", prompt=""), True)


def test_majority_of_crowd_beats_individual():
    crowd = SimulatedCrowd.uniform(9, accuracy=0.7, seed=4)
    single_correct = majority_correct = 0
    trials = 200
    for i in range(trials):
        truth = i % 2 == 0
        task = VerifyMatchTask(task_id=f"m{i}", prompt="")
        responses = crowd.ask(task, truth)
        answer, _ = aggregate_majority(responses)
        if answer == truth:
            majority_correct += 1
        if responses[0].answer == truth:
            single_correct += 1
    assert majority_correct > single_correct


# -------------------------------------------------------------- aggregate


def test_aggregate_majority():
    responses = [TaskResponse("t", f"w{i}", answer) for i, answer in
                 enumerate([True, True, False])]
    answer, share = aggregate_majority(responses)
    assert answer is True
    assert share == pytest.approx(2 / 3)
    with pytest.raises(ValueError):
        aggregate_majority([])


def test_aggregate_weighted_downweights_bad_workers():
    responses = [
        TaskResponse("t", "good1", True),
        TaskResponse("t", "bad1", False),
        TaskResponse("t", "bad2", False),
    ]
    weights = {"good1": 0.95, "bad1": 0.1, "bad2": 0.1}
    answer, share = aggregate_weighted(responses, weights)
    assert answer is True
    # plain majority would say False
    assert aggregate_majority(responses)[0] is False


def test_aggregate_weighted_default_weight():
    responses = [TaskResponse("t", "unknown", 42)]
    answer, share = aggregate_weighted(responses, {})
    assert answer == 42 and share == 1.0


# -------------------------------------------------------------- reputation


def test_reputation_starts_at_half_and_updates():
    manager = ReputationManager()
    assert manager.reputation("w") == 0.5
    for _ in range(8):
        manager.record_gold("w", True)
    assert manager.reputation("w") > 0.8
    for _ in range(20):
        manager.record_gold("w", False)
    assert manager.reputation("w") < 0.4


def test_reputation_agreement_bootstrap():
    manager = ReputationManager()
    responses = [TaskResponse("t", "agree", True),
                 TaskResponse("t", "disagree", False)]
    manager.record_agreement(responses, accepted_answer=True)
    assert manager.reputation("agree") > manager.reputation("disagree")


def test_points_and_leaderboard():
    manager = ReputationManager(points_per_accepted=2)
    manager.record_gold("a", True)
    manager.record_gold("a", True)
    manager.record_gold("b", True)
    manager.record_gold("c", False)
    assert manager.points("a") == 4
    assert manager.leaderboard(2) == [("a", 4), ("b", 2)]
