"""Tests for the provenance graph."""

import pytest

from repro.docmodel.document import Span
from repro.extraction.base import Extraction
from repro.uncertainty.provenance import ProvenanceGraph


def _extraction(value=70.0, doc="d1"):
    return Extraction("Madison", "sep_temp", value,
                      Span(doc, 10, 12, "70"), 0.9, "infobox")


def test_record_extraction_builds_chain():
    graph = ProvenanceGraph()
    node = graph.record_extraction(_extraction())
    explanation = graph.explain(node.node_id)
    kinds = {e.node.kind for e in explanation.sources}
    assert kinds == {"span", "operator"}
    rendered = explanation.render()
    assert "extraction" in rendered and "span" in rendered


def test_span_nodes_deduplicate():
    graph = ProvenanceGraph()
    graph.record_extraction(_extraction())
    graph.record_extraction(_extraction(value=71.0))
    span_nodes = [n for n in graph._nodes.values() if n.kind == "span"]
    assert len(span_nodes) == 1


def test_record_fact_and_find():
    graph = ProvenanceGraph()
    source = graph.record_extraction(_extraction())
    fact = graph.record_fact("Madison", "sep_temp", 70.0, 0.95, [source])
    found = graph.find_facts(entity="Madison", attribute="sep_temp")
    assert [n.node_id for n in found] == [fact.node_id]
    assert graph.find_facts(entity="Nowhere") == []


def test_explanation_leaf_spans():
    graph = ProvenanceGraph()
    source = graph.record_extraction(_extraction())
    fact = graph.record_fact("Madison", "sep_temp", 70.0, 0.95, [source])
    leaves = graph.explain(fact.node_id).leaf_spans()
    assert len(leaves) == 1
    assert leaves[0].detail["doc_id"] == "d1"


def test_feedback_nodes():
    graph = ProvenanceGraph()
    source = graph.record_extraction(_extraction())
    fact = graph.record_fact("Madison", "sep_temp", 70.0, 0.95, [source])
    graph.record_feedback("crowd accepted 5/5", fact)
    explanation = graph.explain(fact.node_id)
    kinds = [e.node.kind for e in explanation.sources]
    assert "feedback" in kinds


def test_cycle_rejected():
    graph = ProvenanceGraph()
    a = graph.add_node("fact", "a")
    b = graph.add_node("fact", "b")
    graph.add_edge(b.node_id, a.node_id)
    with pytest.raises(ValueError):
        graph.add_edge(a.node_id, b.node_id)
    with pytest.raises(ValueError):
        graph.add_edge(a.node_id, a.node_id)


def test_edge_requires_existing_nodes():
    graph = ProvenanceGraph()
    a = graph.add_node("fact", "a")
    with pytest.raises(KeyError):
        graph.add_edge(a.node_id, "ghost")


def test_add_node_same_id_same_kind_is_fetch():
    graph = ProvenanceGraph()
    first = graph.add_node("document", "d", node_id="document:d")
    second = graph.add_node("document", "d", node_id="document:d")
    assert first is second
    with pytest.raises(ValueError):
        graph.add_node("fact", "d", node_id="document:d")


def test_explain_depth_limit():
    graph = ProvenanceGraph()
    source = graph.record_extraction(_extraction())
    fact = graph.record_fact("M", "a", 1, 0.5, [source])
    shallow = graph.explain(fact.node_id, max_depth=1)
    assert shallow.sources and all(not s.sources for s in shallow.sources)


def test_sources_of():
    graph = ProvenanceGraph()
    source = graph.record_extraction(_extraction())
    fact = graph.record_fact("M", "a", 1, 0.5, [source])
    assert [n.node_id for n in graph.sources_of(fact.node_id)] == [source.node_id]
