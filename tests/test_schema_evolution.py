"""Tests for schema evolution."""

import pytest

from repro.schema.evolution import (
    AddAttribute,
    DropAttribute,
    EvolvingTable,
    MergeAttributes,
    RenameAttribute,
    RetypeAttribute,
    SchemaRegistry,
    SplitAttribute,
)
from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.types import Column, ColumnType, SchemaError, TableSchema


def _schema(name="t"):
    return TableSchema(
        name,
        (Column("id", ColumnType.INT, nullable=False),
         Column("full_name", ColumnType.TEXT)),
        primary_key="id",
    )


def test_registry_versions_advance():
    registry = SchemaRegistry()
    registry.register(_schema())
    v1 = registry.evolve("t", AddAttribute(Column("age", ColumnType.INT)))
    assert v1.version == 1
    assert registry.current("t").schema.has_column("age")
    assert len(registry.history("t")) == 2
    changes = registry.changes_since("t", 0)
    assert len(changes) == 1


def test_registry_rejects_duplicates_and_unknown():
    registry = SchemaRegistry()
    registry.register(_schema())
    with pytest.raises(SchemaError):
        registry.register(_schema())
    with pytest.raises(SchemaError):
        registry.current("missing")


def test_add_attribute_with_compute():
    change = AddAttribute(Column("name_len", ColumnType.INT),
                          compute=lambda row: len(row["full_name"]))
    row = change.apply_row({"id": 1, "full_name": "Ann Lee"})
    assert row["name_len"] == 7


def test_rename_attribute():
    change = RenameAttribute("full_name", "name")
    schema = change.apply_schema(_schema())
    assert schema.has_column("name") and not schema.has_column("full_name")
    assert change.apply_row({"id": 1, "full_name": "x"}) == {"id": 1, "name": "x"}


def test_drop_attribute():
    change = DropAttribute("full_name")
    assert not change.apply_schema(_schema()).has_column("full_name")
    assert change.apply_row({"id": 1, "full_name": "x"}) == {"id": 1}


def test_split_attribute():
    change = SplitAttribute(
        "full_name",
        (Column("first", ColumnType.TEXT), Column("last", ColumnType.TEXT)),
        splitter=lambda v: dict(zip(("first", "last"), v.split(None, 1))),
    )
    schema = change.apply_schema(_schema())
    assert schema.has_column("first") and schema.has_column("last")
    row = change.apply_row({"id": 1, "full_name": "David Smith"})
    assert row == {"id": 1, "first": "David", "last": "Smith"}


def test_merge_attributes():
    base = _schema().with_column(Column("suffix", ColumnType.TEXT))
    change = MergeAttributes(
        ("full_name", "suffix"), Column("display", ColumnType.TEXT),
        merger=lambda vs: f"{vs['full_name']} {vs['suffix']}".strip(),
    )
    schema = change.apply_schema(base)
    assert schema.has_column("display")
    row = change.apply_row({"id": 1, "full_name": "A B", "suffix": "Jr"})
    assert row["display"] == "A B Jr"


def test_retype_attribute():
    base = TableSchema("t", (Column("v", ColumnType.TEXT),))
    change = RetypeAttribute("v", ColumnType.FLOAT, converter=float)
    schema = change.apply_schema(base)
    assert schema.column("v").col_type is ColumnType.FLOAT
    assert change.apply_row({"v": "3.5"}) == {"v": 3.5}


def test_eager_table_migrates_immediately():
    db = Database()
    table = EvolvingTable(db, _schema(), lazy=False)
    table.insert({"id": 1, "full_name": "David Smith"})
    table.evolve(RenameAttribute("full_name", "name"))
    assert table.rows_rewritten == 1
    assert table.rows() == [{"id": 1, "name": "David Smith"}]
    assert table.pending_changes == 0


def test_lazy_table_defers_until_flush():
    db = Database()
    table = EvolvingTable(db, _schema(), lazy=True)
    table.insert({"id": 1, "full_name": "David Smith"})
    table.evolve(RenameAttribute("full_name", "name"))
    table.evolve(AddAttribute(Column("age", ColumnType.INT), default=0))
    assert table.pending_changes == 2
    assert table.rows_rewritten == 0
    # logical reads see the evolved schema already
    assert table.rows() == [{"id": 1, "name": "David Smith", "age": 0}]
    rewritten = table.flush()
    assert rewritten == 1
    assert table.pending_changes == 0
    assert table.rows() == [{"id": 1, "name": "David Smith", "age": 0}]


def test_lazy_flush_composes_in_one_pass():
    db = Database()
    table = EvolvingTable(db, _schema(), lazy=True)
    for i in range(10):
        table.insert({"id": i, "full_name": f"Person {i}"})
    table.evolve(AddAttribute(Column("a", ColumnType.INT), default=1))
    table.evolve(AddAttribute(Column("b", ColumnType.INT), default=2))
    table.evolve(AddAttribute(Column("c", ColumnType.INT), default=3))
    table.flush()
    # 3 changes applied in ONE rewrite of 10 rows, not 30
    assert table.rows_rewritten == 10


def test_lazy_insert_triggers_flush():
    db = Database()
    table = EvolvingTable(db, _schema(), lazy=True)
    table.insert({"id": 1, "full_name": "A"})
    table.evolve(RenameAttribute("full_name", "name"))
    table.insert({"id": 2, "name": "B"})  # logical-schema insert forces flush
    assert table.pending_changes == 0
    assert {r["name"] for r in table.rows()} == {"A", "B"}


def test_logical_schema_tracks_registry():
    db = Database()
    table = EvolvingTable(db, _schema(), lazy=True)
    table.evolve(AddAttribute(Column("x", ColumnType.INT)))
    assert table.logical_schema.has_column("x")


def test_db_indexes_survive_evolution():
    db = Database()
    table = EvolvingTable(db, _schema(), lazy=False)
    db.create_index("t", "full_name", kind="hash")
    table.insert({"id": 1, "full_name": "findme"})
    table.evolve(AddAttribute(Column("extra", ColumnType.INT)))
    hits = db.run(lambda t: t.lookup("t", "full_name", "findme"))
    assert len(hits) == 1
