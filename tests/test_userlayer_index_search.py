"""Tests for the inverted index and keyword search engine."""

import pytest

from repro.docmodel.document import Document
from repro.userlayer.index import InvertedIndex, index_tokens
from repro.userlayer.search import KeywordSearchEngine


def test_index_tokens():
    assert index_tokens("Madison's sep_temp = 70!") == [
        "madison", "s", "sep_temp", "70"
    ]


def test_add_and_search_ranks_relevant_first():
    index = InvertedIndex()
    index.add("relevant", "madison temperature madison weather")
    index.add("less", "madison city hall")
    index.add("noise", "unrelated page about trains")
    hits = index.search("madison temperature")
    assert hits[0].doc_id == "relevant"
    assert {h.doc_id for h in hits} == {"relevant", "less"}


def test_duplicate_add_rejected():
    index = InvertedIndex()
    index.add("a", "text")
    with pytest.raises(ValueError):
        index.add("a", "text again")


def test_remove_document():
    index = InvertedIndex()
    index.add("a", "unique term here")
    index.add("b", "other things")
    index.remove("a")
    assert index.search("unique") == []
    assert len(index) == 1
    with pytest.raises(KeyError):
        index.remove("a")


def test_idf_prefers_rare_terms():
    index = InvertedIndex()
    for i in range(10):
        index.add(f"common{i}", "common words everywhere")
    index.add("rare", "common words everywhere zanzibar")
    hits = index.search("zanzibar")
    assert hits[0].doc_id == "rare" and len(hits) == 1


def test_length_normalization():
    index = InvertedIndex()
    index.add("short", "madison")
    index.add("long", "madison " + "filler " * 200)
    hits = index.search("madison")
    assert hits[0].doc_id == "short"


def test_search_empty_query_or_index():
    index = InvertedIndex()
    assert index.search("anything") == []
    index.add("a", "text")
    assert index.search("") == []


def test_top_k_limit():
    index = InvertedIndex()
    for i in range(30):
        index.add(f"d{i}", "same words here")
    assert len(index.search("words", k=7)) == 7


def test_document_frequency_and_contains():
    index = InvertedIndex()
    index.add("a", "apple banana")
    index.add("b", "apple")
    assert index.document_frequency("apple") == 2
    assert index.document_frequency("banana") == 1
    assert "a" in index and "zz" not in index


def test_engine_indexes_corpus_and_snippets():
    engine = KeywordSearchEngine()
    engine.index_corpus([
        Document("d1", "x " * 50 + "the september temperature is 70 " + "y " * 50),
        Document("d2", "irrelevant content"),
    ])
    results = engine.search("september temperature")
    assert results[0].doc_id == "d1"
    assert "september" in results[0].snippet.lower()
    assert "..." in results[0].snippet


def test_engine_fact_search():
    engine = KeywordSearchEngine()
    engine.index_facts([
        {"entity": "Madison", "attribute": "sep_temp", "value": 70.0},
        {"entity": "Austin", "attribute": "sep_temp", "value": 85.0},
    ])
    facts = engine.search_facts("madison sep_temp")
    assert facts[0]["entity"] == "Madison"
    assert engine.fact_count() == 2


def test_engine_has_document():
    engine = KeywordSearchEngine()
    engine.index_corpus([Document("d1", "hello")])
    assert engine.has_document("d1")
    assert not engine.has_document("d2")
    assert engine.corpus_size() == 1
