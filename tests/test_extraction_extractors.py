"""Tests for the extractor family: regex, dictionary, rules, infobox, composite."""

import pytest

from repro.docmodel.document import Document
from repro.extraction.base import CompositeExtractor, Extraction
from repro.extraction.dictionary import DictionaryExtractor
from repro.extraction.infobox import InfoboxExtractor, WikiTableExtractor
from repro.extraction.normalize import normalize_number, normalize_temperature
from repro.extraction.regex_extractor import RegexExtractor
from repro.extraction.rules import ContextRule, RuleCascadeExtractor

DOC = Document(
    "madison",
    "{{Infobox city | name = Madison | sep_temp = 70 | population = 233,209 }}\n"
    "Madison is in Wisconsin. The September temperature in Madison is "
    "70 degrees. Chicago is colder in winter.",
)


def test_extraction_validates_confidence_and_attribute():
    span = DOC.span(0, 2)
    with pytest.raises(ValueError):
        Extraction("e", "a", 1, span, confidence=1.5)
    with pytest.raises(ValueError):
        Extraction("e", "", 1, span)


def test_extraction_payload_roundtrip():
    span = DOC.span(0, 2)
    extraction = Extraction("Madison", "temp", 70.0, span, 0.9, "test")
    again = Extraction.from_payload(extraction.to_payload())
    assert again == extraction


def test_regex_extractor_named_groups():
    extractor = RegexExtractor(
        pattern=r"population\s*=\s*(?P<population>[\d,]+)",
        normalizers={"population": normalize_number},
    )
    results = extractor.extract(DOC)
    assert len(results) == 1
    assert results[0].attribute == "population"
    assert results[0].value == 233209.0
    assert DOC.text[results[0].span.start:results[0].span.end] == "233,209"


def test_regex_extractor_entity_group():
    extractor = RegexExtractor(
        pattern=r"(?P<city>[A-Z][a-z]+) is in (?P<state>[A-Z][a-z]+)",
        entity_group="city",
    )
    results = extractor.extract(DOC)
    assert results[0].entity == "Madison"
    assert results[0].attribute == "state"
    assert results[0].value == "Wisconsin"


def test_regex_extractor_normalizer_none_suppresses():
    extractor = RegexExtractor(
        pattern=r"temperature in Madison is (?P<t>\w+)",
        normalizers={"t": lambda s: None},
    )
    assert extractor.extract(DOC) == []


def test_regex_requires_named_group():
    with pytest.raises(ValueError):
        RegexExtractor(pattern=r"\d+")


def test_regex_attribute_prefix():
    extractor = RegexExtractor(pattern=r"sep_temp = (?P<value>\d+)",
                               attribute_prefix="infobox_")
    assert extractor.extract(DOC)[0].attribute == "infobox_value"


def test_dictionary_extractor_finds_all_mentions():
    extractor = DictionaryExtractor(
        attribute="city", phrases=["Madison", "Chicago", "New York City"]
    )
    results = extractor.extract(DOC)
    values = [r.value for r in results]
    assert values.count("Madison") == 3
    assert values.count("Chicago") == 1


def test_dictionary_canonical_mapping():
    extractor = DictionaryExtractor(
        attribute="city", phrases={"Madison": "Madison, WI"}
    )
    assert extractor.extract(DOC)[0].value == "Madison, WI"


def test_dictionary_multi_token_longest_match():
    doc = Document("d", "He lives in New York City today")
    extractor = DictionaryExtractor(
        attribute="place", phrases=["New York", "New York City"]
    )
    results = extractor.extract(doc)
    assert len(results) == 1
    assert results[0].value == "New York City"


def test_dictionary_case_insensitive_by_default():
    doc = Document("d", "MADISON rocks")
    extractor = DictionaryExtractor(attribute="city", phrases=["Madison"])
    assert len(extractor.extract(doc)) == 1
    strict = DictionaryExtractor(attribute="city", phrases=["Madison"],
                                 case_sensitive=True)
    assert strict.extract(doc) == []


def test_rule_cascade_binds_nearest_entity():
    doc = Document(
        "d",
        "The September temperature in Madison is 70 degrees. "
        "The September temperature in Chicago is 65 degrees.",
    )
    cities = DictionaryExtractor(attribute="city", phrases=["Madison", "Chicago"])
    extractor = RuleCascadeExtractor(
        rules=[ContextRule("sep_temp", ("September", "temperature"),
                           r"(\d+(?:\.\d+)?)\s*degrees",
                           normalizer=normalize_temperature)],
        entity_dictionary=cities,
    )
    results = extractor.extract(doc)
    assert {(r.entity, r.value) for r in results} == {("Madison", 70.0),
                                                      ("Chicago", 65.0)}


def test_rule_cascade_triggers_must_all_match():
    doc = Document("d", "The temperature is 70 degrees but no month is named.")
    extractor = RuleCascadeExtractor(
        rules=[ContextRule("sep_temp", ("September", "temperature"),
                           r"(\d+)\s*degrees")]
    )
    assert extractor.extract(doc) == []


def test_rule_cascade_priority_suppresses_overlap():
    doc = Document("d", "The high was 70 degrees in September temperature logs.")
    high_priority = ContextRule("a", ("high",), r"(\d+)\s*degrees", priority=0)
    low_priority = ContextRule("b", ("degrees",), r"(\d+)\s*degrees", priority=5)
    extractor = RuleCascadeExtractor(rules=[low_priority, high_priority])
    results = extractor.extract(doc)
    assert [r.attribute for r in results] == ["a"]


def test_rule_cascade_prefilter_terms():
    extractor = RuleCascadeExtractor(
        rules=[ContextRule("t", ("September", "temperature"), r"\d+")]
    )
    assert extractor.prefilter_terms() == [["September", "temperature"]]


def test_infobox_extractor_types_and_entity():
    extractor = InfoboxExtractor(box_types=("city",))
    results = {r.attribute: r for r in extractor.extract(DOC)}
    assert results["sep_temp"].value == 70.0
    assert results["sep_temp"].entity == "Madison"
    assert results["population"].value == 233209.0


def test_infobox_extractor_include_exclude():
    include = InfoboxExtractor(include_fields=("sep_temp",))
    assert [r.attribute for r in include.extract(DOC)] == ["sep_temp"]
    exclude = InfoboxExtractor(exclude_fields=("sep_temp",))
    assert "sep_temp" not in [r.attribute for r in exclude.extract(DOC)]


def test_infobox_extractor_wrong_type_skipped():
    extractor = InfoboxExtractor(box_types=("person",))
    assert extractor.extract(DOC) == []


def test_wikitable_extractor():
    doc = Document(
        "d",
        "{|\n! month !! temperature\n|-\n| January || 26\n|-\n| September || 70\n|}",
    )
    extractor = WikiTableExtractor(
        key_column="month", value_normalizers={"temperature": normalize_number}
    )
    results = extractor.extract(doc)
    assert {(r.entity, r.value) for r in results} == {("January", 26.0),
                                                      ("September", 70.0)}


def test_wikitable_requires_key_column():
    with pytest.raises(ValueError):
        WikiTableExtractor().extract(DOC)


def test_composite_deduplicates_keeping_best_confidence():
    low = RegexExtractor(pattern=r"sep_temp = (?P<sep_temp>\d+)",
                         normalizers={"sep_temp": normalize_number},
                         confidence=0.5, name="low")
    high = RegexExtractor(pattern=r"sep_temp = (?P<sep_temp>\d+)",
                          normalizers={"sep_temp": normalize_number},
                          confidence=0.9, name="high")
    composite = CompositeExtractor(extractors=[low, high])
    results = composite.extract(DOC)
    assert len(results) == 1
    assert results[0].confidence == 0.9
    assert results[0].extractor == "high"


def test_extract_corpus_helper():
    extractor = DictionaryExtractor(attribute="city", phrases=["Madison"])
    docs = [DOC, Document("d2", "Madison again")]
    assert len(extractor.extract_corpus(docs)) == 4
