"""Tests for query-level observability: EXPLAIN ANALYZE, the slow-query
log, cardinality feedback, Prometheus export, and the ``repro top`` /
``slowlog`` CLI surface."""

import json
import re

import pytest

from repro import telemetry
from repro.cli import main as cli_main
from repro.core.system import StructureManagementSystem
from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.qcache import QueryResultCache
from repro.storage.rdbms.sql import SqlError, execute_sql
from repro.telemetry import metrics
from repro.telemetry.feedback import CardinalityFeedback, q_error
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.report import (
    render_prometheus,
    render_report,
    render_top,
    summarize_trace,
)
from repro.telemetry.slowlog import SlowQueryLog
from repro.telemetry.tracing import JsonlSpanExporter, Tracer

_ACTUAL = re.compile(r"actual rows=(\d+)")


@pytest.fixture
def db():
    """items (200 rows, indexed cat/score) joined against dims (8 rows)."""
    database = Database()
    execute_sql(
        database,
        "CREATE TABLE items (item_id INT PRIMARY KEY, cat TEXT, score INT)",
    )
    rows = ", ".join(f"({i}, 'cat{i % 8}', {i})" for i in range(200))
    execute_sql(database,
                f"INSERT INTO items (item_id, cat, score) VALUES {rows}")
    database.create_index("items", "cat", "hash")
    database.create_index("items", "score", "sorted")
    execute_sql(database,
                "CREATE TABLE dims (cat TEXT PRIMARY KEY, label TEXT)")
    dim_rows = ", ".join(f"('cat{i}', 'label{i}')" for i in range(8))
    execute_sql(database, f"INSERT INTO dims (cat, label) VALUES {dim_rows}")
    database.create_index("dims", "cat", "hash")
    return database


def _analyze(db, sql):
    return [r["plan"] for r in execute_sql(db, f"EXPLAIN ANALYZE {sql}")]


def _top_actual(lines):
    for line in lines:
        m = _ACTUAL.search(line)
        if m:
            return int(m.group(1))
    raise AssertionError(f"no actuals in {lines}")


# ------------------------------------------------------- EXPLAIN ANALYZE


QUERIES = [
    "SELECT * FROM items WHERE cat = 'cat3'",
    "SELECT * FROM items WHERE score >= 50 AND score < 70",
    "SELECT item_id, score FROM items ORDER BY score DESC LIMIT 5",
    "SELECT cat, COUNT(*) AS n FROM items WHERE score < 100 GROUP BY cat",
    "SELECT items.item_id, dims.label FROM items "
    "JOIN dims ON items.cat = dims.cat WHERE score < 20",
]


@pytest.mark.parametrize("sql", QUERIES)
def test_analyze_actuals_match_naive_oracle(db, sql):
    oracle = execute_sql(db, sql, use_planner=False)
    lines = _analyze(db, sql)
    assert _top_actual(lines) == len(oracle)
    summary = [ln for ln in lines if ln.startswith("Execution: ")]
    assert summary and f"Execution: {len(oracle)} rows" in summary[0]


def test_analyze_annotates_every_executed_operator(db):
    lines = _analyze(db, "SELECT * FROM items WHERE cat = 'cat3'")
    lookup = [ln for ln in lines if "IndexLookup" in ln]
    assert lookup and "actual rows=25" in lookup[0]
    assert "loops=1" in lookup[0]
    assert "time=" in lookup[0]


def test_analyze_join_reports_per_operator_actuals(db):
    lines = _analyze(
        db, "SELECT items.item_id, dims.label FROM items "
            "JOIN dims ON items.cat = dims.cat WHERE score < 16")
    join = [ln for ln in lines
            if "HashJoin" in ln or "IndexNestedLoopJoin" in ln]
    assert join and _ACTUAL.search(join[0])
    if "IndexNestedLoopJoin" in join[0]:
        assert "probes=" in join[0]


def test_analyze_vector_path_reports_segments(db):
    db.compact("items")
    lines = _analyze(db, "SELECT cat, COUNT(*) AS n FROM items GROUP BY cat")
    vec = [ln for ln in lines if "VectorizedAggregate" in ln]
    assert vec and "segments=" in vec[0]
    # the row-path SegmentScan under a vectorized aggregate never runs
    assert any("never executed" in ln for ln in lines
               if "SegmentScan" in ln)


def test_plain_explain_and_execution_carry_no_instrumentation(db):
    sql = "SELECT * FROM items WHERE cat = 'cat1'"
    _analyze(db, sql)  # profiling one statement...
    explain = [r["plan"] for r in execute_sql(db, f"EXPLAIN {sql}")]
    assert not any("actual" in ln for ln in explain)  # ...leaves no residue
    assert execute_sql(db, sql) == execute_sql(db, sql, use_planner=False)


def test_analyze_requires_select(db):
    with pytest.raises(SqlError):
        execute_sql(db, "EXPLAIN ANALYZE DELETE FROM items WHERE score < 5")


def test_analyze_increments_counter(db):
    registry = metrics.get_registry()
    before = registry.get("planner.explain_analyze")
    _analyze(db, "SELECT * FROM items WHERE cat = 'cat0'")
    assert registry.get("planner.explain_analyze") == before + 1


# --------------------------------------------------- cardinality feedback


def test_q_error_symmetric_and_floored():
    assert q_error(10, 100) == q_error(100, 10) == 10.0
    assert q_error(0, 0) == 1.0
    assert q_error(0, 50) == 50.0


def test_feedback_store_pending_and_cooldown():
    fb = CardinalityFeedback(ratio_threshold=4.0)
    assert fb.record("t", "c", "eq", est_rows=10, actual_rows=100, version=3)
    assert fb.pending("t") == ("c",)
    # already pending: the same misestimate does not re-trigger
    assert not fb.record("t", "c", "eq", 10, 100, 3)
    fb.resolve("t", ["c"], 3)
    assert fb.pending("t") == ()
    # resolved at this version: no re-trigger until the table changes
    assert not fb.record("t", "c", "eq", 10, 100, 3)
    assert fb.record("t", "c", "eq", 10, 100, 4)


def _skewed_db():
    database = Database()
    execute_sql(database,
                "CREATE TABLE ev (id INT PRIMARY KEY, kind TEXT)")

    def load(t):
        t.insert_many("ev", [
            {"id": i, "kind": f"k{i % 50}"} for i in range(2000)
        ])
    database.run(load)
    database.statistics().analyze("ev")
    # 15% drift: below the staleness refresh, invisible to cached stats
    database.run(lambda t: t.insert_many("ev", [
        {"id": 2000 + i, "kind": "hot"} for i in range(300)
    ]))
    return database


def _estimate(database, sql):
    for r in execute_sql(database, f"EXPLAIN {sql}"):
        m = re.search(r"rows~(\d+)", r["plan"])
        if m:
            return float(m.group(1))
    raise AssertionError("no estimate found")


def test_misestimate_triggers_targeted_reanalyze_and_corrects():
    database = _skewed_db()
    registry = metrics.get_registry()
    analyze_before = registry.get("planner.analyze.feedback")
    sql = "SELECT COUNT(*) AS n FROM ev WHERE kind = 'hot'"
    est_stale = _estimate(database, sql)
    actual = execute_sql(database, sql)[0]["n"]
    assert actual == 300
    assert q_error(est_stale, actual) > 4.0
    feedback = database.statistics().feedback
    entry = [e for e in feedback.entries() if e.column == "kind"][0]
    assert entry.misestimates >= 1 and entry.pending
    # the next plan consults stats(), which re-analyzes just 'kind'
    est_fixed = _estimate(database, sql)
    assert q_error(est_fixed, actual) <= 2.0
    assert registry.get("planner.analyze.feedback") == analyze_before + 1
    assert not [e for e in feedback.entries()
                if e.column == "kind" and e.pending]


def test_feedback_reanalyze_does_not_loop():
    database = _skewed_db()
    registry = metrics.get_registry()
    sql = "SELECT COUNT(*) AS n FROM ev WHERE kind = 'hot'"
    execute_sql(database, sql)
    database.statistics().stats("ev")  # targeted re-analyze happens here
    after_first = registry.get("planner.analyze.feedback")
    # repeated queries at the same table version must not re-analyze
    for _ in range(3):
        execute_sql(database, sql)
        database.statistics().stats("ev")
    assert registry.get("planner.analyze.feedback") == after_first


def test_mcv_distinguishes_hot_from_cold_values():
    database = _skewed_db()
    execute_sql(database, "SELECT COUNT(*) AS n FROM ev WHERE kind = 'hot'")
    stats = database.statistics().stats("ev")
    column = stats.column("kind")
    assert any(v == "hot" for v, _ in column.mcv)
    hot = column.eq_selectivity("hot")
    cold = column.eq_selectivity("k7")
    assert hot > 5 * cold
    # uniform columns keep an empty MCV list (no over-represented value)
    uniform = database.statistics().stats("ev").column("id")
    assert uniform.mcv == ()


def test_bare_limit_does_not_poison_feedback(db):
    """A LIMIT-truncated scan undercounts; it must not record feedback."""
    stats = db.statistics()
    before = len(stats.feedback.entries())
    execute_sql(db, "SELECT * FROM items WHERE score >= 0 LIMIT 3")
    assert len(stats.feedback.entries()) == before


# ----------------------------------------------------------- slow queries


def test_slowlog_threshold_boundary(db):
    log = SlowQueryLog(threshold_seconds=0.5, annotate=False)
    assert not log.observe(db, "SELECT * FROM items", 0.49, 10)
    assert log.observe(db, "SELECT * FROM items", 0.5, 10)
    assert len(log.entries()) == 1


def test_slowlog_entry_carries_annotated_plan_and_versions(db):
    log = SlowQueryLog(threshold_seconds=0.0)
    log.observe(db, "select * from items where cat = 'cat2'", 1.25, 25)
    entry = log.entries()[0]
    assert entry["sql"] == "SELECT * FROM items WHERE cat = 'cat2'"
    assert entry["seconds"] == 1.25
    assert entry["stats_versions"]["items"] >= 0
    assert any("actual rows=25" in ln for ln in entry["plan"])
    assert entry["metrics_delta"]["planner.explain_analyze"] == 1


def test_slowlog_persists_and_clears(tmp_path, db):
    path = str(tmp_path / "slow.jsonl")
    log = SlowQueryLog(path=path, threshold_seconds=0.0, annotate=False)
    log.observe(db, "SELECT COUNT(*) AS n FROM items", 2.0, 1)
    log.close()
    reopened = SlowQueryLog(path=path)
    assert len(reopened.entries()) == 1
    assert reopened.clear() == 1
    assert reopened.entries() == []
    assert not (tmp_path / "slow.jsonl").exists()


def test_slowlog_tolerates_corrupt_lines(tmp_path, db):
    path = str(tmp_path / "slow.jsonl")
    log = SlowQueryLog(path=path, threshold_seconds=0.0, annotate=False)
    log.observe(db, "SELECT COUNT(*) AS n FROM items", 2.0, 1)
    log.close()
    with open(path, "a", encoding="utf-8") as f:
        f.write("{not json\n")
    assert len(SlowQueryLog(path=path).entries()) == 1


def test_qcache_observes_through_slowlog(db):
    log = SlowQueryLog(threshold_seconds=0.0, annotate=False)
    cache = QueryResultCache(db, slowlog=log)
    cache.execute("SELECT COUNT(*) AS n FROM items")
    cache.execute("SELECT COUNT(*) AS n FROM items")  # cache hit: also timed
    assert len(log.entries()) == 2


def test_system_slow_queries_and_workspace_persistence(tmp_path):
    ws = str(tmp_path / "ws")
    system = StructureManagementSystem(workspace=ws, slow_query_seconds=0.0)
    system.query("SELECT COUNT(*) AS n FROM facts")
    entries = system.slow_queries()
    assert len(entries) == 1 and "plan" in entries[0]
    system.close()
    assert (tmp_path / "ws" / "slowlog.jsonl").exists()

    disabled = StructureManagementSystem(slow_query_seconds=None)
    disabled.query("SELECT COUNT(*) AS n FROM facts")
    assert disabled.slow_queries() == []
    disabled.close()


# ------------------------------------------------------------- rendering


def test_render_prometheus_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.inc("rdbms.wal.bytes", 512)
    registry.set_gauge("pool.size", 4)
    registry.observe("op.seconds", 0.2, buckets=(0.1, 1.0))
    registry.observe("op.seconds", 5.0, buckets=(0.1, 1.0))
    text = registry.render_prometheus()
    assert "# TYPE repro_rdbms_wal_bytes_total counter" in text
    assert "repro_rdbms_wal_bytes_total 512" in text
    assert "repro_pool_size 4" in text
    assert 'repro_op_seconds_bucket{le="0.1"} 0' in text
    assert 'repro_op_seconds_bucket{le="1"} 1' in text
    assert 'repro_op_seconds_bucket{le="+Inf"} 2' in text
    assert "repro_op_seconds_count 2" in text
    assert text.endswith("\n")


def test_render_prometheus_empty_snapshot():
    assert render_prometheus(None) == ""
    assert render_prometheus({}) == ""


def test_render_top_cumulative_and_delta():
    prev = {"counters": {"system.queries": 10.0, "planner.cache.hits": 4.0,
                         "planner.cache.misses": 6.0}}
    cur = {"counters": {"system.queries": 30.0, "planner.cache.hits": 14.0,
                        "planner.cache.misses": 6.0}}
    cumulative = render_top(None, cur)
    assert "cumulative" in cumulative and "queries" in cumulative
    frame = render_top(prev, cur, interval_seconds=2.0,
                       slow_entries=[{"sql": "SELECT 1", "seconds": 3.0}])
    assert "delta over 2.0s" in frame
    assert "10.0/s" in frame          # 20 queries over 2s
    assert "100.0%" in frame          # 10 hits / 0 misses in the delta
    assert "SELECT 1" in frame


def test_report_hit_rate_divide_by_zero_guard():
    # family present with zero lookups: the line prints, rate reads n/a
    summary = summarize_trace([])
    snapshot = {"counters": {"planner.cache.invalidations": 3.0,
                             "cache.evictions": 1.0,
                             "segments.rows_frozen": 10.0},
                "gauges": {}, "histograms": {}}
    text = render_report(summary, snapshot)
    assert "hit rate n/a" in text
    assert "zone-map skip rate n/a" in text


def test_report_edge_cases_empty_single_bucket_disjoint_merge():
    # empty registry: render must not raise and still shows the header
    empty = render_report(summarize_trace([]), MetricsRegistry().snapshot())
    assert "spans: 0" in empty

    # single-bucket histogram round-trips through report and prometheus
    registry = MetricsRegistry()
    registry.observe("h.one", 0.5, buckets=(1.0,))
    text = render_report(summarize_trace([]), registry.snapshot())
    assert "h.one" in text
    prom = render_prometheus(registry.snapshot())
    assert 'repro_h_one_bucket{le="1"} 1' in prom

    # merging snapshots with disjoint counter sets keeps both families
    a, b = MetricsRegistry(), MetricsRegistry()
    a.inc("only.a", 2)
    b.inc("only.b", 3)
    a.merge(b.snapshot())
    merged = a.snapshot()["counters"]
    assert merged == {"only.a": 2.0, "only.b": 3.0}
    assert "only.a" in render_report(summarize_trace([]), a.snapshot())


# ----------------------------------------------------------------- tracer


def test_span_exported_when_body_raises(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    exporter = JsonlSpanExporter(path)
    tracer = Tracer([exporter])
    with pytest.raises(RuntimeError):
        with tracer.span("rdbms.plan"):
            raise RuntimeError("killed mid-plan")
    exporter.flush()
    exporter.close()
    records = [json.loads(ln) for ln in open(path, encoding="utf-8")]
    assert len(records) == 1
    assert records[0]["name"] == "rdbms.plan"
    assert records[0]["status"] == "error"
    assert "killed mid-plan" in records[0]["error"]
    assert records[0]["end"] is not None


def test_query_killed_mid_plan_still_exports_span(tmp_path):
    path = str(tmp_path / "t.jsonl")
    session = telemetry.enable(jsonl_path=path)
    try:
        system = StructureManagementSystem(slow_query_seconds=None)
        with pytest.raises(SqlError):
            system.query("SELECT entity FROM facts WHERE")
        system.close()  # flushes the session's JSONL exporter
        with open(path, encoding="utf-8") as f:
            records = [json.loads(ln) for ln in f]
        errored = [r for r in records
                   if r.get("kind") == "span" and r["status"] == "error"]
        assert any(r["name"] == "system.query" for r in errored)
    finally:
        session.finish()
        telemetry.disable()


def test_jsonl_exporter_flush_safe_after_close(tmp_path):
    exporter = JsonlSpanExporter(str(tmp_path / "x.jsonl"))
    exporter.close()
    exporter.flush()  # must not raise


# -------------------------------------------------------------------- CLI


@pytest.fixture
def slow_workspace(tmp_path):
    ws = str(tmp_path / "ws")
    system = StructureManagementSystem(workspace=ws, slow_query_seconds=0.0)
    system.query("SELECT COUNT(*) AS n FROM facts")
    system.query("SELECT entity FROM facts WHERE attribute = 'x'")
    system.close()
    return ws


def test_cli_slowlog_list_show_clear(slow_workspace, capsys):
    assert cli_main(["--workspace", slow_workspace, "slowlog", "list"]) == 0
    out = capsys.readouterr().out
    assert "SELECT COUNT ( * ) AS n FROM facts" in out

    assert cli_main(["--workspace", slow_workspace, "slowlog", "show"]) == 0
    out = capsys.readouterr().out
    assert "plan:" in out and "actual rows=" in out

    assert cli_main(["--workspace", slow_workspace,
                     "slowlog", "show", "99"]) == 2

    assert cli_main(["--workspace", slow_workspace, "slowlog", "clear"]) == 0
    capsys.readouterr()
    assert cli_main(["--workspace", slow_workspace, "slowlog", "list"]) == 0
    assert "empty" in capsys.readouterr().out


def test_cli_stats_prom_and_json(tmp_path, slow_workspace, capsys):
    telemetry_file = str(tmp_path / "tel.jsonl")
    assert cli_main(["--workspace", slow_workspace,
                     "--telemetry", telemetry_file,
                     "sql", "SELECT COUNT(*) AS n FROM facts"]) == 0
    capsys.readouterr()
    assert cli_main(["--workspace", slow_workspace, "stats",
                     telemetry_file, "--prom"]) == 0
    prom = capsys.readouterr().out
    assert "# TYPE repro_system_queries_total counter" in prom

    assert cli_main(["--workspace", slow_workspace, "stats",
                     telemetry_file, "--json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert snapshot["counters"]["system.queries"] >= 1.0


def test_cli_top_renders_frame(tmp_path, slow_workspace, capsys):
    telemetry_file = str(tmp_path / "tel.jsonl")
    assert cli_main(["--workspace", slow_workspace,
                     "--telemetry", telemetry_file,
                     "sql", "SELECT COUNT(*) AS n FROM facts"]) == 0
    capsys.readouterr()
    assert cli_main(["--workspace", slow_workspace,
                     "top", telemetry_file]) == 0
    out = capsys.readouterr().out
    assert "repro top — cumulative" in out
    assert "slow-query tail:" in out  # the workspace slowlog rides along

    assert cli_main(["--workspace", slow_workspace,
                     "top", str(tmp_path / "missing.jsonl")]) == 1
