"""Fault-tolerance tests: injection, retry, quarantine, and recovery.

The fault path must preserve the determinism contract: a faulty run
produces byte-identical facts to a fault-free run *minus* the quarantined
documents, and the quarantined set is a pure function of the injector's
``(seed, key)`` hash — predictable before the run ever starts.
"""

import os
import pickle
from dataclasses import dataclass

import pytest

from repro.cluster.backends import BackendError, make_backend
from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.extraction.infobox import InfoboxExtractor
from repro.faults import (
    DeadLetterEntry,
    DeadLetterStore,
    FaultInjector,
    FaultyExtractor,
    InjectedFault,
    RetryPolicy,
)
from repro.lang.executor import run_program
from repro.lang.registry import OperatorRegistry
from repro.telemetry.metrics import MetricsRegistry, use_registry

PROGRAM = 'p = docs()\nf = extract(p, "infobox")\noutput f'


def _corpus(num_cities=16):
    corpus, _ = generate_city_corpus(
        CityCorpusConfig(num_cities=num_cities, seed=53, styles=("infobox",))
    )
    return list(corpus)


def _registry(extractor):
    registry = OperatorRegistry()
    registry.register_extractor("infobox", extractor)
    return registry


# ------------------------------------------------------------- RetryPolicy


def test_retry_succeeds_after_transient_failures():
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise ValueError("transient")
        return "ok"

    policy = RetryPolicy(max_attempts=3, base_delay=0.0)
    assert policy.run(flaky, sleep=lambda _: None) == "ok"
    assert len(calls) == 3


def test_retry_raises_after_budget_exhausted():
    policy = RetryPolicy(max_attempts=2, base_delay=0.0)

    def always():
        raise ValueError("permanent")

    with pytest.raises(ValueError, match="permanent"):
        policy.run(always, sleep=lambda _: None)


def test_retry_counts_performed_retries():
    registry = MetricsRegistry()
    policy = RetryPolicy(max_attempts=3, base_delay=0.0)
    with use_registry(registry):
        with pytest.raises(ValueError):
            policy.run(lambda: (_ for _ in ()).throw(ValueError()),
                       sleep=lambda _: None)
    # 3 attempts -> 2 retries (the first try is not a retry)
    assert registry.get("tasks.retried") == 2


def test_retry_delay_is_deterministic_and_backs_off():
    policy = RetryPolicy(max_attempts=5, base_delay=0.01, max_delay=0.05,
                         multiplier=2.0, jitter=0.25)
    delays = [policy.delay_for(k, salt="task-7") for k in (1, 2, 3, 4)]
    assert delays == [policy.delay_for(k, salt="task-7") for k in (1, 2, 3, 4)]
    # raw backoff grows 0.01, 0.02, 0.04, then caps at 0.05
    assert delays[0] < delays[1] < delays[2]
    assert all(d <= 0.05 * 1.25 for d in delays)
    # different salts de-synchronize the sleep schedule
    assert policy.delay_for(1, salt="a") != policy.delay_for(1, salt="b")


def test_retry_deadline_cuts_the_budget_short():
    policy = RetryPolicy(max_attempts=10, base_delay=10.0, deadline=0.01)
    calls = []

    def always():
        calls.append(1)
        raise ValueError("slow fail")

    with pytest.raises(ValueError):
        policy.run(always, sleep=lambda _: None)
    assert len(calls) == 1  # first backoff (10s) would blow the deadline


def test_retry_does_not_retry_unlisted_exceptions():
    policy = RetryPolicy(max_attempts=5, base_delay=0.0)
    calls = []

    def typeerror():
        calls.append(1)
        raise TypeError("not retryable here")

    with pytest.raises(TypeError):
        policy.run(typeerror, retry_on=(ValueError,), sleep=lambda _: None)
    assert len(calls) == 1


def test_retry_validates_configuration():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)


# ----------------------------------------------------------- FaultInjector


def test_injector_selection_is_deterministic():
    keys = [f"doc-{i}" for i in range(200)]
    a = FaultInjector(mode="error", rate=0.1, seed=42)
    b = FaultInjector(mode="error", rate=0.1, seed=42)
    assert a.faulted_keys(keys) == b.faulted_keys(keys)
    assert 0 < len(a.faulted_keys(keys)) < len(keys)
    # a different seed picks a different subset
    c = FaultInjector(mode="error", rate=0.1, seed=43)
    assert a.faulted_keys(keys) != c.faulted_keys(keys)


def test_injector_transient_key_heals_after_fail_attempts():
    inj = FaultInjector(mode="error", keys=("poison",), fail_attempts=2)
    with pytest.raises(InjectedFault):
        inj.check("poison")
    with pytest.raises(InjectedFault):
        inj.check("poison")
    inj.check("poison")  # third attempt succeeds
    inj.check("healthy")  # unselected keys never fault
    assert inj.injected == 2


def test_injector_persistent_key_always_faults():
    inj = FaultInjector(mode="error", keys=("poison",), persistent_share=1.0)
    for _ in range(5):
        with pytest.raises(InjectedFault):
            inj.check("poison")
    assert inj.is_persistent("poison")
    assert not inj.is_persistent("healthy")


def test_injector_every_n_faults_on_schedule():
    inj = FaultInjector(mode="error", every_n=3)
    outcomes = []
    for _ in range(9):
        try:
            inj.check("any")
            outcomes.append("ok")
        except InjectedFault:
            outcomes.append("fault")
    assert outcomes == ["ok", "ok", "fault"] * 3


def test_injector_corrupt_flips_one_byte_deterministically():
    inj = FaultInjector(mode="corrupt", seed=9)
    data = b'{"lsn": 1, "txn": 2, "type": "commit"}'
    mutated = inj.corrupt(data, key="rec-1")
    assert mutated != data
    assert len(mutated) == len(data)
    assert sum(a != b for a, b in zip(data, mutated)) == 1
    assert inj.corrupt(data, key="rec-1") == mutated  # deterministic
    assert inj.corrupt(data, key="rec-2") != mutated or True  # other key ok
    assert inj.corrupt(b"", key="x") == b""


def test_injector_pickles_and_keeps_config():
    inj = FaultInjector(mode="error", rate=0.25, keys=("a",),
                        persistent_share=0.5, seed=7)
    clone = pickle.loads(pickle.dumps(inj))
    keys = [f"k{i}" for i in range(50)]
    assert clone.faulted_keys(keys) == inj.faulted_keys(keys)
    assert repr(clone) == repr(inj)


def test_injector_attempt_counts_survive_via_state_dir(tmp_path):
    state = str(tmp_path / "state")
    first = FaultInjector(mode="error", keys=("k",), fail_attempts=2,
                          state_dir=state)
    with pytest.raises(InjectedFault):
        first.check("k")
    # a *fresh* injector (as after a worker crash) continues the count
    second = FaultInjector(mode="error", keys=("k",), fail_attempts=2,
                           state_dir=state)
    with pytest.raises(InjectedFault):
        second.check("k")
    second.check("k")  # attempt 3 > fail_attempts


def test_injector_rejects_bad_configuration():
    with pytest.raises(ValueError):
        FaultInjector(mode="explode")
    with pytest.raises(ValueError):
        FaultInjector(rate=1.5)


def test_faulty_extractor_delegates_and_faults():
    inner = InfoboxExtractor()
    inj = FaultInjector(mode="error", keys=("bad",), persistent_share=1.0)
    faulty = FaultyExtractor(inner, inj)
    assert faulty.name == "faulty:infobox"
    assert faulty.cost_per_char == inner.cost_per_char
    doc = _corpus(2)[0]
    assert faulty.extract(doc) == inner.extract(doc)


# ----------------------------------------------------------- dead letters


def test_deadletter_store_persists_across_reopen(tmp_path):
    root = str(tmp_path / "dl")
    store = DeadLetterStore(root)
    store.add(DeadLetterEntry("doc-1", "infobox", "boom", "ValueError", 3))
    store.add_many([DeadLetterEntry("doc-2", "infobox", "kaput")])
    reopened = DeadLetterStore(root)
    assert reopened.doc_ids() == ["doc-1", "doc-2"]
    entry = reopened.entries()[0]
    assert entry.error_type == "ValueError" and entry.attempts == 3
    assert reopened.remove(["doc-1"]) == 1
    assert DeadLetterStore(root).doc_ids() == ["doc-2"]
    assert reopened.clear() == 1
    assert len(DeadLetterStore(root)) == 0


def test_deadletter_store_memory_mode_without_root():
    store = DeadLetterStore()
    store.add(DeadLetterEntry("doc-1", "infobox", "boom"))
    assert store.doc_ids() == ["doc-1"]
    assert store.clear() == 1
    assert len(store) == 0


def test_deadletter_store_tolerates_torn_tail(tmp_path):
    root = str(tmp_path / "dl")
    store = DeadLetterStore(root)
    store.add(DeadLetterEntry("doc-1", "infobox", "boom"))
    with open(os.path.join(root, "entries.jsonl"), "a",
              encoding="utf-8") as f:
        f.write('{"doc_id": "doc-2", "extr')  # crash mid-append
    assert DeadLetterStore(root).doc_ids() == ["doc-1"]


def test_deadletter_store_maintains_size_gauge(tmp_path):
    registry = MetricsRegistry()
    with use_registry(registry):
        store = DeadLetterStore(str(tmp_path / "dl"))
        store.add_many([
            DeadLetterEntry("doc-1", "infobox", "a"),
            DeadLetterEntry("doc-2", "infobox", "b"),
        ])
        assert registry.gauge("deadletter.size") == 2.0
        assert registry.get("deadletter.quarantined") == 2
        store.remove(["doc-1"])
        assert registry.gauge("deadletter.size") == 1.0
        store.clear()
        assert registry.gauge("deadletter.size") == 0.0


# --------------------------------------------------------- backend retries


@dataclass(frozen=True)
class _InjectedPayload:
    """Picklable map payload that consults a fault injector per item."""

    injector: FaultInjector

    def __call__(self, item):
        self.injector.check(f"item-{item}")
        return item * 10


_FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0)


@pytest.mark.parametrize("spec", ["serial", "thread"])
def test_backend_retries_transient_faults(spec):
    # in-memory attempt counts work on serial/thread (no pickling)
    inj = FaultInjector(mode="error", keys=("item-3", "item-7"),
                        fail_attempts=1)
    with make_backend(spec, max_workers=2, retry=_FAST_RETRY) as backend:
        out = backend.map(_InjectedPayload(inj), list(range(10)),
                          chunk_size=2)
    assert out == [i * 10 for i in range(10)]
    assert inj.injected == 2


def test_process_backend_retries_transient_faults(tmp_path):
    # the payload is re-pickled per submission, so durable attempt counts
    # (state_dir) are what lets the retry round observe progress
    inj = FaultInjector(mode="error", keys=("item-3",), fail_attempts=1,
                        state_dir=str(tmp_path / "state"))
    with make_backend("process", max_workers=2, retry=_FAST_RETRY) as backend:
        out = backend.map(_InjectedPayload(inj), list(range(8)),
                          chunk_size=2)
    assert out == [i * 10 for i in range(8)]


@pytest.mark.parametrize("spec", ["serial", "thread"])
def test_backend_routes_persistent_failure_to_callback(spec):
    inj = FaultInjector(mode="error", keys=("item-4",), persistent_share=1.0)
    failures = []

    def on_fail(item, exc):
        failures.append((item, type(exc).__name__))
        return ("failed", item)

    with make_backend(spec, max_workers=2, retry=_FAST_RETRY) as backend:
        out = backend.map(_InjectedPayload(inj), list(range(8)),
                          chunk_size=3, on_item_failure=on_fail)
    expected = [i * 10 for i in range(8)]
    expected[4] = ("failed", 4)
    assert out == expected
    assert failures == [(4, "InjectedFault")]


@pytest.mark.parametrize("spec", ["serial", "thread"])
def test_backend_raises_backend_error_without_callback(spec):
    inj = FaultInjector(mode="error", keys=("item-2",), persistent_share=1.0)
    with make_backend(spec, max_workers=2, retry=_FAST_RETRY) as backend:
        with pytest.raises(BackendError, match="attempt"):
            backend.map(_InjectedPayload(inj), list(range(5)), chunk_size=2)


# --------------------------------------------- worker death (process pool)


def test_process_backend_survives_transient_worker_death(tmp_path):
    """A worker killed by ``os._exit(1)`` mid-chunk breaks the pool; the
    backend must rebuild it and resubmit, and the durable attempt count
    means the culprit item succeeds on the retry round."""
    inj = FaultInjector(mode="crash", keys=("item-5",), fail_attempts=1,
                        state_dir=str(tmp_path / "state"))
    registry = MetricsRegistry()
    with use_registry(registry):
        with make_backend("process", max_workers=2,
                          retry=_FAST_RETRY) as backend:
            out = backend.map(_InjectedPayload(inj), list(range(8)),
                              chunk_size=2)
    assert out == [i * 10 for i in range(8)]
    assert registry.get("backend.pool_rebuilds") >= 1


def test_process_backend_quarantines_persistent_crasher(tmp_path):
    """An item that kills every worker it touches ends up isolated and
    routed to ``on_item_failure``; every other item's result is intact."""
    inj = FaultInjector(mode="crash", keys=("item-3",), persistent_share=1.0,
                        state_dir=str(tmp_path / "state"))
    failures = []

    def on_fail(item, exc):
        failures.append(item)
        return ("quarantined", item)

    retry = RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0)
    with make_backend("process", max_workers=2, retry=retry) as backend:
        out = backend.map(_InjectedPayload(inj), list(range(6)),
                          chunk_size=2, on_item_failure=on_fail)
    expected = [i * 10 for i in range(6)]
    expected[3] = ("quarantined", 3)
    assert out == expected
    assert failures == [3]


# ------------------------------------------------- executor-level quarantine


def test_executor_quarantines_exactly_the_persistent_keys():
    corpus = _corpus()
    doc_ids = [d.doc_id for d in corpus]
    inj = FaultInjector(mode="error", rate=0.3, persistent_share=0.5, seed=1)
    transient = inj.faulted_keys(doc_ids) - inj.persistent_keys(doc_ids)
    persistent = inj.persistent_keys(doc_ids)
    assert transient and persistent  # the seed exercises both paths

    faulty = run_program(
        PROGRAM, corpus, _registry(FaultyExtractor(InfoboxExtractor(), inj)),
        optimize=False,
    )
    assert {f["doc_id"] for f in faulty.failed_docs} == persistent
    assert all(f["attempts"] >= 3 for f in faulty.failed_docs)

    # rows are byte-identical to a fault-free run minus the quarantined docs
    survivors = [d for d in corpus if d.doc_id not in persistent]
    baseline = run_program(PROGRAM, survivors, _registry(InfoboxExtractor()),
                           optimize=False)
    assert faulty.rows == baseline.rows


@pytest.mark.parametrize("spec", ["serial", "thread", "process"])
def test_executor_quarantine_is_identical_across_backends(spec):
    corpus = _corpus()
    doc_ids = [d.doc_id for d in corpus]
    inj = FaultInjector(mode="error", rate=0.3, persistent_share=0.5, seed=1)
    persistent = inj.persistent_keys(doc_ids)

    registry = _registry(FaultyExtractor(InfoboxExtractor(), inj))
    with make_backend(spec, max_workers=3) as backend:
        result = run_program(PROGRAM, corpus, registry, backend=backend,
                             optimize=False)
    assert {f["doc_id"] for f in result.failed_docs} == persistent

    survivors = [d for d in corpus if d.doc_id not in persistent]
    baseline = run_program(PROGRAM, survivors, _registry(InfoboxExtractor()),
                           optimize=False)
    assert result.rows == baseline.rows


def test_executor_fail_fast_raises_instead_of_quarantining():
    corpus = _corpus()
    inj = FaultInjector(mode="error", keys=(corpus[0].doc_id,),
                        persistent_share=1.0)
    registry = _registry(FaultyExtractor(InfoboxExtractor(), inj))
    with pytest.raises(InjectedFault):
        run_program(PROGRAM, corpus, registry, optimize=False,
                    fail_fast=True)


def test_executor_counts_failed_docs_in_stats():
    corpus = _corpus()
    inj = FaultInjector(mode="error", keys=(corpus[0].doc_id,),
                        persistent_share=1.0)
    registry = MetricsRegistry()
    with use_registry(registry):
        result = run_program(
            PROGRAM, corpus,
            _registry(FaultyExtractor(InfoboxExtractor(), inj)),
            optimize=False,
        )
    assert len(result.failed_docs) == 1
    assert registry.get("executor.docs_failed") == 1
    assert registry.get("extraction.poison_docs") >= 1


# ------------------------------------------------ system-level dead letters


def _system(tmp_path, extractor, **kwargs):
    from repro.core.system import StructureManagementSystem

    system = StructureManagementSystem(
        workspace=str(tmp_path / "ws"), **kwargs
    )
    system.registry.register_extractor("infobox", extractor)
    return system


def test_system_quarantines_to_persistent_deadletter(tmp_path):
    corpus = _corpus(8)
    poison = corpus[2].doc_id
    inj = FaultInjector(mode="error", keys=(poison,), persistent_share=1.0)
    system = _system(tmp_path, FaultyExtractor(InfoboxExtractor(), inj))
    system.ingest(corpus)
    report = system.generate(PROGRAM)
    assert report.failed_docs == 1
    assert report.failed_doc_ids == [poison]
    assert system.deadletter.doc_ids() == [poison]
    system.close()
    # quarantine survives the restart
    reopened = _system(tmp_path, InfoboxExtractor())
    assert reopened.deadletter.doc_ids() == [poison]
    reopened.close()


def test_system_retry_deadletter_recovers_healed_documents(tmp_path):
    corpus = _corpus(8)
    poison = corpus[2].doc_id
    # fails attempts 1..5: exhausts the first generate()'s 3-attempt budget,
    # then heals during the retry pass (attempts 4, 5 fail; 6 succeeds)
    inj = FaultInjector(mode="error", keys=(poison,), fail_attempts=5)
    system = _system(tmp_path, FaultyExtractor(InfoboxExtractor(), inj))
    system.ingest(corpus)
    report = system.generate(PROGRAM)
    assert report.failed_doc_ids == [poison]

    retried, still_failed = system.retry_deadletter(PROGRAM)
    assert (retried, still_failed) == (1, 0)
    assert system.deadletter.doc_ids() == []
    system.close()


def test_system_retry_deadletter_keeps_still_poison_docs(tmp_path):
    corpus = _corpus(8)
    poison = corpus[1].doc_id
    inj = FaultInjector(mode="error", keys=(poison,), persistent_share=1.0)
    system = _system(tmp_path, FaultyExtractor(InfoboxExtractor(), inj))
    system.ingest(corpus)
    system.generate(PROGRAM)
    retried, still_failed = system.retry_deadletter(PROGRAM)
    assert (retried, still_failed) == (1, 1)
    assert system.deadletter.doc_ids() == [poison]
    system.close()
