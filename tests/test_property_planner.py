"""Differential property tests: planner vs naive interpreter.

The naive path (``use_planner=False``) is the oracle: for every generated
query the planner must return the *identical* row list — same rows, same
order — with and without indexes present.  Predicates are generated
well-typed over valid columns (evaluation-order differences on ill-typed
predicates are out of contract, as in any real DBMS).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.sql import execute_sql
from repro.storage.rdbms.types import Column, ColumnType, TableSchema

_NAMES = ["alpha", "beta", "gamma", "delta", "epsilon"]

rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(_NAMES),
        st.integers(min_value=-50, max_value=50),
        st.floats(min_value=-1000, max_value=1000, allow_nan=False,
                  allow_infinity=False),
    ),
    min_size=0, max_size=30,
)

dim_strategy = st.lists(
    st.tuples(st.sampled_from(_NAMES), st.integers(0, 9)),
    min_size=0, max_size=8, unique_by=lambda t: t[0],
)

predicate_strategy = st.sampled_from([
    "qty = {n}",
    "qty >= {n}",
    "qty < {n}",
    "qty > {n} AND qty <= {m}",
    "name = '{name}'",
    "name = '{name}' AND qty >= {n}",
    "name != '{name}'",
    "name LIKE '{prefix}%'",
    "qty IN ({n}, {m}, 0)",
    "name IS NOT NULL AND qty = {n}",
    "name = '{name}' OR qty = {n}",
])

tail_strategy = st.sampled_from([
    "",
    " ORDER BY qty",
    " ORDER BY qty DESC",
    " ORDER BY name LIMIT 5",
    " ORDER BY qty DESC LIMIT 3",
    " LIMIT 4",
])


def _load(rows, with_indexes):
    db = Database()
    db.create_table(TableSchema(
        "t",
        (Column("rid", ColumnType.INT, nullable=False),
         Column("name", ColumnType.TEXT),
         Column("qty", ColumnType.INT),
         Column("score", ColumnType.FLOAT)),
        primary_key="rid",
    ))
    def insert_all(txn):
        for i, (name, qty, score) in enumerate(rows):
            txn.insert("t", {"rid": i, "name": name, "qty": qty,
                             "score": score})
    db.run(insert_all)
    if with_indexes:
        db.create_index("t", "name", "hash")
        db.create_index("t", "qty", "sorted")
    return db


def _load_dims(db, dims, with_indexes):
    db.create_table(TableSchema(
        "d",
        (Column("name", ColumnType.TEXT, nullable=False),
         Column("grp", ColumnType.INT)),
        primary_key="name",
    ))
    def insert_all(txn):
        for name, grp in dims:
            txn.insert("d", {"name": name, "grp": grp})
    db.run(insert_all)
    if with_indexes:
        db.create_index("d", "name", "hash")
    return db


@given(
    rows=rows_strategy,
    template=predicate_strategy,
    tail=tail_strategy,
    n=st.integers(-50, 50),
    m=st.integers(-50, 50),
    name=st.sampled_from(_NAMES),
    prefix=st.sampled_from(["al", "b", "gam", "z"]),
    with_indexes=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_single_table_planner_matches_naive(rows, template, tail, n, m,
                                            name, prefix, with_indexes):
    db = _load(rows, with_indexes)
    where = template.format(n=n, m=m, name=name, prefix=prefix)
    sql = f"SELECT * FROM t WHERE {where}{tail}"
    assert execute_sql(db, sql) == execute_sql(db, sql, use_planner=False), sql


@given(
    rows=rows_strategy,
    tail=tail_strategy,
    with_indexes=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_projection_and_aggregates_match_naive(rows, tail, with_indexes):
    db = _load(rows, with_indexes)
    for sql in [
        f"SELECT name, qty FROM t{tail}",
        "SELECT COUNT(*) AS n, MIN(qty) AS lo, MAX(qty) AS hi FROM t",
        "SELECT name, COUNT(*) AS n, SUM(qty) AS total FROM t GROUP BY name",
    ]:
        assert execute_sql(db, sql) == \
            execute_sql(db, sql, use_planner=False), sql


@given(
    rows=rows_strategy,
    dims=dim_strategy,
    template=st.sampled_from([
        "",
        " WHERE qty >= {n}",
        " WHERE grp = {g}",
        " WHERE grp = {g} AND qty < {n}",
        " WHERE t.name = '{name}'",
    ]),
    tail=st.sampled_from(["", " ORDER BY qty LIMIT 5", " ORDER BY rid DESC"]),
    n=st.integers(-50, 50),
    g=st.integers(0, 9),
    name=st.sampled_from(_NAMES),
    with_indexes=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_join_planner_matches_naive(rows, dims, template, tail, n, g, name,
                                    with_indexes):
    db = _load(rows, with_indexes)
    _load_dims(db, dims, with_indexes)
    where = template.format(n=n, g=g, name=name)
    sql = (f"SELECT rid, t.name, grp FROM t "
           f"JOIN d ON t.name = d.name{where}{tail}")
    assert execute_sql(db, sql) == execute_sql(db, sql, use_planner=False), sql


@given(
    rows=rows_strategy,
    dims=dim_strategy,
    with_indexes=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_join_aggregate_matches_naive(rows, dims, with_indexes):
    db = _load(rows, with_indexes)
    _load_dims(db, dims, with_indexes)
    sql = ("SELECT grp, COUNT(*) AS n FROM t "
           "JOIN d ON t.name = d.name GROUP BY grp ORDER BY grp")
    assert execute_sql(db, sql) == execute_sql(db, sql, use_planner=False)


@given(
    rows=rows_strategy,
    template=st.sampled_from([
        "UPDATE t SET score = 0.0 WHERE name = '{name}'",
        "UPDATE t SET qty = 99 WHERE qty < {n}",
        "DELETE FROM t WHERE name = '{name}' AND qty >= {n}",
        "DELETE FROM t WHERE qty IN ({n}, 0)",
    ]),
    n=st.integers(-50, 50),
    name=st.sampled_from(_NAMES),
    with_indexes=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_dml_planner_matches_naive(rows, template, n, name, with_indexes):
    sql = template.format(n=n, name=name)
    planner_db = _load(rows, with_indexes)
    naive_db = _load(rows, False)
    assert execute_sql(planner_db, sql) == \
        execute_sql(naive_db, sql, use_planner=False)
    final = "SELECT * FROM t ORDER BY rid"
    assert execute_sql(planner_db, final) == \
        execute_sql(naive_db, final, use_planner=False)
