"""Tests for heap tables."""

import pytest

from repro.storage.rdbms.table import HeapTable
from repro.storage.rdbms.types import Column, ColumnType, SchemaError, TableSchema


def _table(pk="id"):
    return HeapTable(
        TableSchema(
            "t",
            (Column("id", ColumnType.INT, nullable=False),
             Column("name", ColumnType.TEXT)),
            primary_key=pk,
        )
    )


def test_insert_and_get():
    table = _table()
    row = table.insert({"id": 1, "name": "a"})
    assert table.get(row.rid).values == {"id": 1, "name": "a"}
    assert len(table) == 1


def test_insert_duplicate_pk_rejected():
    table = _table()
    table.insert({"id": 1, "name": "a"})
    with pytest.raises(SchemaError):
        table.insert({"id": 1, "name": "b"})


def test_insert_null_pk_rejected():
    table = HeapTable(
        TableSchema("t", (Column("id", ColumnType.INT),), primary_key="id")
    )
    with pytest.raises(SchemaError):
        table.insert({"id": None})


def test_get_by_pk():
    table = _table()
    table.insert({"id": 7, "name": "x"})
    assert table.get_by_pk(7).values["name"] == "x"
    assert table.get_by_pk(99) is None


def test_update_returns_old_and_new():
    table = _table()
    row = table.insert({"id": 1, "name": "a"})
    old, new = table.update(row.rid, {"name": "b"})
    assert old.values["name"] == "a"
    assert new.values["name"] == "b"


def test_update_pk_change_maintains_index():
    table = _table()
    row = table.insert({"id": 1, "name": "a"})
    table.update(row.rid, {"id": 2})
    assert table.get_by_pk(1) is None
    assert table.get_by_pk(2) is not None


def test_update_pk_conflict_rejected():
    table = _table()
    table.insert({"id": 1, "name": "a"})
    row = table.insert({"id": 2, "name": "b"})
    with pytest.raises(SchemaError):
        table.update(row.rid, {"id": 1})


def test_update_unknown_rid():
    with pytest.raises(KeyError):
        _table().update(42, {"name": "x"})


def test_delete_removes_pk_entry():
    table = _table()
    row = table.insert({"id": 1, "name": "a"})
    table.delete(row.rid)
    assert len(table) == 0
    assert table.get_by_pk(1) is None
    with pytest.raises(KeyError):
        table.delete(row.rid)


def test_forced_rid_for_recovery_replay():
    table = _table()
    table.insert({"id": 1, "name": "a"}, rid=10)
    assert table.rids() == [10]
    next_row = table.insert({"id": 2, "name": "b"})
    assert next_row.rid == 11
    with pytest.raises(SchemaError):
        table.insert({"id": 3, "name": "c"}, rid=10)


def test_scan_in_rid_order():
    table = _table()
    for i in range(3):
        table.insert({"id": i, "name": str(i)})
    assert [r.values["id"] for r in table.scan()] == [0, 1, 2]


def test_scan_where():
    table = _table()
    for i in range(5):
        table.insert({"id": i, "name": str(i)})
    hits = list(table.scan_where(lambda v: v["id"] >= 3))
    assert [r.values["id"] for r in hits] == [3, 4]


def test_rows_are_copies():
    table = _table()
    row = table.insert({"id": 1, "name": "a"})
    row.values["name"] = "mutated"
    assert table.get(row.rid).values["name"] == "a"


def test_replace_schema_migrates_rows():
    table = _table()
    table.insert({"id": 1, "name": "David Smith"})
    new_schema = TableSchema(
        "t",
        (Column("id", ColumnType.INT, nullable=False),
         Column("last", ColumnType.TEXT)),
        primary_key="id",
    )
    table.replace_schema(
        new_schema,
        lambda row: {"id": row["id"], "last": row["name"].split()[-1]},
    )
    assert table.get_by_pk(1).values == {"id": 1, "last": "Smith"}
