"""Tests for the commit-invalidated query result cache."""

import pytest

from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.qcache import QueryResultCache
from repro.storage.rdbms.sql import execute_sql
from repro.telemetry import metrics


@pytest.fixture
def db():
    database = Database()
    execute_sql(
        database,
        "CREATE TABLE city (name TEXT PRIMARY KEY, state TEXT, pop INT)",
    )
    execute_sql(
        database,
        "INSERT INTO city (name, state, pop) VALUES "
        "('madison', 'wi', 233209), ('milwaukee', 'wi', 594833), "
        "('austin', 'tx', 950000)",
    )
    return database


@pytest.fixture
def cache(db):
    return QueryResultCache(db, capacity=4)


def _hits():
    return metrics.get_registry().get("planner.cache.hits")


def test_repeat_select_hits_cache(db, cache):
    sql = "SELECT * FROM city WHERE state = 'wi'"
    first = cache.execute(sql)
    before = _hits()
    second = cache.execute(sql)
    assert second == first
    assert _hits() == before + 1
    assert len(cache) == 1


def test_normalized_variants_share_an_entry(db, cache):
    first = cache.execute("SELECT * FROM city WHERE state = 'wi'")
    before = _hits()
    second = cache.execute("select  *  from city\nwhere state='wi'")
    assert second == first
    assert _hits() == before + 1
    assert len(cache) == 1


def test_commit_invalidates_affected_table(db, cache):
    sql = "SELECT COUNT(*) AS n FROM city"
    assert cache.execute(sql) == [{"n": 3}]
    execute_sql(db, "INSERT INTO city (name, state, pop) "
                    "VALUES ('portland', 'or', 650000)")
    assert len(cache) == 0  # eagerly evicted by the commit listener
    assert cache.execute(sql) == [{"n": 4}]


def test_update_and_delete_invalidate(db, cache):
    sql = "SELECT pop FROM city WHERE name = 'austin'"
    assert cache.execute(sql) == [{"pop": 950000}]
    cache.execute("UPDATE city SET pop = 1 WHERE name = 'austin'")
    assert cache.execute(sql) == [{"pop": 1}]
    cache.execute("DELETE FROM city WHERE name = 'austin'")
    assert cache.execute(sql) == []


def test_unrelated_table_commit_keeps_entries(db, cache):
    sql = "SELECT COUNT(*) AS n FROM city"
    cache.execute(sql)
    execute_sql(db, "CREATE TABLE other (x INT PRIMARY KEY)")
    execute_sql(db, "INSERT INTO other (x) VALUES (1)")
    assert len(cache) == 1
    before = _hits()
    cache.execute(sql)
    assert _hits() == before + 1


def test_ddl_invalidates(db, cache):
    execute_sql(db, "CREATE TABLE tmp (x INT PRIMARY KEY)")
    cache.execute("SELECT * FROM tmp")
    assert len(cache) == 1
    db.drop_table("tmp")  # schema changes notify the same listener stream
    assert len(cache) == 0


def test_join_entry_invalidated_by_either_table(db, cache):
    execute_sql(db, "CREATE TABLE st (state TEXT PRIMARY KEY, label TEXT)")
    execute_sql(db, "INSERT INTO st (state, label) VALUES ('wi', 'Wisconsin')")
    sql = ("SELECT city.name, st.label FROM city "
           "JOIN st ON city.state = st.state")
    assert len(cache.execute(sql)) == 2
    execute_sql(db, "UPDATE st SET label = 'WI' WHERE state = 'wi'")
    assert len(cache) == 0
    assert cache.execute(sql)[0]["st.label"] == "WI"


def test_dml_passes_through_uncached(db, cache):
    rows = cache.execute("INSERT INTO city (name, state, pop) "
                         "VALUES ('houston', 'tx', 2300000)")
    assert rows == [{"inserted": 1}]
    assert len(cache) == 0


def test_returned_rows_are_defensive_copies(db, cache):
    sql = "SELECT * FROM city WHERE name = 'madison'"
    first = cache.execute(sql)
    first[0]["pop"] = -1
    second = cache.execute(sql)
    assert second[0]["pop"] == 233209


def test_lru_eviction_at_capacity(db, cache):
    for i in range(6):  # capacity is 4
        cache.execute(f"SELECT * FROM city LIMIT {i + 1}")
    assert len(cache) == 4
    # The oldest entry (LIMIT 1) was evicted: re-running it misses.
    registry = metrics.get_registry()
    misses_before = registry.get("planner.cache.misses")
    cache.execute("SELECT * FROM city LIMIT 1")
    assert registry.get("planner.cache.misses") == misses_before + 1


def test_clear_and_stats(db, cache):
    cache.execute("SELECT * FROM city")
    cache.clear()
    assert len(cache) == 0
    stats = cache.stats()
    assert {"hits", "misses", "invalidations"} <= set(stats)


def test_system_query_path_uses_cache():
    from repro.core.system import StructureManagementSystem

    system = StructureManagementSystem()
    execute_sql(system.db, "CREATE TABLE t (k INT PRIMARY KEY)")
    execute_sql(system.db, "INSERT INTO t (k) VALUES (1), (2)")
    first = system.query("SELECT * FROM t")
    before = _hits()
    second = system.query("SELECT * FROM t")
    assert second == first
    assert _hits() == before + 1


def test_session_shares_system_cache():
    from repro.core.system import StructureManagementSystem

    system = StructureManagementSystem()
    execute_sql(system.db, "CREATE TABLE t (k INT PRIMARY KEY)")
    execute_sql(system.db, "INSERT INTO t (k) VALUES (1)")
    session = system.session("alice")
    assert session.cache is system.query_cache
    session.structured("SELECT * FROM t")
    before = _hits()
    session.structured("SELECT * FROM t")
    assert _hits() == before + 1
