"""Tests for exploration sessions and user accounts."""

import pytest

from repro.docmodel.document import Document
from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.sql import execute_sql
from repro.userlayer.accounts import AuthenticationError, UserManager
from repro.userlayer.search import KeywordSearchEngine
from repro.userlayer.session import ExplorationSession
from repro.userlayer.translate import QueryTranslator


@pytest.fixture
def session():
    db = Database()
    execute_sql(db, "CREATE TABLE facts (entity TEXT, attribute TEXT, "
                    "value_num FLOAT)")
    execute_sql(db, "INSERT INTO facts (entity, attribute, value_num) VALUES "
                    "('Madison', 'sep_temp', 70.0), "
                    "('Madison', 'population', 233209.0), "
                    "('Chicago', 'sep_temp', 65.0)")
    search = KeywordSearchEngine()
    search.index_corpus([
        Document("d1", "Madison temperature page"),
        Document("d2", "Chicago transit page"),
    ])
    translator = QueryTranslator(
        table="facts", entity_column="entity",
        attributes=["sep_temp", "population"],
        entities=["Madison", "Chicago"],
        attribute_column="attribute", value_column="value_num",
    )
    return ExplorationSession(search=search, translator=translator, db=db,
                              user="tester")


def test_keyword_mode(session):
    results = session.keyword("madison temperature")
    assert results[0].doc_id == "d1"
    assert session.history[-1].mode == "keyword"


def test_suggest_then_choose(session):
    candidates = session.suggest("average sep_temp Madison")
    assert candidates
    rows = session.choose(0)
    assert rows[0]["result"] == 70.0
    modes = [s.mode for s in session.history]
    assert modes == ["suggest", "structured"]


def test_choose_without_suggest_raises(session):
    with pytest.raises(RuntimeError):
        session.choose(0)


def test_structured_and_refine(session):
    rows = session.structured("SELECT entity, value_num FROM facts "
                              "WHERE attribute = 'sep_temp'")
    assert len(rows) == 2
    refined = session.refine("value_num >= 68")
    assert len(refined) == 1 and refined[0]["entity"] == "Madison"


def test_refine_without_query_raises(session):
    with pytest.raises(RuntimeError):
        session.refine("x = 1")


def test_refine_preserves_trailing_clauses(session):
    session.structured("SELECT entity, value_num FROM facts "
                       "WHERE attribute = 'sep_temp' ORDER BY value_num LIMIT 5")
    refined = session.refine("value_num < 68")
    assert [r["entity"] for r in refined] == ["Chicago"]


def test_browse_mode(session):
    rows = session.browse("facts", limit=2)
    assert len(rows) == 2
    assert session.history[-1].mode == "browse"


def test_transcript_renders_history(session):
    session.keyword("madison")
    session.structured("SELECT COUNT(*) AS n FROM facts")
    text = session.transcript()
    assert "tester" in text
    assert "[keyword]" in text and "[structured]" in text


# ------------------------------------------------------------------ accounts


def test_register_login_whoami():
    users = UserManager()
    users.register("alice", "s3cret", role="sophisticated")
    token = users.login("alice", "s3cret")
    assert users.whoami(token).username == "alice"
    users.logout(token)
    with pytest.raises(AuthenticationError):
        users.whoami(token)


def test_bad_credentials():
    users = UserManager()
    users.register("bob", "pw")
    with pytest.raises(AuthenticationError):
        users.login("bob", "wrong")
    with pytest.raises(AuthenticationError):
        users.login("ghost", "pw")


def test_duplicate_username_and_bad_role():
    users = UserManager()
    users.register("carol", "pw")
    with pytest.raises(ValueError):
        users.register("carol", "pw2")
    with pytest.raises(ValueError):
        users.register("dave", "pw", role="superuser")


def test_role_gating():
    users = UserManager()
    users.register("ordinary_joe", "pw", role="ordinary")
    token = users.login("ordinary_joe", "pw")
    with pytest.raises(AuthenticationError):
        users.require_role(token, "admin", "sophisticated")
    account = users.require_role(token, "ordinary")
    assert account.username == "ordinary_joe"


def test_password_hashes_are_salted():
    users = UserManager()
    a = users.register("u1", "same-password")
    b = users.register("u2", "same-password")
    assert a.password_hash != b.password_hash


def test_reputation_integration():
    users = UserManager()
    users.register("worker", "pw")
    assert users.user_reputation("worker") == 0.5
    users.reputation.record_gold("worker", True)
    users.reputation.record_gold("worker", True)
    assert users.user_reputation("worker") > 0.5
    assert users.user_points("worker") == 2
