"""Tests for logical plans and the optimizer."""

import pytest

from repro.docmodel.document import Document
from repro.extraction.dictionary import DictionaryExtractor
from repro.extraction.normalize import normalize_temperature
from repro.extraction.rules import ContextRule, RuleCascadeExtractor
from repro.lang.ast import DocFilterOp, ExtractOp, FilterOp
from repro.lang.optimizer import Optimizer, doc_passes_keyword_groups
from repro.lang.parser import parse_program
from repro.lang.plan import LogicalPlan, PlanError
from repro.lang.registry import OperatorRegistry


def _plan(source):
    ops, output = parse_program(source)
    return LogicalPlan.from_ops(ops, output)


def _registry():
    registry = OperatorRegistry()
    registry.register_extractor(
        "temp_rules",
        RuleCascadeExtractor(
            rules=[ContextRule("sep_temp", ("September", "temperature"),
                               r"(\d+)\s*degrees",
                               normalizer=normalize_temperature)],
            cost_per_char=5.0,
        ),
    )
    registry.register_extractor(
        "cities", DictionaryExtractor(attribute="city", phrases=["Madison"])
    )
    return registry


def _corpus(relevant=5, irrelevant=45):
    docs = []
    for i in range(relevant):
        docs.append(Document(
            f"rel{i}",
            f"The September temperature in Madison is {60 + i} degrees.",
        ))
    for i in range(irrelevant):
        docs.append(Document(f"irr{i}", "Totally unrelated page content. " * 5))
    return docs


def test_plan_validates_undefined_input():
    with pytest.raises(PlanError):
        _plan('x = extract(ghost, "e")\noutput x')


def test_plan_validates_stream_types():
    # extract over a tuple stream is a type error
    with pytest.raises(PlanError):
        _plan('a = docs()\nb = extract(a, "e")\nc = extract(b, "e")\noutput c')
    # filter over a document stream is a type error
    with pytest.raises(PlanError):
        _plan("a = docs()\nb = filter(a, x = 1)\noutput b")


def test_plan_topological_only_needed_ops():
    plan = _plan(
        'a = docs()\nb = extract(a, "e")\nunused = extract(a, "e2")\noutput b'
    )
    names = [op.name for op in plan.topological()]
    assert "unused" not in names
    assert names.index("a") < names.index("b")


def test_plan_render_lists_ops():
    plan = _plan('a = docs()\nb = extract(a, "e")\noutput b')
    rendering = plan.render()
    assert "extract(a, 'e')" in rendering
    assert rendering.endswith("output b")


def test_insert_before_rewires():
    plan = _plan('a = docs()\nb = extract(a, "e")\noutput b')
    prefilter = DocFilterOp(name="pf", inputs=["a"], keyword_groups=[["x"]])
    plan.insert_before("b", prefilter)
    assert plan.ops["b"].inputs == ["pf"]
    assert plan.is_doc_stream("pf")


def test_doc_passes_keyword_groups():
    doc = Document("d", "The September temperature is mild")
    assert doc_passes_keyword_groups(doc, [["september", "temperature"]])
    assert not doc_passes_keyword_groups(doc, [["january", "temperature"]])
    assert doc_passes_keyword_groups(
        doc, [["january"], ["september"]]
    )  # OR across groups


def test_optimizer_inserts_trigger_prefilter():
    plan = _plan('a = docs()\nb = extract(a, "temp_rules")\noutput b')
    optimized = Optimizer(_registry()).optimize(plan, _corpus())
    docfilters = [op for op in optimized.ops.values()
                  if isinstance(op, DocFilterOp)]
    assert len(docfilters) == 1
    assert docfilters[0].keyword_groups == [["September", "temperature"]]
    extract = next(op for op in optimized.ops.values()
                   if isinstance(op, ExtractOp))
    assert extract.inputs == [docfilters[0].name]


def test_optimizer_skips_prefilter_when_unselective():
    # every document matches the trigger: pre-filter would not pay off
    docs = [Document(f"d{i}", "September temperature everywhere")
            for i in range(30)]
    plan = _plan('a = docs()\nb = extract(a, "temp_rules")\noutput b')
    optimized = Optimizer(_registry()).optimize(plan, docs)
    assert not any(isinstance(op, DocFilterOp)
                   for op in optimized.ops.values())


def test_optimizer_no_prefilter_for_unknown_terms():
    # dictionary extractor exposes no prefilter terms
    plan = _plan('a = docs()\nb = extract(a, "cities")\noutput b')
    optimized = Optimizer(_registry()).optimize(plan, _corpus())
    assert not any(isinstance(op, DocFilterOp)
                   for op in optimized.ops.values())


def test_optimizer_fuses_adjacent_filters():
    plan = _plan(
        'a = docs()\nb = extract(a, "cities")\n'
        "c = filter(b, confidence >= 0.5)\nd = filter(c, value != 0)\noutput d"
    )
    optimized = Optimizer(_registry()).optimize(plan, [])
    filters = [op for op in optimized.ops.values() if isinstance(op, FilterOp)]
    assert len(filters) == 1


def test_optimizer_does_not_fuse_shared_filter():
    plan = _plan(
        'a = docs()\nb = extract(a, "cities")\n'
        "c = filter(b, confidence >= 0.5)\n"
        "d = filter(c, value != 0)\n"
        "e = limit(c, 5)\n"  # c has two consumers
        "output d"
    )
    optimized = Optimizer(_registry()).optimize(plan, [])
    assert "c" in optimized.ops


def test_optimizer_original_plan_untouched():
    plan = _plan('a = docs()\nb = extract(a, "temp_rules")\noutput b')
    Optimizer(_registry()).optimize(plan, _corpus())
    assert not any(isinstance(op, DocFilterOp) for op in plan.ops.values())


def test_cost_estimate_prefers_optimized():
    registry = _registry()
    corpus = _corpus()
    naive = _plan('a = docs()\nb = extract(a, "temp_rules")\noutput b')
    optimizer = Optimizer(registry)
    optimized = optimizer.optimize(naive, corpus)
    cost_naive = optimizer.estimate_cost(naive, corpus)
    cost_optimized = optimizer.estimate_cost(optimized, corpus)
    assert cost_optimized.total < cost_naive.total
    assert cost_naive.extract_cost > 0
