"""Property-based tests (hypothesis) for core data structures and invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docmodel.document import Document
from repro.docmodel.tokenize import tokenize
from repro.extraction.normalize import normalize_number
from repro.integration.similarity import (
    jaccard,
    jaro_winkler,
    levenshtein,
    name_similarity,
)
from repro.lang.ast import eval_expr, render_expr
from repro.lang.parser import parse_expression
from repro.storage.snapshots import apply_delta, compute_delta
from repro.uncertainty.probabilistic import (
    ProbabilisticValue,
    combine_independent_and,
    combine_noisy_or,
    possible_worlds,
)
from repro.userlayer.index import InvertedIndex

# ----------------------------------------------------------------- strategies

lines = st.lists(
    st.text(alphabet=string.ascii_letters + " ", min_size=0, max_size=20).map(
        lambda s: s + "\n"
    ),
    max_size=30,
)
short_text = st.text(alphabet=string.ascii_letters + string.digits + " .',-",
                     max_size=60)
confidences = st.floats(min_value=0.0, max_value=1.0)


# --------------------------------------------------------------- diff store


@given(old=lines, new=lines)
@settings(max_examples=150)
def test_delta_roundtrip_property(old, new):
    assert apply_delta(old, compute_delta(old, new)) == new


@given(version=lines)
def test_delta_identity_is_compact(version):
    delta = compute_delta(version, version)
    # identity delta never carries inserted lines
    assert all(op[0] != "+" for op in delta)
    assert apply_delta(version, delta) == version


# --------------------------------------------------------------- similarity


@given(a=short_text, b=short_text)
@settings(max_examples=150)
def test_levenshtein_metric_properties(a, b):
    d = levenshtein(a, b)
    assert d == levenshtein(b, a)
    assert d >= abs(len(a) - len(b))
    assert d <= max(len(a), len(b))
    assert (d == 0) == (a == b)


@given(a=short_text, b=short_text, c=short_text)
@settings(max_examples=60)
def test_levenshtein_triangle_inequality(a, b, c):
    assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


@given(a=short_text, b=short_text)
def test_similarity_measures_bounded(a, b):
    for measure in (jaccard, jaro_winkler, name_similarity):
        score = measure(a, b)
        assert 0.0 <= score <= 1.0 + 1e-9


@given(a=short_text)
def test_similarity_reflexive(a):
    assert jaccard(a, a) == 1.0
    if a:
        assert jaro_winkler(a, a) == 1.0


# ------------------------------------------------------------- tokenization


@given(text=short_text)
def test_tokens_cover_source_text(text):
    doc = Document("d", text)
    for token in tokenize(doc):
        assert doc.text[token.span.start:token.span.end] == token.text
        assert token.text.strip() == token.text


@given(text=short_text)
def test_tokens_are_ordered_and_disjoint(text):
    spans = [t.span for t in tokenize(Document("d", text))]
    for earlier, later in zip(spans, spans[1:]):
        assert earlier.end <= later.start


# ------------------------------------------------------------- normalizers


@given(value=st.floats(min_value=-1e6, max_value=1e6,
                       allow_nan=False, allow_infinity=False))
def test_normalize_number_roundtrips_floats(value):
    rendered = f"{value:.3f}"
    parsed = normalize_number(rendered)
    assert parsed is not None
    assert abs(parsed - float(rendered)) < 1e-9


# -------------------------------------------------------- confidence algebra


@given(cs=st.lists(confidences, max_size=6))
def test_and_le_min_and_or_ge_max(cs):
    conj = combine_independent_and(*cs)
    disj = combine_noisy_or(*cs)
    assert 0.0 <= conj <= 1.0
    assert 0.0 <= disj <= 1.0 + 1e-12
    if cs:
        assert conj <= min(cs) + 1e-12
        assert disj >= max(cs) - 1e-12


@given(
    pairs=st.lists(
        st.tuples(st.integers(min_value=0, max_value=5),
                  st.floats(min_value=0.01, max_value=1.0)),
        min_size=1, max_size=4, unique_by=lambda t: t[0],
    )
)
def test_from_confidences_never_overcommits(pairs):
    dist = ProbabilisticValue.from_confidences(pairs)
    total = sum(p for _, p in dist.alternatives)
    assert total <= 1.0 + 1e-9
    assert dist.residual() >= -1e-9


@given(
    probs=st.lists(st.floats(min_value=0.05, max_value=0.95),
                   min_size=1, max_size=3)
)
def test_possible_worlds_sum_to_one(probs):
    facts = [
        (f"f{i}", ProbabilisticValue(((1, min(p, 0.95)),)))
        for i, p in enumerate(probs)
    ]
    total = sum(p for _, p in possible_worlds(facts))
    assert abs(total - 1.0) < 1e-9


# ------------------------------------------------------------- expressions


@given(
    threshold=st.floats(min_value=0, max_value=1, allow_nan=False),
    value=st.floats(min_value=0, max_value=1, allow_nan=False),
)
def test_expression_matches_python_semantics(threshold, value):
    expr = parse_expression(f"confidence >= {threshold}")
    assert eval_expr(expr, {"confidence": value}) == (value >= threshold)


@given(
    a=st.integers(min_value=0, max_value=9),
    b=st.integers(min_value=0, max_value=9),
    row_a=st.integers(min_value=0, max_value=9),
    row_b=st.integers(min_value=0, max_value=9),
)
def test_render_parse_roundtrip_property(a, b, row_a, row_b):
    source = f"x = {a} and not y = {b}"
    expr = parse_expression(source)
    again = parse_expression(render_expr(expr))
    row = {"x": row_a, "y": row_b}
    assert eval_expr(expr, row) == eval_expr(again, row)


# ------------------------------------------------------------ search index


@given(
    docs=st.dictionaries(
        st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6),
        st.text(alphabet=string.ascii_lowercase + " ", min_size=1,
                max_size=60),
        min_size=1, max_size=10,
    )
)
@settings(max_examples=60)
def test_index_search_returns_only_term_holders(docs):
    index = InvertedIndex()
    for doc_id, text in docs.items():
        index.add(doc_id, text)
    for doc_id, text in docs.items():
        words = text.split()
        if not words:
            continue
        query = words[0]
        hits = {h.doc_id for h in index.search(query, k=100)}
        holders = {d for d, t in docs.items() if query in t.split()}
        assert hits == holders


@given(
    docs=st.lists(
        st.text(alphabet=string.ascii_lowercase + " ", min_size=1,
                max_size=40),
        min_size=1, max_size=8,
    )
)
@settings(max_examples=50)
def test_index_scores_positive_and_sorted(docs):
    index = InvertedIndex()
    for i, text in enumerate(docs):
        index.add(f"d{i}", text)
    words = [w for text in docs for w in text.split()]
    if not words:
        return
    hits = index.search(words[0], k=50)
    scores = [h.score for h in hits]
    assert all(s > 0 for s in scores)
    assert scores == sorted(scores, reverse=True)
