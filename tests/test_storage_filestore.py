"""Tests for the append-only record file store."""

import pytest

from repro.storage.filestore import RecordFileStore


def test_append_assigns_increasing_ids(tmp_path):
    store = RecordFileStore(str(tmp_path))
    ids = [store.append({"v": i}) for i in range(5)]
    assert ids == [0, 1, 2, 3, 4]


def test_scan_returns_in_order(tmp_path):
    store = RecordFileStore(str(tmp_path))
    store.append_many([{"v": i} for i in range(4)])
    assert [r.payload["v"] for r in store.scan()] == [0, 1, 2, 3]


def test_delete_tombstones(tmp_path):
    store = RecordFileStore(str(tmp_path))
    ids = store.append_many([{"v": i} for i in range(3)])
    store.delete(ids[1])
    assert [r.payload["v"] for r in store.scan()] == [0, 2]
    assert store.count() == 2


def test_reserved_key_rejected(tmp_path):
    store = RecordFileStore(str(tmp_path))
    with pytest.raises(ValueError):
        store.append({"__deleted__": True})


def test_segment_rotation(tmp_path):
    store = RecordFileStore(str(tmp_path), segment_max_records=3)
    store.append_many([{"v": i} for i in range(10)])
    assert store.segment_count() == 4
    assert store.count() == 10


def test_compact_drops_tombstones_and_shrinks(tmp_path):
    store = RecordFileStore(str(tmp_path), segment_max_records=5)
    ids = store.append_many([{"v": i} for i in range(20)])
    for rid in ids[:15]:
        store.delete(rid)
    before = store.total_bytes()
    live = store.compact()
    assert live == 5
    assert store.total_bytes() < before
    assert [r.payload["v"] for r in store.scan()] == [15, 16, 17, 18, 19]


def test_reopen_recovers_next_id(tmp_path):
    store = RecordFileStore(str(tmp_path))
    store.append_many([{"v": 1}, {"v": 2}])
    reopened = RecordFileStore(str(tmp_path))
    new_id = reopened.append({"v": 3})
    assert new_id == 2
    assert reopened.count() == 3


def test_scan_where(tmp_path):
    store = RecordFileStore(str(tmp_path))
    store.append_many([{"v": i} for i in range(10)])
    evens = list(store.scan_where(lambda p: p["v"] % 2 == 0))
    assert [r.payload["v"] for r in evens] == [0, 2, 4, 6, 8]


def test_invalid_segment_size(tmp_path):
    with pytest.raises(ValueError):
        RecordFileStore(str(tmp_path), segment_max_records=0)


def test_ids_continue_after_compact(tmp_path):
    store = RecordFileStore(str(tmp_path))
    ids = store.append_many([{"v": i} for i in range(3)])
    store.delete(ids[0])
    store.compact()
    assert store.append({"v": 99}) > ids[-1]
