"""Concurrency stress tests: invariants under many racing transactions."""

import random
import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.sql import execute_sql
from repro.storage.rdbms.types import Column, ColumnType, TableSchema


def _bank(accounts=8, balance=100):
    db = Database()
    db.create_table(TableSchema(
        "accounts",
        (Column("id", ColumnType.INT, nullable=False),
         Column("balance", ColumnType.INT)),
        primary_key="id",
    ))
    def seed(txn):
        for i in range(accounts):
            txn.insert("accounts", {"id": i, "balance": balance})
    db.run(seed)
    return db


def _total(db):
    return sum(r.values["balance"] for r in db.run(lambda t: t.scan("accounts")))


def test_random_transfers_conserve_total():
    """The classic bank-transfer invariant under 2PL with deadlock retry."""
    db = _bank()
    initial_total = _total(db)
    n_threads, n_transfers = 4, 30

    def worker(seed):
        rng = random.Random(seed)
        for _ in range(n_transfers):
            a, b = rng.sample(range(8), 2)
            amount = rng.randrange(1, 10)

            def transfer(txn, a=a, b=b, amount=amount):
                # lock in a fixed order to keep deadlocks rare (retries
                # handle the rest)
                first, second = sorted((a, b))
                row_first = txn.get_by_pk("accounts", first)
                row_second = txn.get_by_pk("accounts", second)
                rows = {first: row_first, second: row_second}
                txn.update("accounts", rows[a].rid,
                           {"balance": rows[a].values["balance"] - amount})
                txn.update("accounts", rows[b].rid,
                           {"balance": rows[b].values["balance"] + amount})
            db.run(transfer)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert _total(db) == initial_total


def test_readers_see_consistent_snapshots_under_writers():
    """A scan inside one transaction never observes a half-applied
    transfer (total is invariant in every read)."""
    db = _bank(accounts=4, balance=50)
    expected_total = 200
    stop = threading.Event()
    violations = []

    def writer():
        rng = random.Random(7)
        while not stop.is_set():
            a, b = rng.sample(range(4), 2)

            def transfer(txn, a=a, b=b):
                ra = txn.get_by_pk("accounts", a)
                rb = txn.get_by_pk("accounts", b)
                txn.update("accounts", ra.rid,
                           {"balance": ra.values["balance"] - 1})
                txn.update("accounts", rb.rid,
                           {"balance": rb.values["balance"] + 1})
            db.run(transfer)

    def reader():
        for _ in range(40):
            rows = db.run(lambda t: t.scan("accounts"))
            total = sum(r.values["balance"] for r in rows)
            if total != expected_total:
                violations.append(total)

    writer_thread = threading.Thread(target=writer)
    reader_thread = threading.Thread(target=reader)
    writer_thread.start()
    reader_thread.start()
    reader_thread.join()
    stop.set()
    writer_thread.join()
    assert violations == []


def test_many_concurrent_inserters_unique_rids():
    db = Database()
    db.create_table(TableSchema(
        "t", (Column("tid", ColumnType.INT), Column("seq", ColumnType.INT)),
    ))
    n_threads, per_thread = 6, 25

    def inserter(tid):
        for seq in range(per_thread):
            db.run(lambda t, tid=tid, seq=seq:
                   t.insert("t", {"tid": tid, "seq": seq}))

    threads = [threading.Thread(target=inserter, args=(i,))
               for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    rows = db.run(lambda t: t.scan("t"))
    assert len(rows) == n_threads * per_thread
    rids = [r.rid for r in rows]
    assert len(set(rids)) == len(rids)
    # every (tid, seq) pair arrived exactly once
    pairs = {(r.values["tid"], r.values["seq"]) for r in rows}
    assert len(pairs) == n_threads * per_thread


# ---------------------------------------------------------- MVCC snapshots


def test_mvcc_readers_consistent_under_churn():
    """Snapshot readers always see a committed total while writers
    transfer and the table is concurrently compacted and resharded.

    Readers go through the lock-free snapshot path (both the raw
    ``begin_snapshot`` API and the auto-transaction SQL route), so any
    torn read here is an MVCC bug, not lock-starvation flakiness.
    """
    db = _bank(accounts=8, balance=100)
    expected = 800
    stop = threading.Event()
    violations = []
    errors = []

    def writer():
        rng = random.Random(13)
        while not stop.is_set():
            a, b = rng.sample(range(8), 2)

            def transfer(txn, a=a, b=b):
                ra = txn.get_by_pk("accounts", a)
                rb = txn.get_by_pk("accounts", b)
                txn.update("accounts", ra.rid,
                           {"balance": ra.values["balance"] - 1})
                txn.update("accounts", rb.rid,
                           {"balance": rb.values["balance"] + 1})

            db.run(transfer)

    def churner():
        layouts = [("id", 2), ("id", 4), (None, 1)]
        i = 0
        while not stop.is_set():
            try:
                db.compact("accounts")
                key, count = layouts[i % len(layouts)]
                db.reshard("accounts", key, count)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)
                return
            i += 1

    def reader():
        try:
            for i in range(50):
                if i % 2 == 0:
                    with db.begin_snapshot() as snap:
                        total = sum(r.values["balance"]
                                    for r in snap.scan("accounts"))
                else:
                    rows = execute_sql(
                        db, "SELECT SUM(balance) AS s FROM accounts")
                    total = rows[0]["s"]
                if total != expected:
                    violations.append(total)
        except Exception as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    threads = [threading.Thread(target=writer),
               threading.Thread(target=churner),
               threading.Thread(target=reader),
               threading.Thread(target=reader)]
    for thread in threads:
        thread.start()
    threads[2].join()
    threads[3].join()
    stop.set()
    threads[0].join()
    threads[1].join()
    assert not errors
    assert violations == []
    assert _total(db) == expected


def test_mvcc_snapshot_is_stable_across_later_commits():
    """A snapshot pinned before a commit keeps answering from the old
    state; a snapshot taken after sees the new state."""
    db = _bank(accounts=2, balance=10)
    before = db.begin_snapshot()
    db.run(lambda t: t.update(
        "accounts", t.get_by_pk("accounts", 0).rid, {"balance": 99}))
    after = db.begin_snapshot()
    assert before.get_by_pk("accounts", 0).values["balance"] == 10
    assert after.get_by_pk("accounts", 0).values["balance"] == 99


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("upsert"), st.integers(0, 7),
                  st.integers(-100, 100)),
        st.tuples(st.just("delete"), st.integers(0, 7), st.just(0)),
        st.tuples(st.just("compact"), st.just(0), st.just(0)),
        st.tuples(st.just("reshard"), st.integers(1, 4), st.just(0)),
    ),
    max_size=30,
)


@settings(max_examples=30, deadline=None)
@given(ops=_OPS)
def test_mvcc_differential_vs_oracle(ops):
    """Differential suite: after every committed operation, the snapshot
    read path (scan + SQL aggregates) must agree exactly with a plain
    single-threaded dict oracle — across compaction and resharding."""
    db = Database()
    db.create_table(TableSchema(
        "accounts",
        (Column("id", ColumnType.INT, nullable=False),
         Column("balance", ColumnType.INT)),
        primary_key="id",
    ))
    oracle = {}
    for kind, key, value in ops:
        if kind == "upsert":
            if key in oracle:
                def update(txn, key=key, value=value):
                    row = txn.get_by_pk("accounts", key)
                    txn.update("accounts", row.rid, {"balance": value})
                db.run(update)
            else:
                db.run(lambda t, key=key, value=value:
                       t.insert("accounts", {"id": key, "balance": value}))
            oracle[key] = value
        elif kind == "delete":
            if key in oracle:
                def delete(txn, key=key):
                    row = txn.get_by_pk("accounts", key)
                    txn.delete("accounts", row.rid)
                db.run(delete)
                del oracle[key]
        elif kind == "compact":
            db.compact("accounts")
        elif kind == "reshard":
            db.reshard("accounts", "id" if key > 1 else None, key)
        with db.begin_snapshot() as snap:
            seen = {r.values["id"]: r.values["balance"]
                    for r in snap.scan("accounts")}
        assert seen == oracle
        count = execute_sql(db, "SELECT COUNT(*) AS n FROM accounts")[0]["n"]
        assert count == len(oracle)
        total = execute_sql(db, "SELECT SUM(balance) AS s FROM accounts")[0]["s"]
        assert total == (sum(oracle.values()) if oracle else None)
