"""Concurrency stress tests: invariants under many racing transactions."""

import random
import threading

from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.types import Column, ColumnType, TableSchema


def _bank(accounts=8, balance=100):
    db = Database()
    db.create_table(TableSchema(
        "accounts",
        (Column("id", ColumnType.INT, nullable=False),
         Column("balance", ColumnType.INT)),
        primary_key="id",
    ))
    def seed(txn):
        for i in range(accounts):
            txn.insert("accounts", {"id": i, "balance": balance})
    db.run(seed)
    return db


def _total(db):
    return sum(r.values["balance"] for r in db.run(lambda t: t.scan("accounts")))


def test_random_transfers_conserve_total():
    """The classic bank-transfer invariant under 2PL with deadlock retry."""
    db = _bank()
    initial_total = _total(db)
    n_threads, n_transfers = 4, 30

    def worker(seed):
        rng = random.Random(seed)
        for _ in range(n_transfers):
            a, b = rng.sample(range(8), 2)
            amount = rng.randrange(1, 10)

            def transfer(txn, a=a, b=b, amount=amount):
                # lock in a fixed order to keep deadlocks rare (retries
                # handle the rest)
                first, second = sorted((a, b))
                row_first = txn.get_by_pk("accounts", first)
                row_second = txn.get_by_pk("accounts", second)
                rows = {first: row_first, second: row_second}
                txn.update("accounts", rows[a].rid,
                           {"balance": rows[a].values["balance"] - amount})
                txn.update("accounts", rows[b].rid,
                           {"balance": rows[b].values["balance"] + amount})
            db.run(transfer)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert _total(db) == initial_total


def test_readers_see_consistent_snapshots_under_writers():
    """A scan inside one transaction never observes a half-applied
    transfer (total is invariant in every read)."""
    db = _bank(accounts=4, balance=50)
    expected_total = 200
    stop = threading.Event()
    violations = []

    def writer():
        rng = random.Random(7)
        while not stop.is_set():
            a, b = rng.sample(range(4), 2)

            def transfer(txn, a=a, b=b):
                ra = txn.get_by_pk("accounts", a)
                rb = txn.get_by_pk("accounts", b)
                txn.update("accounts", ra.rid,
                           {"balance": ra.values["balance"] - 1})
                txn.update("accounts", rb.rid,
                           {"balance": rb.values["balance"] + 1})
            db.run(transfer)

    def reader():
        for _ in range(40):
            rows = db.run(lambda t: t.scan("accounts"))
            total = sum(r.values["balance"] for r in rows)
            if total != expected_total:
                violations.append(total)

    writer_thread = threading.Thread(target=writer)
    reader_thread = threading.Thread(target=reader)
    writer_thread.start()
    reader_thread.start()
    reader_thread.join()
    stop.set()
    writer_thread.join()
    assert violations == []


def test_many_concurrent_inserters_unique_rids():
    db = Database()
    db.create_table(TableSchema(
        "t", (Column("tid", ColumnType.INT), Column("seq", ColumnType.INT)),
    ))
    n_threads, per_thread = 6, 25

    def inserter(tid):
        for seq in range(per_thread):
            db.run(lambda t, tid=tid, seq=seq:
                   t.insert("t", {"tid": tid, "seq": seq}))

    threads = [threading.Thread(target=inserter, args=(i,))
               for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    rows = db.run(lambda t: t.scan("t"))
    assert len(rows) == n_threads * per_thread
    rids = [r.rid for r in rows]
    assert len(set(rids)) == len(rids)
    # every (tid, seq) pair arrived exactly once
    pairs = {(r.values["tid"], r.values["seq"]) for r in rows}
    assert len(pairs) == n_threads * per_thread
