"""Tests for the command-line interface (full workflow over a workspace)."""

import os

import pytest

from repro.cli import main


@pytest.fixture
def pages_dir(tmp_path):
    pages = tmp_path / "pages"
    pages.mkdir()
    (pages / "madison.txt").write_text(
        "{{Infobox city | name = Madison | sep_temp = 70 | population = 233209 }}\n"
        "'''Madison''' is the capital of [[Wisconsin]].\n"
    )
    (pages / "austin.txt").write_text(
        "{{Infobox city | name = Austin | sep_temp = 85 | population = 950000 }}\n"
        "'''Austin''' is in [[Texas]].\n"
    )
    return str(pages)


@pytest.fixture
def workspace(tmp_path):
    return str(tmp_path / "ws")


def _run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_ingest_generate_sql_roundtrip(capsys, pages_dir, workspace, tmp_path):
    code, out = _run(capsys, "--workspace", workspace, "ingest", pages_dir)
    assert code == 0 and "ingested 2 pages" in out

    program = tmp_path / "extract.xlog"
    program.write_text('p = docs()\nf = extract(p, "infobox")\noutput f\n')
    code, out = _run(capsys, "--workspace", workspace, "generate",
                     str(program))
    assert code == 0 and "stored" in out

    code, out = _run(capsys, "--workspace", workspace, "sql",
                     "SELECT entity, value_num FROM facts "
                     "WHERE attribute = 'sep_temp' ORDER BY value_num")
    assert code == 0
    assert "Madison" in out and "Austin" in out
    assert out.index("Madison") < out.index("Austin")  # ordered by temp


def test_search_and_suggest(capsys, pages_dir, workspace, tmp_path):
    _run(capsys, "--workspace", workspace, "ingest", pages_dir)
    program = tmp_path / "p.xlog"
    program.write_text('p = docs()\nf = extract(p, "infobox")\noutput f\n')
    _run(capsys, "--workspace", workspace, "generate", str(program))

    code, out = _run(capsys, "--workspace", workspace, "search",
                     "Madison capital")
    assert code == 0 and "madison" in out

    code, out = _run(capsys, "--workspace", workspace, "suggest",
                     "average sep_temp Madison")
    assert code == 0
    assert "AVG(value_num)" in out and "Madison" in out


def test_explain_and_facts(capsys, pages_dir, workspace, tmp_path):
    _run(capsys, "--workspace", workspace, "ingest", pages_dir)
    program = tmp_path / "p.xlog"
    program.write_text('p = docs()\nf = extract(p, "infobox")\noutput f\n')
    _run(capsys, "--workspace", workspace, "generate", str(program))

    code, out = _run(capsys, "--workspace", workspace, "explain",
                     "Madison", "sep_temp")
    assert code == 0 and "[span]" in out

    code, out = _run(capsys, "--workspace", workspace, "facts", "--limit", "3")
    assert code == 0 and "entity" in out


def test_generate_explain_mode(capsys, pages_dir, workspace, tmp_path):
    _run(capsys, "--workspace", workspace, "ingest", pages_dir)
    program = tmp_path / "p.xlog"
    program.write_text('p = docs()\nf = extract(p, "infobox")\noutput f\n')
    code, out = _run(capsys, "--workspace", workspace, "generate",
                     str(program), "--explain")
    assert code == 0
    assert "-- naive plan" in out and "-- optimized plan" in out


def test_reingest_versions_snapshots(capsys, pages_dir, workspace):
    _run(capsys, "--workspace", workspace, "ingest", pages_dir)
    # edit a page and re-ingest: the diff store should version it
    with open(os.path.join(pages_dir, "madison.txt"), "a",
              encoding="utf-8") as f:
        f.write("A new paragraph appeared today.\n")
    _run(capsys, "--workspace", workspace, "ingest", pages_dir)
    from repro.storage.snapshots import SnapshotStore
    store = SnapshotStore(os.path.join(workspace, "raw"))
    assert store.latest_version("madison") == 1
    assert "new paragraph" in store.checkout("madison").text
    assert "new paragraph" not in store.checkout("madison", 0).text


# --------------------------------------------------------- fault tolerance


def _program_file(tmp_path):
    program = tmp_path / "p.xlog"
    program.write_text('p = docs()\nf = extract(p, "infobox")\noutput f\n')
    return str(program)


def test_generate_quarantines_and_deadletter_roundtrip(
        capsys, pages_dir, workspace, tmp_path, monkeypatch):
    from repro.extraction.infobox import InfoboxExtractor

    _run(capsys, "--workspace", workspace, "ingest", pages_dir)
    program = _program_file(tmp_path)

    original = InfoboxExtractor.extract

    def poisoned(self, doc):
        if doc.doc_id == "madison":
            raise RuntimeError("synthetic poison")
        return original(self, doc)

    monkeypatch.setattr(InfoboxExtractor, "extract", poisoned)
    code, out = _run(capsys, "--workspace", workspace, "generate", program)
    assert code == 0
    assert "quarantined 1 document(s)" in out

    code, out = _run(capsys, "--workspace", workspace, "deadletter", "list")
    assert code == 0 and "madison" in out and "RuntimeError" in out

    # the document "heals" (extractor fixed); retry re-drives it
    monkeypatch.setattr(InfoboxExtractor, "extract", original)
    code, out = _run(capsys, "--workspace", workspace, "deadletter",
                     "retry", "--program", program)
    assert code == 0
    assert "retried 1 document(s); 1 recovered, 0 still quarantined" in out

    code, out = _run(capsys, "--workspace", workspace, "deadletter", "list")
    assert "dead-letter store is empty" in out


def test_deadletter_retry_requires_program(capsys, workspace):
    code = main(["--workspace", workspace, "deadletter", "retry"])
    captured = capsys.readouterr()
    assert code == 2
    assert "--program" in captured.err


def test_deadletter_clear(capsys, pages_dir, workspace, tmp_path,
                          monkeypatch):
    from repro.extraction.infobox import InfoboxExtractor

    _run(capsys, "--workspace", workspace, "ingest", pages_dir)

    def boom(self, doc):
        raise RuntimeError("always")

    monkeypatch.setattr(InfoboxExtractor, "extract", boom)
    _run(capsys, "--workspace", workspace, "generate",
         _program_file(tmp_path))
    code, out = _run(capsys, "--workspace", workspace, "deadletter", "clear")
    assert code == 0 and "cleared 2 dead-letter entries" in out


def test_fail_fast_exits_with_execution_failure_code(
        capsys, pages_dir, workspace, tmp_path, monkeypatch):
    from repro.cli import EXIT_EXECUTION_FAILURE
    from repro.extraction.infobox import InfoboxExtractor

    _run(capsys, "--workspace", workspace, "ingest", pages_dir)

    def boom(self, doc):
        raise RuntimeError("poison page")

    monkeypatch.setattr(InfoboxExtractor, "extract", boom)
    code = main(["--workspace", workspace, "--backend", "serial",
                 "--fail-fast", "generate", _program_file(tmp_path)])
    captured = capsys.readouterr()
    assert code == EXIT_EXECUTION_FAILURE == 3
    assert "repro: execution failed:" in captured.err


def test_explain_sql_plan(capsys, pages_dir, workspace, tmp_path):
    _run(capsys, "--workspace", workspace, "ingest", pages_dir)
    program = tmp_path / "p.xlog"
    program.write_text('p = docs()\nf = extract(p, "infobox")\noutput f\n')
    _run(capsys, "--workspace", workspace, "generate", str(program))

    # one argument: SQL query-plan form (EXPLAIN prefix added if missing)
    code, out = _run(capsys, "--workspace", workspace, "explain",
                     "SELECT entity FROM facts WHERE attribute = 'sep_temp'")
    assert code == 0
    assert "Project(entity)" in out
    assert "IndexLookup(facts.attribute = 'sep_temp' via hash index)" in out

    code, out = _run(capsys, "--workspace", workspace, "explain",
                     "EXPLAIN SELECT entity FROM facts LIMIT 2")
    assert code == 0 and "FullScan(facts)" in out

    # three arguments is neither form
    code, _ = _run(capsys, "--workspace", workspace, "explain",
                   "a", "b", "c")
    assert code == 2
