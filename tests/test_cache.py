"""Extraction cache: fingerprints, invalidation, determinism, stores.

The contract under test is twofold: (1) any behaviour-affecting change —
document text, extractor config, normalizer code, explicit version bump —
must miss; (2) with a cache attached, executor output stays byte-identical
to the uncached run on every execution path, across runs and across a
disk-cache close/reopen.
"""

import pytest

from repro.cache.fingerprint import extractor_fingerprint
from repro.cache.store import (
    DiskExtractionCache,
    LRUExtractionCache,
    document_key,
    make_cache,
)
from repro.cluster.simulator import ClusterConfig, SimulatedCluster
from repro.core.incremental import IncrementalExtractionManager
from repro.docmodel.document import Document
from repro.extraction.base import CompositeExtractor
from repro.extraction.dictionary import DictionaryExtractor
from repro.extraction.regex_extractor import RegexExtractor
from repro.lang.executor import run_program
from repro.lang.registry import OperatorRegistry
from repro.telemetry import metrics
from repro.telemetry.metrics import MetricsRegistry

PROGRAM = 'a = docs()\nb = extract(a, "years")\noutput b'


def _extractor(**overrides):
    config = dict(name="years", pattern=r"\b(?P<year>(18|19|20)\d{2})\b")
    config.update(overrides)
    return RegexExtractor(**config)


def _registry(extractor=None):
    registry = OperatorRegistry()
    registry.register_extractor("years", extractor or _extractor())
    return registry


def _corpus(n=12, salt=""):
    return [
        Document(doc_id=f"d{i}", text=f"{salt}Event {i}: from 19{10 + i} "
                                      f"until 2001, then nothing.")
        for i in range(n)
    ]


# ------------------------------------------------------------ fingerprints


def test_fingerprint_stable_across_equal_instances():
    assert extractor_fingerprint(_extractor()) == \
        extractor_fingerprint(_extractor())


def test_fingerprint_changes_on_pattern_change():
    assert extractor_fingerprint(_extractor()) != \
        extractor_fingerprint(_extractor(pattern=r"(?P<year>19\d{2})"))


def test_fingerprint_changes_on_config_knobs():
    base = extractor_fingerprint(_extractor())
    assert extractor_fingerprint(_extractor(confidence=0.5)) != base
    assert extractor_fingerprint(_extractor(cost_per_char=2.0)) != base
    assert extractor_fingerprint(_extractor(name="other")) != base


def test_fingerprint_changes_on_normalizer_code():
    with_upper = DictionaryExtractor(
        name="dict", attribute="city", phrases={"madison": "Madison"}
    )
    other_phrases = DictionaryExtractor(
        name="dict", attribute="city", phrases={"madison": "MADISON"}
    )
    assert extractor_fingerprint(with_upper) != \
        extractor_fingerprint(other_phrases)

    norm_a = _extractor(normalizers={"year": lambda raw: int(raw)})
    norm_b = _extractor(normalizers={"year": lambda raw: int(raw) + 1})
    assert extractor_fingerprint(norm_a) != extractor_fingerprint(norm_b)


def test_fingerprint_changes_on_version_bump():
    bumped = _extractor()
    bumped.version = 1
    assert extractor_fingerprint(_extractor()) != \
        extractor_fingerprint(bumped)


def test_fingerprint_recurses_into_nested_extractors():
    composite_a = CompositeExtractor(
        name="combo", extractors=[_extractor()])
    composite_b = CompositeExtractor(
        name="combo", extractors=[_extractor(pattern=r"(?P<year>20\d{2})")])
    assert extractor_fingerprint(composite_a) != \
        extractor_fingerprint(composite_b)


def test_document_key_covers_text_and_identity():
    doc = Document(doc_id="d1", text="alpha")
    assert document_key(doc) != document_key(
        Document(doc_id="d1", text="alpha edited"))
    assert document_key(doc) != document_key(
        Document(doc_id="d2", text="alpha"))
    assert document_key(doc) == document_key(
        Document(doc_id="d1", text="alpha"))


# ------------------------------------------------------------- the stores


def test_lru_roundtrip_and_copy_isolation():
    cache = LRUExtractionCache(max_entries=4)
    rows = [{"doc_id": "d1", "value": 7}]
    cache.put("k1", "fp", rows)
    out = cache.get("k1", "fp")
    assert out == rows
    out[0]["value"] = 99  # caller mutation must not corrupt the cache
    assert cache.get("k1", "fp") == rows
    assert cache.get("k1", "other-fp") is None


def test_lru_eviction_and_counters():
    registry = MetricsRegistry()
    with metrics.use_registry(registry):
        cache = LRUExtractionCache(max_entries=2)
        cache.put("a", "fp", [])
        cache.put("b", "fp", [])
        assert cache.get("a", "fp") == []  # refresh a; b becomes LRU
        cache.put("c", "fp", [])  # evicts b
        assert cache.get("b", "fp") is None
        assert cache.get("a", "fp") == []
        assert cache.get("c", "fp") == []
    assert registry.get("cache.evictions") == 1
    assert registry.get("cache.hits") == 3
    assert registry.get("cache.misses") == 1
    assert len(cache) == 2


def test_disk_cache_survives_close_and_reopen(tmp_path):
    root = str(tmp_path / "cache")
    rows = [{"doc_id": "d1", "value": 1.5, "ok": True, "note": None}]
    cache = DiskExtractionCache(root)
    cache.put("k1", "fp", rows)
    cache.put("k1", "fp2", [])
    cache.close()

    reopened = DiskExtractionCache(root)
    assert reopened.get("k1", "fp") == rows
    assert reopened.get("k1", "fp2") == []
    stats = reopened.stats()
    assert stats["entries"] == 2 and stats["kind"] == "disk"
    assert reopened.clear() is None
    assert reopened.get("k1", "fp") is None
    assert DiskExtractionCache(root).stats()["entries"] == 0


def test_disk_cache_refuses_rows_that_json_would_mangle(tmp_path):
    cache = DiskExtractionCache(str(tmp_path / "cache"))
    cache.put("k1", "fp", [{"value": (1, 2)}])  # tuple -> list under JSON
    assert cache.get("k1", "fp") is None  # skipped, not silently stored


def test_disk_cache_skips_corrupt_segment_lines(tmp_path):
    """Flipped bytes in a segment must not abort cache open — the damaged
    entries become misses, counted in cache.corrupt_entries."""
    import os

    root = str(tmp_path / "cache")
    cache = DiskExtractionCache(root)
    cache.put("k1", "fp", [{"doc_id": "d1", "value": 1}])
    cache.put("k2", "fp", [{"doc_id": "d2", "value": 2}])
    cache.put("k3", "fp", [{"doc_id": "d3", "value": 3}])
    cache.close()

    segment = os.path.join(root, sorted(os.listdir(root))[0])
    with open(segment, "rb") as f:
        data = bytearray(f.read())
    # flip bytes inside the middle record's JSON structure
    lines = data.split(b"\n")
    lines[1] = bytes(b ^ 0xFF for b in lines[1])
    with open(segment, "wb") as f:
        f.write(b"\n".join(lines))

    registry = MetricsRegistry()
    with metrics.use_registry(registry):
        reopened = DiskExtractionCache(root)
    assert reopened.get("k1", "fp") == [{"doc_id": "d1", "value": 1}]
    assert reopened.get("k2", "fp") is None  # damaged -> miss
    assert reopened.get("k3", "fp") == [{"doc_id": "d3", "value": 3}]
    assert reopened.corrupt_entries == 1
    assert reopened.stats()["corrupt_entries"] == 1
    assert registry.get("cache.corrupt_entries") == 1


def test_disk_cache_tolerates_torn_final_append(tmp_path):
    """A crash mid-put leaves a truncated last line; reopen drops it."""
    import os

    root = str(tmp_path / "cache")
    cache = DiskExtractionCache(root)
    cache.put("k1", "fp", [{"doc_id": "d1", "value": 1}])
    cache.close()
    segment = os.path.join(root, sorted(os.listdir(root))[0])
    with open(segment, "a", encoding="utf-8") as f:
        f.write('{"id": 1, "doc": "k2", "ext": "fp", "rows": [{"trunc')
    reopened = DiskExtractionCache(root)
    assert reopened.get("k1", "fp") == [{"doc_id": "d1", "value": 1}]
    assert reopened.get("k2", "fp") is None
    assert reopened.corrupt_entries == 1


def test_make_cache_specs(tmp_path):
    assert make_cache(None) is None
    assert isinstance(make_cache("memory"), LRUExtractionCache)
    disk = make_cache(str(tmp_path / "c"))
    assert isinstance(disk, DiskExtractionCache)
    assert make_cache(disk) is disk
    with pytest.raises(TypeError):
        make_cache(42)


# --------------------------------------------------- executor integration


def test_warm_run_hits_and_output_is_byte_identical():
    corpus = _corpus()
    cache = LRUExtractionCache()
    uncached = run_program(PROGRAM, corpus, _registry())
    cold = run_program(PROGRAM, corpus, _registry(), cache=cache)
    warm = run_program(PROGRAM, corpus, _registry(), cache=cache)
    assert cold.rows == uncached.rows == warm.rows
    assert cold.stats.cache_misses == len(corpus)
    assert warm.stats.cache_hits == len(corpus)
    assert warm.stats.cache_misses == 0
    assert warm.stats.total_chars_scanned == 0  # counters measure work done


def test_doc_text_change_misses_only_changed_docs():
    corpus = _corpus()
    cache = LRUExtractionCache()
    run_program(PROGRAM, corpus, _registry(), cache=cache)
    churned = list(corpus)
    churned[4] = Document(doc_id="d4", text="Rewritten in 1999 entirely.")
    result = run_program(PROGRAM, churned, _registry(), cache=cache)
    assert result.stats.cache_misses == 1
    assert result.stats.cache_hits == len(corpus) - 1
    assert result.stats.total_chars_scanned == len(churned[4].text)
    assert result.rows == run_program(PROGRAM, churned, _registry()).rows


@pytest.mark.parametrize("make_changed", [
    lambda: _extractor(pattern=r"\b(?P<year>19\d{2})\b"),
    lambda: _extractor(normalizers={"year": lambda raw: int(raw)}),
    lambda: _extractor(confidence=0.4),
])
def test_extractor_config_change_invalidates(make_changed):
    corpus = _corpus()
    cache = LRUExtractionCache()
    run_program(PROGRAM, corpus, _registry(), cache=cache)
    changed = make_changed()
    result = run_program(PROGRAM, corpus, _registry(changed), cache=cache)
    assert result.stats.cache_misses == len(corpus)
    assert result.rows == run_program(PROGRAM, corpus, _registry(changed)).rows


def test_version_bump_invalidates_identical_config():
    corpus = _corpus()
    cache = LRUExtractionCache()
    run_program(PROGRAM, corpus, _registry(), cache=cache)
    bumped = _extractor()
    bumped.version = 1
    result = run_program(PROGRAM, corpus, _registry(bumped), cache=cache)
    assert result.stats.cache_misses == len(corpus)


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_cache_hits_across_backends_with_identical_output(backend):
    corpus = _corpus(n=8)
    cache = LRUExtractionCache()
    inline = run_program(PROGRAM, corpus, _registry())
    cold = run_program(PROGRAM, corpus, _registry(), backend=backend,
                       cache=cache)
    warm = run_program(PROGRAM, corpus, _registry(), backend=backend,
                       cache=cache)
    assert cold.rows == warm.rows == inline.rows
    assert warm.stats.cache_hits == len(corpus)
    # An entry written by a backend run serves the inline path too.
    inline_warm = run_program(PROGRAM, corpus, _registry(), cache=cache)
    assert inline_warm.stats.cache_hits == len(corpus)
    assert inline_warm.rows == inline.rows


def test_cache_on_simulated_cluster_path_is_deterministic():
    corpus = _corpus(n=10)
    cache = LRUExtractionCache()

    def cluster():
        return SimulatedCluster(ClusterConfig(num_workers=3, seed=7))

    plain = run_program(PROGRAM, corpus, _registry(), cluster=cluster())
    cold = run_program(PROGRAM, corpus, _registry(), cluster=cluster(),
                       cache=cache)
    warm = run_program(PROGRAM, corpus, _registry(), cluster=cluster(),
                       cache=cache)
    assert cold.rows == warm.rows == plain.rows
    assert warm.stats.cache_hits == len(corpus)
    # Partial warmth: one churned document re-extracts through the wave.
    churned = list(corpus)
    churned[2] = Document(doc_id="d2", text="Replaced in 1987.")
    partial = run_program(PROGRAM, churned, _registry(), cluster=cluster(),
                          cache=cache)
    assert partial.stats.cache_misses == 1
    assert partial.rows == run_program(
        PROGRAM, churned, _registry(), cluster=cluster()).rows


def test_disk_cache_hits_across_reopen_via_executor(tmp_path):
    root = str(tmp_path / "cache")
    corpus = _corpus()
    baseline = run_program(PROGRAM, corpus, _registry())

    first = DiskExtractionCache(root)
    cold = run_program(PROGRAM, corpus, _registry(), cache=first)
    first.close()

    second = DiskExtractionCache(root)
    warm = run_program(PROGRAM, corpus, _registry(), cache=second)
    assert warm.stats.cache_hits == len(corpus)
    assert warm.stats.cache_misses == 0
    assert cold.rows == warm.rows == baseline.rows


def test_duplicate_doc_ids_bypass_cache_but_stay_correct():
    corpus = _corpus(n=4)
    stream = corpus + [corpus[0]]  # same doc twice via a hypothetical union
    program = 'a = docs()\nb = extract(a, "years")\noutput b'
    cache = LRUExtractionCache()
    cached = run_program(program, stream, _registry(), cache=cache)
    plain = run_program(program, stream, _registry())
    assert cached.rows == plain.rows
    assert cached.stats.cache_hits == 0  # ambiguous stream: cache unused


# ------------------------------------------- incremental manager sharing


def test_incremental_manager_reuses_executor_entries():
    corpus = _corpus()
    cache = LRUExtractionCache()
    run_program(PROGRAM, corpus, _registry(), cache=cache)

    manager = IncrementalExtractionManager(corpus=corpus, cache=cache)
    manager.register("years", _extractor(), ["year"])
    extractions = manager.demand(["year"])
    assert manager.work_done == 0.0  # every document was already cached
    baseline = IncrementalExtractionManager(corpus=corpus)
    baseline.register("years", _extractor(), ["year"])
    assert baseline.demand(["year"]) == extractions
    assert baseline.work_done > 0.0


def test_incremental_manager_populates_cache_for_executor():
    corpus = _corpus()
    cache = LRUExtractionCache()
    manager = IncrementalExtractionManager(corpus=corpus, cache=cache)
    manager.register("years", _extractor(), ["year"])
    manager.demand(["year"])

    warm = run_program(PROGRAM, corpus, _registry(), cache=cache)
    assert warm.stats.cache_hits == len(corpus)
    assert warm.rows == run_program(PROGRAM, corpus, _registry()).rows
