"""Tests for the learned extractors (Naive Bayes and HMM taggers)."""

import pytest

from repro.docmodel.document import Document
from repro.docmodel.tokenize import Tokenizer
from repro.extraction.learned import (
    HmmSequenceTagger,
    LabeledExample,
    NaiveBayesTokenTagger,
    bio_encode,
)
from repro.extraction.normalize import normalize_number


def _training_examples(n=20):
    """Positive sentences (number after 'temperature is' labeled temp) plus
    negative sentences (numbers in other contexts, unlabeled)."""
    examples = []
    for i in range(n):
        value = 50 + i
        text = f"The temperature is {value} degrees today here."
        start = text.index(str(value))
        doc = Document(f"train{i}", text)
        examples.append(
            LabeledExample(doc, ((start, start + len(str(value)), "temp"),))
        )
        negative = Document(
            f"neg{i}",
            f"The population grew by {100 + i} percent since the census.",
        )
        examples.append(LabeledExample(negative, ()))
    return examples


def test_bio_encode_marks_b_and_i():
    doc = Document("d", "born in New York City")
    start = doc.text.index("New")
    tokens, tags = bio_encode(doc, [(start, len(doc.text), "place")], Tokenizer())
    assert tags == ["O", "O", "B-place", "I-place", "I-place"]
    assert [t.text for t in tokens] == ["born", "in", "New", "York", "City"]


def test_bio_encode_no_labels_all_outside():
    doc = Document("d", "nothing here")
    _, tags = bio_encode(doc, [], Tokenizer())
    assert set(tags) == {"O"}


def test_naive_bayes_learns_pattern():
    tagger = NaiveBayesTokenTagger(value_normalizer=normalize_number)
    tagger.train(_training_examples())
    test_doc = Document("test", "The temperature is 72 degrees right now.")
    results = tagger.extract(test_doc)
    assert len(results) == 1
    assert results[0].attribute == "temp"
    assert results[0].value == 72.0
    assert 0.0 <= results[0].confidence <= 1.0


def test_naive_bayes_does_not_fire_on_unrelated_numbers():
    tagger = NaiveBayesTokenTagger(value_normalizer=normalize_number)
    tagger.train(_training_examples())
    test_doc = Document("test", "The population grew by 140 percent since then.")
    results = tagger.extract(test_doc)
    assert all(r.attribute != "temp" or r.value != 140.0 for r in results) or results == []


def test_naive_bayes_requires_training():
    tagger = NaiveBayesTokenTagger()
    with pytest.raises(RuntimeError):
        tagger.extract(Document("d", "text"))
    with pytest.raises(ValueError):
        NaiveBayesTokenTagger().train([])


def test_naive_bayes_repairs_illegal_bio():
    assert NaiveBayesTokenTagger._repair_bio(["O", "I-x", "I-x"]) == [
        "O", "B-x", "I-x"
    ]
    assert NaiveBayesTokenTagger._repair_bio(["B-y", "I-x"]) == ["B-y", "B-x"]


def test_hmm_learns_pattern():
    tagger = HmmSequenceTagger(value_normalizer=normalize_number)
    tagger.train(_training_examples(40))
    test_doc = Document("test", "The temperature is 72 degrees right now.")
    results = tagger.extract(test_doc)
    assert len(results) == 1
    assert results[0].value == 72.0


def test_hmm_requires_training():
    with pytest.raises(RuntimeError):
        HmmSequenceTagger().extract(Document("d", "x"))
    with pytest.raises(ValueError):
        HmmSequenceTagger().train([])


def test_hmm_empty_document():
    tagger = HmmSequenceTagger()
    tagger.train(_training_examples(5))
    assert tagger.extract(Document("d", "")) == []


def test_taggers_emit_spans_into_source():
    tagger = NaiveBayesTokenTagger(value_normalizer=normalize_number)
    tagger.train(_training_examples())
    doc = Document("test", "The temperature is 65 degrees.")
    for result in tagger.extract(doc):
        assert doc.text[result.span.start:result.span.end] == result.span.text
