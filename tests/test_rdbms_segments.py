"""Columnar segments: compaction, melt-on-write, vectorized execution,
zone-map skipping, WAL/checkpoint recovery, and the reopen regression."""

import json

import pytest

from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.segments import Segment
from repro.storage.rdbms.sql import SqlError, execute_sql
from repro.storage.rdbms.types import Column, ColumnType, TableSchema
from repro.telemetry import metrics


def _schema():
    return TableSchema(
        "t",
        (Column("id", ColumnType.INT, nullable=False),
         Column("v", ColumnType.INT),
         Column("f", ColumnType.FLOAT),
         Column("s", ColumnType.TEXT),
         Column("b", ColumnType.BOOL)),
        primary_key="id",
    )


def _row(i):
    return {
        "id": i,
        "v": (i % 37) if i % 11 else None,
        "f": i * 0.25,
        "s": f"g{i % 5}" if i % 7 else None,
        "b": i % 2 == 0,
    }


def _load(db, n=300):
    db.create_table(_schema())

    def insert(txn):
        for i in range(n):
            txn.insert("t", _row(i))

    db.run(insert)


def _rows(db, use_planner=True):
    return execute_sql(db, "SELECT * FROM t ORDER BY id",
                       use_planner=use_planner)


# ------------------------------------------------------------- compaction


def test_compact_freezes_tail_and_scan_is_identical():
    db = Database()
    _load(db)
    before = _rows(db)
    summary = db.compact("t")
    assert summary["rows_frozen"] == 300
    assert summary["segments_created"] >= 1
    heap = db._table("t")
    assert heap.tail_size == 0
    assert len(heap) == 300
    after = _rows(db)
    assert json.dumps(before, sort_keys=True) == json.dumps(after,
                                                            sort_keys=True)


def test_compact_is_idempotent_and_chunked():
    db = Database()
    _load(db, 100)
    created, frozen, _ = db._table("t").compact(target_rows=30)
    assert (created, frozen) == (4, 100)  # 30+30+30+10
    assert db.compact("t")["rows_frozen"] == 0  # nothing left to freeze


def test_alter_table_compact_sql():
    db = Database()
    _load(db, 50)
    out = execute_sql(db, "ALTER TABLE t COMPACT")
    assert out == [{"compacted": "t", "segments_created": 1,
                    "rows_frozen": 50}]
    with pytest.raises(SqlError, match="unknown table"):
        execute_sql(db, "ALTER TABLE nope COMPACT")


def test_insert_after_compact_lands_in_tail_and_scan_merges():
    db = Database()
    _load(db, 20)
    db.compact("t")
    db.run(lambda txn: txn.insert("t", _row(20)))
    heap = db._table("t")
    assert heap.tail_size == 1
    assert [r["id"] for r in _rows(db)] == list(range(21))


# ---------------------------------------------------------- melt-on-write


def test_update_of_frozen_row_melts_segment():
    db = Database()
    _load(db, 60)
    db.compact("t")
    registry = metrics.get_registry()
    melted_before = registry.get("segments.melted")

    def bump(txn):
        rid = next(r.rid for r in txn.scan("t") if r.values["id"] == 3)
        txn.update("t", rid, {"v": 999})

    db.run(bump)
    assert registry.get("segments.melted") == melted_before + 1
    assert db._table("t").segment_count() == 0
    got = execute_sql(db, "SELECT v FROM t WHERE id = 3")
    assert got == [{"v": 999}]


def test_delete_of_frozen_row_melts_and_preserves_rest():
    db = Database()
    _load(db, 40)
    db.compact("t")

    def drop(txn):
        rid = next(r.rid for r in txn.scan("t") if r.values["id"] == 10)
        txn.delete("t", rid)

    db.run(drop)
    ids = [r["id"] for r in _rows(db)]
    assert ids == [i for i in range(40) if i != 10]


def test_abort_after_melt_restores_values():
    db = Database()
    _load(db, 30)
    db.compact("t")
    before = _rows(db)
    txn = db.begin()
    rid = next(r.rid for r in txn.scan("t") if r.values["id"] == 5)
    txn.update("t", rid, {"v": -1})
    txn.abort()
    assert _rows(db) == before


# ------------------------------------------------------ vectorized parity

_PARITY_QUERIES = [
    "SELECT COUNT(*) FROM t",
    "SELECT COUNT(v) FROM t",
    "SELECT COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM t",
    "SELECT SUM(f), AVG(f), MIN(f), MAX(f) FROM t",
    "SELECT MIN(s), MAX(s), COUNT(s) FROM t",
    "SELECT SUM(b), COUNT(b) FROM t",
    "SELECT s, COUNT(*), SUM(v) FROM t GROUP BY s",
    "SELECT b, s, AVG(f) FROM t GROUP BY b, s",
    "SELECT COUNT(*) FROM t WHERE v > 10",
    "SELECT SUM(f) FROM t WHERE id >= 100 AND id < 200",
    "SELECT s, MAX(id) FROM t WHERE s != 'g2' GROUP BY s",
    "SELECT COUNT(*) FROM t WHERE s IN ('g1', 'g3')",
    "SELECT COUNT(*) FROM t WHERE s LIKE 'g%'",
    "SELECT COUNT(*) FROM t WHERE v IS NULL",
    "SELECT COUNT(*) FROM t WHERE v IS NOT NULL AND b = TRUE",
    "SELECT s, COUNT(*) FROM t GROUP BY s ORDER BY s DESC LIMIT 2",
    "SELECT MIN(v) FROM t WHERE id > 9000",  # empty result group
]


def test_vectorized_aggregates_match_naive_oracle():
    db = Database()
    _load(db)
    db._table("t").compact(target_rows=64)  # several segments
    for sql in _PARITY_QUERIES:
        fast = execute_sql(db, sql, use_planner=True)
        slow = execute_sql(db, sql, use_planner=False)
        assert json.dumps(fast, sort_keys=True) == \
            json.dumps(slow, sort_keys=True), sql


def test_parity_with_segments_plus_tail():
    db = Database()
    _load(db, 150)
    db.compact("t")
    db.run(lambda txn: [txn.insert("t", _row(i)) for i in range(150, 200)])
    for sql in _PARITY_QUERIES:
        fast = execute_sql(db, sql, use_planner=True)
        slow = execute_sql(db, sql, use_planner=False)
        assert json.dumps(fast, sort_keys=True) == \
            json.dumps(slow, sort_keys=True), sql


def test_sum_type_error_parity_on_text_column():
    db = Database()
    _load(db, 20)
    db.compact("t")
    with pytest.raises(TypeError):
        execute_sql(db, "SELECT SUM(s) FROM t", use_planner=False)
    with pytest.raises(TypeError):
        execute_sql(db, "SELECT SUM(s) FROM t", use_planner=True)


def test_vectorized_agg_counter_and_explain():
    db = Database()
    _load(db, 50)
    db.compact("t")
    registry = metrics.get_registry()
    before = registry.get("planner.plans.vectorized_agg")
    execute_sql(db, "SELECT s, COUNT(*) FROM t GROUP BY s")
    assert registry.get("planner.plans.vectorized_agg") == before + 1
    lines = [r["plan"].split("  [")[0] for r in execute_sql(
        db, "EXPLAIN SELECT s, COUNT(*) FROM t GROUP BY s")]
    assert lines == [
        "VectorizedAggregate(group_by=[s], items=[s, count(*)])",
        "  SegmentScan(t, pred=TRUE)",
    ]


# -------------------------------------------------------- zone-map skipping


def test_zone_maps_skip_out_of_range_segments():
    db = Database()
    _load(db, 200)
    db._table("t").compact(target_rows=50)  # 4 segments: id 0-49, 50-99, ...
    registry = metrics.get_registry()
    skipped = registry.get("segments.skipped")
    scanned = registry.get("segments.scanned")
    out = execute_sql(db, "SELECT COUNT(*) FROM t WHERE id >= 150")
    assert out == [{"count(*)": 50}]
    assert registry.get("segments.skipped") == skipped + 3
    assert registry.get("segments.scanned") == scanned + 1


def test_zone_maps_skip_on_dict_membership():
    db = Database()
    _load(db, 100)
    db._table("t").compact(target_rows=50)
    registry = metrics.get_registry()
    skipped = registry.get("segments.skipped")
    out = execute_sql(db, "SELECT COUNT(*) FROM t WHERE s = 'nowhere'")
    assert out == [{"count(*)": 0}]
    assert registry.get("segments.skipped") == skipped + 2


# ------------------------------------------------------------- persistence


def test_compact_survives_crash_via_wal(tmp_path):
    db = Database(str(tmp_path))
    _load(db, 120)
    before = _rows(db)
    db.compact("t", target_rows=40)
    # no checkpoint: reopen replays CREATE + inserts + compact from the WAL
    db2 = Database(str(tmp_path))
    assert _rows(db2) == before
    assert db2._table("t").segment_count() == 3
    assert db2._table("t").tail_size == 0


def test_compact_layout_restored_from_checkpoint(tmp_path):
    db = Database(str(tmp_path))
    _load(db, 90)
    db._table("t").compact(target_rows=30)
    db.checkpoint()
    before = _rows(db)
    db2 = Database(str(tmp_path))
    heap = db2._table("t")
    assert heap.segment_count() == 3
    assert heap.tail_size == 0
    assert _rows(db2) == before


def test_writes_after_compact_replay_into_tail(tmp_path):
    db = Database(str(tmp_path))
    _load(db, 60)
    db.compact("t")
    db.run(lambda txn: [txn.insert("t", _row(i)) for i in range(60, 80)])
    before = _rows(db)
    db2 = Database(str(tmp_path))
    assert _rows(db2) == before
    assert db2._table("t").segment_count() >= 1
    assert db2._table("t").tail_size == 20


# --------------------------------------------------- reopen drift regression


def test_reopened_zone_maps_match_freshly_built_ones(tmp_path):
    """Reopen must rebuild zone maps from recovered rows, not trust any
    stale persisted summary — the PR's drift-fix regression."""
    db = Database(str(tmp_path))
    _load(db, 80)
    db._table("t").compact(target_rows=40)
    db.checkpoint()
    fresh = [seg.zone_maps() for seg in db._table("t").segments]
    db2 = Database(str(tmp_path))
    reopened = [seg.zone_maps() for seg in db2._table("t").segments]
    assert reopened == fresh
    # and the skip machinery still works on the reopened segments
    registry = metrics.get_registry()
    skipped = registry.get("segments.skipped")
    execute_sql(db2, "SELECT COUNT(*) FROM t WHERE id >= 40")
    assert registry.get("segments.skipped") == skipped + 1


def test_bad_segment_layout_invalidates_instead_of_corrupting():
    db = Database()
    _load(db, 50)
    heap = db._table("t")
    registry = metrics.get_registry()
    # a layout whose counts don't match the live rows must be rejected
    assert heap.restore_segments([[0, 49, 49]]) is False
    assert heap.segment_count() == 0
    assert len(heap) == 50
    # engine counts the rejection during recovery
    before = registry.get("segments.invalidated")
    registry.inc("segments.invalidated", 0)  # counter exists
    assert registry.get("segments.invalidated") == before


# --------------------------------------------------------- auto-compaction


def test_auto_compact_triggers_on_threshold():
    db = Database()
    db.auto_compact_rows = 100
    _load(db, 150)
    heap = db._table("t")
    assert heap.segment_count() >= 1
    assert heap.tail_size == 0
    # small follow-up write stays in the tail (below threshold)
    db.run(lambda txn: txn.insert("t", _row(150)))
    assert heap.tail_size == 1


def test_schema_evolution_melts_segments():
    db = Database()
    _load(db, 30)
    db.compact("t")
    old = db.schema("t")
    new = TableSchema("t", old.columns + (Column("extra", ColumnType.INT),),
                      primary_key="id")
    db.alter_table("t", new, lambda values: {**values, "extra": 7})
    heap = db._table("t")
    assert heap.segment_count() == 0
    assert execute_sql(db, "SELECT COUNT(extra) FROM t") == \
        [{"count(extra)": 30}]


# ----------------------------------------------------- streaming satellite


def test_scan_iter_is_lazy():
    db = Database()
    _load(db, 10)
    txn = db.begin()
    it = txn.scan_iter("t")
    assert not isinstance(it, list)
    assert next(it).values["id"] == 0
    txn.commit()


def test_order_by_limit_streams_identically():
    db = Database()
    _load(db, 100)
    db.compact("t")
    fast = execute_sql(db, "SELECT id, f FROM t ORDER BY f DESC LIMIT 7")
    slow = execute_sql(db, "SELECT id, f FROM t ORDER BY f DESC LIMIT 7",
                       use_planner=False)
    assert fast == slow


# --------------------------------------------------------------- encodings


def test_dict_overflow_falls_back_to_raw():
    schema = TableSchema("w", (Column("id", ColumnType.INT, nullable=False),
                               Column("s", ColumnType.TEXT)),
                         primary_key="id")
    items = [(i, {"id": i, "s": f"unique-{i}"}) for i in range(50)]
    seg = Segment.from_rows(schema, items, dict_max=10)
    assert seg.columns["s"].encoding == "raw"
    assert [v for _, vals in seg.iter_rows() for v in [vals["s"]]] == \
        [f"unique-{i}" for i in range(50)]


def test_int64_overflow_falls_back_to_raw():
    schema = TableSchema("w", (Column("id", ColumnType.INT, nullable=False),
                               Column("big", ColumnType.INT)),
                         primary_key="id")
    huge = 2 ** 70
    items = [(0, {"id": 0, "big": huge}), (1, {"id": 1, "big": None})]
    seg = Segment.from_rows(schema, items)
    assert seg.columns["big"].encoding == "raw"
    assert seg.columns["big"].decoded() == [huge, None]


def test_nan_floats_disable_zone_bounds():
    schema = TableSchema("w", (Column("id", ColumnType.INT, nullable=False),
                               Column("f", ColumnType.FLOAT)),
                         primary_key="id")
    items = [(0, {"id": 0, "f": float("nan")}), (1, {"id": 1, "f": 2.0})]
    seg = Segment.from_rows(schema, items)
    col = seg.columns["f"]
    assert col.min_value is None and col.max_value is None
