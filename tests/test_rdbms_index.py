"""Tests for hash and sorted indexes."""

from repro.storage.rdbms.index import HashIndex, SortedIndex


def test_hash_insert_lookup_remove():
    index = HashIndex("t", "c")
    index.insert("a", 1)
    index.insert("a", 2)
    index.insert("b", 3)
    assert index.lookup("a") == [1, 2]
    index.remove("a", 1)
    assert index.lookup("a") == [2]
    assert index.lookup("missing") == []


def test_hash_ignores_none_values():
    index = HashIndex("t", "c")
    index.insert(None, 1)
    assert len(index) == 0
    index.remove(None, 1)  # no-op, no error


def test_hash_buckets_stay_sorted_without_per_lookup_sort():
    # Out-of-order inserts, duplicates, and removals must leave buckets
    # already sorted: lookup() is a plain O(k) copy, so it returns the
    # deterministic ascending order only if mutation maintains it.
    index = HashIndex("t", "c")
    for rid in [9, 2, 7, 2, 0, 5]:
        index.insert("a", rid)
    assert index._buckets["a"] == sorted(set([9, 2, 7, 2, 0, 5]))
    index.remove("a", 7)
    assert index._buckets["a"] == [0, 2, 5, 9]
    assert index.lookup("a") == [0, 2, 5, 9]
    assert index.lookup("a") is not index._buckets["a"]  # caller-owned copy


def test_hash_update_moves_rid():
    index = HashIndex("t", "c")
    index.insert("a", 1)
    index.update("a", "b", 1)
    assert index.lookup("a") == []
    assert index.lookup("b") == [1]


def test_hash_update_same_value_noop():
    index = HashIndex("t", "c")
    index.insert("a", 1)
    index.update("a", "a", 1)
    assert index.lookup("a") == [1]


def test_sorted_lookup_and_duplicates():
    index = SortedIndex("t", "c")
    for rid, value in enumerate([5, 3, 5, 1]):
        index.insert(value, rid)
    assert index.lookup(5) == [0, 2]
    assert index.lookup(4) == []


def test_sorted_range_inclusive_exclusive():
    index = SortedIndex("t", "c")
    for rid, value in enumerate([1, 2, 3, 4, 5]):
        index.insert(value, rid)
    assert list(index.range(2, 4)) == [1, 2, 3]
    assert list(index.range(2, 4, include_low=False)) == [2, 3]
    assert list(index.range(2, 4, include_high=False)) == [1, 2]
    assert list(index.range(low=4)) == [3, 4]
    assert list(index.range(high=2)) == [0, 1]
    assert list(index.range()) == [0, 1, 2, 3, 4]


def test_sorted_remove():
    index = SortedIndex("t", "c")
    index.insert(1, 0)
    index.insert(1, 1)
    index.remove(1, 0)
    assert index.lookup(1) == [1]
    index.remove(99, 5)  # unknown pair: silent


def test_sorted_min_max():
    index = SortedIndex("t", "c")
    assert index.min_value() is None
    for rid, value in enumerate([3, 1, 2]):
        index.insert(value, rid)
    assert index.min_value() == 1
    assert index.max_value() == 3


def test_sorted_ignores_none():
    index = SortedIndex("t", "c")
    index.insert(None, 1)
    assert len(index) == 0
