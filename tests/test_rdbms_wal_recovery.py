"""Tests for the write-ahead log and crash recovery.

A "crash" is simulated by abandoning the Database object without clean
shutdown and re-opening the directory: recovery must restore exactly the
committed state.
"""

import pytest

from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.types import Column, ColumnType, TableSchema
from repro.storage.rdbms.wal import LogRecord, WriteAheadLog


def _schema(name="t"):
    return TableSchema(
        name,
        (Column("id", ColumnType.INT, nullable=False),
         Column("value", ColumnType.TEXT)),
        primary_key="id",
    )


def test_log_record_roundtrip():
    record = LogRecord(3, 7, "insert", {"table": "t", "rid": 1, "values": {"a": 1}})
    again = LogRecord.from_json(record.to_json())
    assert again == record


def test_wal_appends_and_replays(tmp_path):
    wal = WriteAheadLog(str(tmp_path))
    wal.append(1, "begin")
    wal.append(1, "insert", table="t", rid=0, values={"id": 1})
    wal.append(1, "commit")
    wal.close()
    records = list(WriteAheadLog(str(tmp_path)).records())
    assert [r.rec_type for r in records] == ["begin", "insert", "commit"]
    assert [r.lsn for r in records] == [0, 1, 2]


def test_wal_lsn_continues_after_reopen(tmp_path):
    wal = WriteAheadLog(str(tmp_path))
    wal.append(1, "begin")
    wal.close()
    wal2 = WriteAheadLog(str(tmp_path))
    record = wal2.append(2, "begin")
    assert record.lsn == 1


def test_committed_work_survives_crash(tmp_path):
    db = Database(str(tmp_path))
    db.create_table(_schema())
    with db.begin() as txn:
        txn.insert("t", {"id": 1, "value": "a"})
        txn.insert("t", {"id": 2, "value": "b"})
    # crash: no close/checkpoint; reopen from the log
    db2 = Database(str(tmp_path))
    rows = db2.run(lambda t: t.scan("t"))
    assert sorted(r.values["id"] for r in rows) == [1, 2]


def test_uncommitted_work_rolled_back_on_crash(tmp_path):
    db = Database(str(tmp_path))
    db.create_table(_schema())
    with db.begin() as txn:
        txn.insert("t", {"id": 1, "value": "committed"})
    dangling = db.begin()
    dangling.insert("t", {"id": 2, "value": "uncommitted"})
    # crash with the second txn in flight
    db2 = Database(str(tmp_path))
    rows = db2.run(lambda t: t.scan("t"))
    assert [r.values["id"] for r in rows] == [1]


def test_aborted_txn_not_replayed(tmp_path):
    db = Database(str(tmp_path))
    db.create_table(_schema())
    txn = db.begin()
    txn.insert("t", {"id": 1, "value": "x"})
    txn.abort()
    db2 = Database(str(tmp_path))
    assert db2.run(lambda t: t.scan("t")) == []


def test_updates_and_deletes_replay(tmp_path):
    db = Database(str(tmp_path))
    db.create_table(_schema())
    rid = db.run(lambda t: t.insert("t", {"id": 1, "value": "v0"})).rid
    db.run(lambda t: t.update("t", rid, {"value": "v1"}))
    rid2 = db.run(lambda t: t.insert("t", {"id": 2, "value": "gone"})).rid
    db.run(lambda t: t.delete("t", rid2))
    db2 = Database(str(tmp_path))
    rows = db2.run(lambda t: t.scan("t"))
    assert len(rows) == 1
    assert rows[0].values["value"] == "v1"


def test_checkpoint_truncates_log_and_recovers(tmp_path):
    db = Database(str(tmp_path))
    db.create_table(_schema())
    for i in range(20):
        db.run(lambda t, i=i: t.insert("t", {"id": i, "value": str(i)}))
    size_before = db.wal_size_bytes()
    db.checkpoint()
    assert db.wal_size_bytes() < size_before
    # post-checkpoint work also recovers
    db.run(lambda t: t.insert("t", {"id": 100, "value": "after"}))
    db2 = Database(str(tmp_path))
    assert db2.table_size("t") == 21
    assert db2.run(lambda t: t.get_by_pk("t", 100)) is not None


def test_recovery_restores_indexes(tmp_path):
    db = Database(str(tmp_path))
    db.create_table(_schema())
    db.create_index("t", "value", kind="hash")
    db.run(lambda t: t.insert("t", {"id": 1, "value": "findme"}))
    db.checkpoint()
    db2 = Database(str(tmp_path))
    hits = db2.run(lambda t: t.lookup("t", "value", "findme"))
    assert len(hits) == 1


def test_txn_counter_continues_after_recovery(tmp_path):
    db = Database(str(tmp_path))
    db.create_table(_schema())
    with db.begin() as txn:
        txn.insert("t", {"id": 1, "value": "a"})
        last_id = txn.txn_id
    db2 = Database(str(tmp_path))
    assert db2.begin().txn_id > last_id


def test_drop_table_replays(tmp_path):
    db = Database(str(tmp_path))
    db.create_table(_schema("a"))
    db.create_table(_schema("b"))
    db.drop_table("a")
    db2 = Database(str(tmp_path))
    assert db2.table_names() == ["b"]


def test_torn_final_record_is_tolerated(tmp_path):
    """A crash mid-append leaves a truncated last line; recovery must drop
    it and keep every earlier committed record."""
    db = Database(str(tmp_path))
    db.create_table(_schema())
    with db.begin() as txn:
        txn.insert("t", {"id": 1, "value": "committed"})
    db.close()
    wal_path = tmp_path / "wal.jsonl"
    with open(wal_path, "a", encoding="utf-8") as f:
        f.write('{"lsn": 999, "txn": 9, "type": "ins')  # torn write
    recovered = Database(str(tmp_path))
    rows = recovered.run(lambda t: t.scan("t"))
    assert [r.values["id"] for r in rows] == [1]
    # and the reopened log keeps assigning fresh LSNs / accepting work
    with recovered.begin() as txn:
        txn.insert("t", {"id": 2, "value": "after"})
    assert recovered.table_size("t") == 2


def test_multi_record_corrupt_suffix_is_tolerated(tmp_path):
    """A crash during a multi-record append burst can corrupt several
    trailing lines; recovery drops the whole suffix and counts it."""
    from repro.telemetry.metrics import MetricsRegistry, use_registry

    db = Database(str(tmp_path))
    db.create_table(_schema())
    with db.begin() as txn:
        txn.insert("t", {"id": 1, "value": "committed"})
    db.close()
    wal_path = tmp_path / "wal.jsonl"
    with open(wal_path, "a", encoding="utf-8") as f:
        f.write("GARBAGE NOT JSON\n")
        f.write('{"no_lsn_key": true}\n')
        f.write('{"lsn": 999, "txn": 9, "type": "ins')  # torn final write
    registry = MetricsRegistry()
    with use_registry(registry):
        recovered = Database(str(tmp_path))
    rows = recovered.run(lambda t: t.scan("t"))
    assert [r.values["id"] for r in rows] == [1]
    assert registry.get("recovery.truncated_records") == 3


def test_midlog_corruption_raises(tmp_path):
    db = Database(str(tmp_path))
    db.create_table(_schema())
    with db.begin() as txn:
        txn.insert("t", {"id": 1, "value": "a"})
    db.close()
    wal_path = tmp_path / "wal.jsonl"
    lines = wal_path.read_text().splitlines()
    lines[1] = "GARBAGE NOT JSON"
    wal_path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError):
        Database(str(tmp_path))


def test_recovery_is_idempotent(tmp_path):
    db = Database(str(tmp_path))
    db.create_table(_schema())
    with db.begin() as txn:
        txn.insert("t", {"id": 1, "value": "a"})
    first = Database(str(tmp_path))
    second = Database(str(tmp_path))
    rows1 = [r.values for r in first.run(lambda t: t.scan("t"))]
    rows2 = [r.values for r in second.run(lambda t: t.scan("t"))]
    assert rows1 == rows2 == [{"id": 1, "value": "a"}]
