"""End-to-end tests for the ``repro stream`` CLI command."""

import os

import pytest

from repro.cli import main
from repro.datagen.cities import CityCorpusConfig, generate_city_corpus


@pytest.fixture
def workspace(tmp_path):
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=5, seed=91, styles=("infobox",)))
    pages = tmp_path / "pages"
    pages.mkdir()
    for document in corpus:
        (pages / f"{document.doc_id}.txt").write_text(document.text)
    ws = str(tmp_path / "ws")
    assert main(["--workspace", ws, "ingest", str(pages)]) == 0
    return ws, pages, truth


def test_stream_seeds_and_notifies(workspace, capsys):
    ws, _, truth = workspace
    capsys.readouterr()
    code = main(["--workspace", ws, "stream", "--query",
                 "SELECT entity, value_num FROM fused_facts "
                 "WHERE attribute = 'sep_temp'"])
    out = capsys.readouterr().out
    assert code == 0
    seed_lines = [l for l in out.splitlines() if l.startswith("seed: ")]
    assert len(seed_lines) == 1
    assert f"+{len(truth)} ~0 -0 doc(s)" in seed_lines[0]
    assert "[stream-0]" in out  # the standing query fired on fused rows
    assert "sep_temp" not in out or "value_num" in out


def test_stream_is_repeatable_across_invocations(workspace, capsys):
    ws, _, _ = workspace
    main(["--workspace", ws, "stream"])
    first = capsys.readouterr().out
    # each invocation cold-starts: same corpus -> same seed summary
    main(["--workspace", ws, "stream"])
    second = capsys.readouterr().out
    assert first == second
    assert "seed: " in first


def test_stream_empty_workspace(tmp_path, capsys):
    ws = str(tmp_path / "ws")
    empty = tmp_path / "pages"
    empty.mkdir()
    assert main(["--workspace", ws, "ingest", str(empty)]) == 0
    capsys.readouterr()
    assert main(["--workspace", ws, "stream"]) == 0
    assert "corpus empty; nothing to stream" in capsys.readouterr().out


def test_stream_follow_polls_quietly_when_unchanged(workspace, capsys):
    ws, _, _ = workspace
    capsys.readouterr()
    code = main(["--workspace", ws, "stream", "--follow",
                 "--rounds", "3", "--interval", "0.01"])
    out = capsys.readouterr().out
    assert code == 0
    # round 0 seeds; rounds 1-2 see an unchanged corpus and stay silent
    assert sum(l.startswith("seed: ") for l in out.splitlines()) == 1
    assert "delta: " not in out
