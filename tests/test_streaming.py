"""Tests for the streaming DGE pipeline (corpus delta -> fused rows).

The differential suites are the heart: after every randomly generated
delta batch, the incrementally maintained clusters, fused values, and
continuous-query notifications must be byte-identical (``json.dumps``
with ``sort_keys``) to a full recompute over the surviving corpus.
"""

import json
import string
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.store import LRUExtractionCache
from repro.docmodel.document import Document, Span
from repro.errors import CancellationToken, QueryTimeoutError
from repro.extraction.base import Extraction
from repro.faults.deadletter import DeadLetterStore
from repro.core.streaming import (
    CorpusDeltaSource,
    DocDelta,
    StreamingPipeline,
)
from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.sql import execute_sql
from repro.userlayer.monitoring import ContinuousQuery, ContinuousQueryManager


# ------------------------------------------------------------ test fixtures


class TsvExtractor:
    """Parses lines of ``entity<TAB>attribute<TAB>value``; counts calls."""

    def __init__(self):
        self.calls = 0

    def extract(self, doc):
        self.calls += 1
        out = []
        offset = 0
        for line in doc.text.splitlines(keepends=True):
            stripped = line.rstrip("\n")
            parts = stripped.split("\t")
            if len(parts) == 3 and all(parts):
                entity, attribute, raw = parts
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
                out.append(Extraction(
                    entity=entity, attribute=attribute, value=value,
                    span=Span(doc.doc_id, offset, offset + len(stripped),
                              stripped),
                    confidence=0.9, extractor="tsv",
                ))
            offset += len(line)
        return out


class PoisonExtractor(TsvExtractor):
    """Raises on any document containing the string POISON."""

    def extract(self, doc):
        if "POISON" in doc.text:
            raise ValueError("poison document")
        return super().extract(doc)


def doc(doc_id, *lines):
    return Document(doc_id, "\n".join("\t".join(parts) for parts in lines))


def pipeline_over(db=None, extractor=None, **kw):
    return StreamingPipeline(db if db is not None else Database(),
                             {"tsv": extractor or TsvExtractor()}, **kw)


# Name pool with deliberate near-duplicates so merges (and, under churn,
# splits) actually happen at the resolver's default threshold.
NAME_POOL = ("Smith John", "Smith Jon", "Smyth John",
             "Jones Robert", "Jones Rob", "Baker Ann")
ATTR_POOL = ("age", "city", "score")


def cluster_key(clusters):
    return sorted((tuple(sorted(c.mention_ids)), c.canonical_name)
                  for c in clusters)


def fused_json(values):
    return json.dumps(
        [{"entity": v.entity, "attribute": v.attribute,
          "value": repr(v.value), "confidence": round(v.confidence, 12),
          "support": v.support, "conflict": v.conflict,
          "spans": [(s.doc_id, s.start, s.end) for s in v.spans]}
         for v in values], sort_keys=True)


# --------------------------------------------------------- delta source


def test_corpus_delta_source_tracks_content_hashes():
    source = CorpusDeltaSource()
    a = Document("a", "one")
    b = Document("b", "two")
    first = source.diff([a, b])
    assert [d.doc_id for d in first.added] == ["a", "b"]
    assert not first.changed and not first.removed
    # same content: empty delta even though object identity differs
    assert len(source.diff([Document("a", "one"), b])) == 0
    # change one, remove the other
    delta = source.diff([Document("b", "two!")])
    assert [d.doc_id for d in delta.changed] == ["b"]
    assert delta.removed == ("a",)
    assert delta.doc_ids() == ["b", "a"]


def test_corpus_delta_source_state_roundtrip():
    source = CorpusDeltaSource()
    source.diff([Document("a", "one"), Document("b", "two")])
    clone = CorpusDeltaSource()
    clone.restore(source.state())
    assert len(clone.diff([Document("a", "one"), Document("b", "two")])) == 0
    delta = clone.diff([Document("a", "one*")])
    assert [d.doc_id for d in delta.changed] == ["a"]
    assert delta.removed == ("b",)


def test_diff_store_reads_latest_snapshots(tmp_path):
    from repro.storage.snapshots import SnapshotStore
    store = SnapshotStore(str(tmp_path))
    store.commit(Document("a", "one"))
    source = CorpusDeltaSource()
    assert [d.doc_id for d in source.diff_store(store).added] == ["a"]
    # re-committing identical text bumps the version but not the hash
    store.commit(Document("a", "one"))
    assert len(source.diff_store(store)) == 0
    store.commit(Document("a", "two"))
    assert [d.doc_id for d in source.diff_store(store).changed] == ["a"]


# ------------------------------------------------------- pipeline basics


def test_process_writes_fused_rows_and_updates_them():
    db = Database()
    pipe = pipeline_over(db)
    written = pipe.process(DocDelta(added=(
        doc("d1", ("Baker Ann", "age", "41")),
        doc("d2", ("Baker Ann", "age", "41"), ("Baker Ann", "city", "Ur")),
    )))
    assert written == 2  # (Baker Ann, age), (Baker Ann, city)
    rows = execute_sql(
        db, "SELECT entity, attribute, value_num, value_text, support "
            "FROM fused_facts")
    by_attr = {r["attribute"]: r for r in rows}
    assert by_attr["age"]["value_num"] == 41.0
    assert by_attr["age"]["support"] == 2
    assert by_attr["city"]["value_text"] == "Ur"
    # changing d2 drops its city attribute and one age vote
    pipe.process(DocDelta(changed=(doc("d2", ("Baker Ann", "age", "39")),)))
    rows = execute_sql(
        db, "SELECT attribute, support, conflict FROM fused_facts")
    by_attr = {r["attribute"]: r for r in rows}
    assert "city" not in by_attr
    assert by_attr["age"]["support"] + by_attr["age"]["conflict"] == 2
    # removing both documents empties the table
    pipe.process(DocDelta(removed=("d1", "d2")))
    assert execute_sql(db, "SELECT entity FROM fused_facts") == []


def test_fresh_pipeline_owns_the_fused_table():
    db = Database()
    pipe = pipeline_over(db)
    pipe.process(DocDelta(added=(doc("d1", ("Baker Ann", "age", "41")),)))
    assert len(execute_sql(db, "SELECT entity FROM fused_facts")) == 1
    # a second pipeline (new process) starts from a clean table
    pipeline_over(db)
    assert execute_sql(db, "SELECT entity FROM fused_facts") == []


def test_unchanged_documents_cost_nothing():
    pipe = pipeline_over()
    pipe.process(DocDelta(added=(doc("d1", ("Baker Ann", "age", "41")),)))
    before = pipe.stats.pairs_scored
    assert pipe.process(DocDelta()) == 0
    assert pipe.stats.pairs_scored == before


def test_extraction_cache_skips_reextraction():
    extractor = TsvExtractor()
    pipe = pipeline_over(extractor=extractor, cache=LRUExtractionCache())
    d = doc("d1", ("Baker Ann", "age", "41"))
    pipe.process(DocDelta(added=(d,)))
    assert extractor.calls == 1
    pipe.process(DocDelta(removed=("d1",)))
    pipe.process(DocDelta(added=(d,)))  # same content: cache hit
    assert extractor.calls == 1
    assert fused_json(pipe.fused_values()) == fused_json(pipe.oracle_fused())


def test_poison_documents_are_dead_lettered_and_excised():
    deadletter = DeadLetterStore()
    pipe = pipeline_over(extractor=PoisonExtractor(), deadletter=deadletter)
    pipe.process(DocDelta(added=(
        doc("good", ("Baker Ann", "age", "41")),
        Document("bad", "POISON"),
    )))
    assert pipe.stats.docs_deadlettered == 1
    assert [e.doc_id for e in deadletter.entries()] == ["bad"]
    assert {v.entity for v in pipe.fused_values()} == {"Baker Ann"}
    # a good document turning poisonous is retracted from the fused state
    pipe.process(DocDelta(changed=(Document("good", "POISON"),)))
    assert pipe.fused_values() == []
    assert pipe.stats.docs_deadlettered == 2


def test_cancellation_token_stops_processing():
    event = threading.Event()
    pipe = pipeline_over(token=CancellationToken(event=event))
    pipe.process(DocDelta(added=(doc("d1", ("Baker Ann", "age", "41")),)))
    event.set()
    with pytest.raises(QueryTimeoutError):
        pipe.process(DocDelta(added=(doc("d2", ("Baker Ann", "age", "40")),)))


def test_must_and_cannot_link_propagate_to_fused_rows():
    db = Database()
    pipe = pipeline_over(db)
    pipe.process(DocDelta(added=(
        doc("d1", ("Smith John", "age", "41")),
        doc("d2", ("Baker Ann", "age", "29")),
    )))
    ids = {m.name: m.mention_id for m in pipe.resolver.mentions()}
    # force the two distinct people into one entity
    pipe.add_must(ids["Smith John"], ids["Baker Ann"])
    assert cluster_key(pipe.resolver.clusters()) \
        == cluster_key(pipe.oracle_clusters())
    assert fused_json(pipe.fused_values()) == fused_json(pipe.oracle_fused())
    assert len(pipe.resolver.clusters()) == 1
    # and split them apart again
    pipe.add_cannot(ids["Smith John"], ids["Baker Ann"])
    assert len(pipe.resolver.clusters()) == 2
    assert fused_json(pipe.fused_values()) == fused_json(pipe.oracle_fused())
    entities = {r["entity"] for r in
                execute_sql(db, "SELECT entity FROM fused_facts")}
    assert entities == {"Smith John", "Baker Ann"}


# ------------------------------------------------------ threaded pipeline


def test_threaded_pipeline_matches_sync_and_respects_bounds():
    docs = [doc(f"d{i}", (NAME_POOL[i % len(NAME_POOL)], "age", str(20 + i)))
            for i in range(30)]
    sync = pipeline_over()
    for d in docs:
        sync.process(DocDelta(added=(d,)))

    pipe = pipeline_over(queue_size=4)
    pipe.start()
    for d in docs:
        pipe.submit(DocDelta(added=(d,)))
    pipe.drain()
    pipe.stop()
    assert pipe.stats.deltas_in == len(docs)  # nothing dropped
    assert pipe.stats.max_queue_depth <= pipe.queue_size
    assert fused_json(pipe.fused_values()) == fused_json(sync.fused_values())
    assert fused_json(pipe.fused_values()) == fused_json(pipe.oracle_fused())


def test_backpressure_blocks_fast_producer():
    class SlowExtractor(TsvExtractor):
        def extract(self, doc):
            time.sleep(0.005)
            return super().extract(doc)

    pipe = pipeline_over(extractor=SlowExtractor(), queue_size=2)
    pipe.start()
    submitted = 25
    start = time.monotonic()
    for i in range(submitted):  # producer much faster than the consumer
        pipe.submit(DocDelta(added=(doc(f"d{i}", ("Baker Ann", "age", "4")),)))
    elapsed = time.monotonic() - start
    pipe.stop()
    # the producer was throttled: submitting took at least roughly the
    # consumer's processing time for the overflow beyond the queue bound
    assert elapsed > 0.005 * (submitted - 2 * pipe.queue_size - 2)
    assert pipe.stats.deltas_in == submitted  # every delta survived
    assert pipe.stats.max_queue_depth <= pipe.queue_size
    assert fused_json(pipe.fused_values()) == fused_json(pipe.oracle_fused())


def test_stage_errors_do_not_kill_the_pipeline():
    pipe = pipeline_over(extractor=PoisonExtractor(),
                         deadletter=DeadLetterStore())
    pipe.start()
    pipe.submit(DocDelta(added=(Document("bad", "POISON"),)))
    pipe.submit(DocDelta(added=(doc("good", ("Baker Ann", "age", "41")),)))
    pipe.stop()
    assert {v.entity for v in pipe.fused_values()} == {"Baker Ann"}
    assert pipe.stats.docs_deadlettered == 1


# ----------------------------------------------- differential (hypothesis)


line_strategy = st.tuples(
    st.sampled_from(NAME_POOL),
    st.sampled_from(ATTR_POOL),
    st.one_of(st.integers(1, 4).map(str),
              st.sampled_from(("Ur", "Kish", "Lagash"))),
)
text_strategy = st.lists(line_strategy, min_size=1, max_size=4)


def apply_random_delta(data, pipe, live, counter):
    """Draw one add/update/delete batch, apply it, return new counter."""
    added = []
    for _ in range(data.draw(st.integers(0, 2), label="n_add")):
        lines = data.draw(text_strategy, label="add_lines")
        added.append(doc(f"d{counter}", *lines))
        counter += 1
    changed = []
    removed = []
    if live:
        victims = data.draw(
            st.lists(st.sampled_from(sorted(live)), max_size=2,
                     unique=True), label="victims")
        for doc_id in victims:
            if data.draw(st.booleans(), label="is_removal"):
                removed.append(doc_id)
            else:
                lines = data.draw(text_strategy, label="change_lines")
                changed.append(doc(doc_id, *lines))
    delta = DocDelta(tuple(added), tuple(changed), tuple(removed))
    for d in delta.added:
        live[d.doc_id] = d
    for d in delta.changed:
        live[d.doc_id] = d
    for doc_id in delta.removed:
        del live[doc_id]
    pipe.process(delta)
    return counter


@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_incremental_state_matches_full_recompute(data):
    pipe = pipeline_over()
    live, counter = {}, 0
    for _ in range(data.draw(st.integers(2, 6), label="steps")):
        counter = apply_random_delta(data, pipe, live, counter)
        assert cluster_key(pipe.resolver.clusters()) \
            == cluster_key(pipe.oracle_clusters())
        assert fused_json(pipe.fused_values()) == fused_json(pipe.oracle_fused())


@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_constraints_survive_churn(data):
    pipe = pipeline_over()
    live, counter = {}, 0
    for _ in range(data.draw(st.integers(2, 5), label="steps")):
        counter = apply_random_delta(data, pipe, live, counter)
        mentions = pipe.resolver.mentions()
        if len(mentions) >= 2 and data.draw(st.booleans(), label="constrain"):
            pair = data.draw(st.lists(
                st.sampled_from([m.mention_id for m in mentions]),
                min_size=2, max_size=2, unique=True), label="pair")
            if data.draw(st.booleans(), label="is_must"):
                pipe.add_must(*pair)
            else:
                pipe.add_cannot(*pair)
        assert cluster_key(pipe.resolver.clusters()) \
            == cluster_key(pipe.oracle_clusters())
        assert fused_json(pipe.fused_values()) == fused_json(pipe.oracle_fused())


@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_notifications_match_result_set_deltas(data):
    """Standing-query notifications == per-commit result-set diff oracle."""
    db = Database()
    pipe = pipeline_over(db)
    manager = ContinuousQueryManager(db)
    received = []
    manager.register(ContinuousQuery(
        "all", "SELECT entity, attribute, value_num, value_text "
               "FROM fused_facts",
        callback=lambda qid, row: received.append(row)))
    live, counter, prev = {}, 0, set()
    for _ in range(data.draw(st.integers(2, 6), label="steps")):
        received.clear()
        counter = apply_random_delta(data, pipe, live, counter)
        current = {json.dumps(r, sort_keys=True) for r in execute_sql(
            db, "SELECT entity, attribute, value_num, value_text "
                "FROM fused_facts")}
        got = sorted(json.dumps(r, sort_keys=True) for r in received)
        assert got == sorted(current - prev)
        prev = current
        assert manager.poke() == 0  # delta stream left nothing behind
