"""Tests for column types and table schemas."""

import pytest

from repro.storage.rdbms.types import Column, ColumnType, SchemaError, TableSchema


def _schema():
    return TableSchema(
        "city",
        (
            Column("name", ColumnType.TEXT, nullable=False),
            Column("pop", ColumnType.INT),
            Column("temp", ColumnType.FLOAT),
            Column("capital", ColumnType.BOOL),
        ),
        primary_key="name",
    )


def test_int_validation():
    assert ColumnType.INT.validate(5) == 5
    assert ColumnType.INT.validate(None) is None
    with pytest.raises(SchemaError):
        ColumnType.INT.validate("5")
    with pytest.raises(SchemaError):
        ColumnType.INT.validate(True)  # bools are not ints here


def test_float_widens_int():
    assert ColumnType.FLOAT.validate(5) == 5.0
    assert isinstance(ColumnType.FLOAT.validate(5), float)
    with pytest.raises(SchemaError):
        ColumnType.FLOAT.validate("x")


def test_text_and_bool_validation():
    assert ColumnType.TEXT.validate("hi") == "hi"
    with pytest.raises(SchemaError):
        ColumnType.TEXT.validate(1)
    assert ColumnType.BOOL.validate(True) is True
    with pytest.raises(SchemaError):
        ColumnType.BOOL.validate(1)


def test_not_null_column():
    column = Column("name", ColumnType.TEXT, nullable=False)
    with pytest.raises(SchemaError):
        column.validate(None)


def test_schema_rejects_duplicate_columns():
    with pytest.raises(SchemaError):
        TableSchema("t", (Column("a", ColumnType.INT),
                          Column("a", ColumnType.TEXT)))


def test_schema_rejects_bad_pk():
    with pytest.raises(SchemaError):
        TableSchema("t", (Column("a", ColumnType.INT),), primary_key="b")


def test_validate_row_fills_missing_nullable():
    row = _schema().validate_row({"name": "Madison"})
    assert row == {"name": "Madison", "pop": None, "temp": None, "capital": None}


def test_validate_row_rejects_unknown_column():
    with pytest.raises(SchemaError):
        _schema().validate_row({"name": "X", "bogus": 1})


def test_with_column_and_without_column():
    schema = _schema().with_column(Column("state", ColumnType.TEXT))
    assert schema.has_column("state")
    back = schema.without_column("state")
    assert not back.has_column("state")
    with pytest.raises(SchemaError):
        _schema().without_column("name")  # cannot drop PK
    with pytest.raises(SchemaError):
        _schema().with_column(Column("pop", ColumnType.INT))


def test_renamed_column_updates_pk():
    schema = _schema().renamed_column("name", "city_name")
    assert schema.primary_key == "city_name"
    assert schema.has_column("city_name")
    with pytest.raises(SchemaError):
        schema.renamed_column("missing", "x")


def test_to_from_dict_roundtrip():
    schema = _schema()
    again = TableSchema.from_dict(schema.to_dict())
    assert again == schema


def test_column_lookup():
    schema = _schema()
    assert schema.column("pop").col_type is ColumnType.INT
    with pytest.raises(SchemaError):
        schema.column("nope")
