"""Serving-layer tests: MVCC snapshots, admission, deadlines, shutdown."""

import threading
import time

import pytest

from repro.core.serving import ServingGate
from repro.core.system import StructureManagementSystem
from repro.errors import (AdmissionRejected, CancellationToken,
                          QueryTimeoutError, ReadOnlyTransactionError)
from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.lockmgr import LockManager
from repro.storage.rdbms.qcache import QueryResultCache
from repro.storage.rdbms.sql import SqlError, execute_sql
from repro.storage.rdbms.types import Column, ColumnType, TableSchema
from repro.telemetry import metrics


def _accounts_db(n=4, balance=10):
    db = Database()
    db.create_table(TableSchema(
        "accounts",
        (Column("id", ColumnType.INT, nullable=False),
         Column("balance", ColumnType.INT)),
        primary_key="id",
    ))
    db.run(lambda t: t.insert_many(
        "accounts",
        [{"id": i, "balance": balance} for i in range(n)]))
    return db


# -------------------------------------------------------------- snapshots


def test_snapshot_ignores_uncommitted_writes():
    db = _accounts_db()
    txn = db.begin()
    row = txn.get_by_pk("accounts", 0)
    txn.update("accounts", row.rid, {"balance": 999})
    try:
        with db.begin_snapshot() as snap:
            assert snap.get_by_pk("accounts", 0).values["balance"] == 10
    finally:
        txn.abort()


def test_snapshot_reads_do_not_block_on_writer_locks():
    """A snapshot read returns immediately even while a writer holds the
    X lock on the row being read (readers never touch the lock manager)."""
    db = _accounts_db()
    db._locks = LockManager(timeout=0.2)  # a lock wait would time out fast
    txn = db.begin()
    row = txn.get_by_pk("accounts", 1)
    txn.update("accounts", row.rid, {"balance": 123})
    try:
        t0 = time.perf_counter()
        rows = execute_sql(db, "SELECT balance FROM accounts WHERE id = 1")
        elapsed = time.perf_counter() - t0
        assert rows == [{"balance": 10}]
        assert elapsed < 0.2  # did not sit in the lock queue
    finally:
        txn.abort()


def test_snapshot_transactions_are_read_only():
    db = _accounts_db()
    with db.begin_snapshot() as snap:
        with pytest.raises(ReadOnlyTransactionError):
            snap.insert("accounts", {"id": 99, "balance": 1})
        with pytest.raises(ReadOnlyTransactionError):
            snap.update("accounts", 0, {"balance": 1})
        with pytest.raises(ReadOnlyTransactionError):
            snap.delete("accounts", 0)


def test_snapshot_index_lookups_match_scans():
    db = _accounts_db(n=8)
    db.create_index("accounts", "balance")
    db.run(lambda t: t.update(
        "accounts", t.get_by_pk("accounts", 3).rid, {"balance": 77}))
    with db.begin_snapshot() as snap:
        by_index = {r.values["id"] for r in snap.lookup(
            "accounts", "balance", 77)}
        by_scan = {r.values["id"] for r in snap.scan("accounts")
                   if r.values["balance"] == 77}
        assert by_index == by_scan == {3}


def test_snapshot_versions_never_reused_across_drop_recreate():
    db = _accounts_db()
    v1 = db.begin_snapshot().version_of("accounts")
    db.drop_table("accounts")
    db.create_table(TableSchema(
        "accounts",
        (Column("id", ColumnType.INT, nullable=False),
         Column("balance", ColumnType.INT)),
        primary_key="id",
    ))
    v2 = db.begin_snapshot().version_of("accounts")
    assert v2 > v1  # a recreated table can never alias an old version


def test_snapshot_reuse_between_commits():
    db = _accounts_db()
    registry = metrics.get_registry()
    db.begin_snapshot()
    before = registry.get("rdbms.mvcc.snapshot_reuses")
    db.begin_snapshot()  # no commit in between: cached clone is reused
    assert registry.get("rdbms.mvcc.snapshot_reuses") > before


# ------------------------------------------------------ cancellation token


def test_expired_guard_cancels_select():
    db = _accounts_db()
    guard = CancellationToken.after(0.0, sql="SELECT 1")
    time.sleep(0.001)
    with pytest.raises(QueryTimeoutError):
        execute_sql(db, "SELECT * FROM accounts", guard=guard)


def test_shutdown_event_cancels_select():
    db = _accounts_db()
    event = threading.Event()
    event.set()
    guard = CancellationToken(event=event)
    with pytest.raises(QueryTimeoutError, match="shutdown"):
        execute_sql(db, "SELECT * FROM accounts", guard=guard)


def test_typed_errors_carry_sql_text():
    db = _accounts_db()
    guard = CancellationToken.after(0.0)
    time.sleep(0.001)
    with pytest.raises(QueryTimeoutError) as info:
        execute_sql(db, "SELECT id FROM accounts", guard=guard)
    assert "SELECT id FROM accounts" in str(info.value)


# ----------------------------------------------------------- result cache


def test_qcache_never_serves_stale_hit_after_commit():
    """Regression: a read that starts after a commit must see it, even
    while other threads keep the same statement hot in the cache."""
    db = _accounts_db(n=1, balance=0)
    cache = QueryResultCache(db)
    sql = "SELECT balance FROM accounts WHERE id = 0"
    stop = threading.Event()
    errors = []

    def hammer():
        try:
            while not stop.is_set():
                cache.execute(sql)
        except Exception as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(3)]
    for thread in threads:
        thread.start()
    try:
        for n in range(1, 60):
            db.run(lambda t, n=n: t.update(
                "accounts", t.get_by_pk("accounts", 0).rid, {"balance": n}))
            # Commit happened-before this lookup: a stale hit here would
            # be the coherence bug this PR fixes.
            assert cache.execute(sql) == [{"balance": n}]
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    assert not errors


def test_qcache_hits_between_commits():
    db = _accounts_db()
    cache = QueryResultCache(db)
    registry = metrics.get_registry()
    sql = "SELECT COUNT(*) AS n FROM accounts"
    assert cache.execute(sql) == [{"n": 4}]
    before = registry.get("planner.cache.hits")
    assert cache.execute(sql) == [{"n": 4}]
    assert registry.get("planner.cache.hits") > before


# -------------------------------------------------------------- admission


def test_gate_sheds_load_when_saturated():
    gate = ServingGate(max_concurrent=1, max_queue=0)
    slot = gate.admit("q1")
    with pytest.raises(AdmissionRejected) as info:
        gate.admit("q2")
    assert info.value.reason == "saturated"
    with slot:
        pass
    with gate.admit("q3"):  # slot freed: admission works again
        pass


def test_gate_queue_timeout():
    gate = ServingGate(max_concurrent=1, max_queue=4, queue_timeout=0.05)
    slot = gate.admit("q1")
    t0 = time.perf_counter()
    with pytest.raises(AdmissionRejected) as info:
        gate.admit("q2")
    assert info.value.reason == "queue-timeout"
    assert time.perf_counter() - t0 < 2.0
    with slot:
        pass


def test_gate_drain_rejects_and_waits():
    gate = ServingGate(max_concurrent=2, max_queue=2)
    slot = gate.admit("q1")
    assert gate.drain(timeout=0.05) is False  # q1 still running
    with pytest.raises(AdmissionRejected) as info:
        gate.admit("q2")
    assert info.value.reason == "draining"
    with slot:
        pass
    assert gate.drain(timeout=1.0) is True  # idempotent, now empty


def test_system_query_deadline_and_admission():
    system = StructureManagementSystem(max_concurrent_queries=1,
                                       max_queued_queries=0,
                                       admission_timeout_seconds=0.1)
    try:
        assert system.query("SELECT COUNT(*) AS n FROM facts") == [{"n": 0}]
        with pytest.raises(QueryTimeoutError):
            system.query("SELECT * FROM facts", deadline_seconds=0.0)
        slot = system.gate.admit("held")
        with pytest.raises(AdmissionRejected):
            system.query("SELECT * FROM facts")
        with slot:
            pass
    finally:
        system.close()


def test_system_close_drains_and_is_idempotent():
    system = StructureManagementSystem()
    system.query("SELECT COUNT(*) AS n FROM facts")
    system.close()
    system.close()  # second close is a no-op
    with pytest.raises(AdmissionRejected) as info:
        system.query("SELECT COUNT(*) AS n FROM facts")
    assert info.value.reason == "draining"


def test_session_statements_respect_deadline():
    system = StructureManagementSystem()
    try:
        session = system.session("alice")
        session.deadline_seconds = 0.0
        time.sleep(0.001)
        with pytest.raises(QueryTimeoutError):
            session.structured("SELECT * FROM facts")
    finally:
        system.close()


# ------------------------------------------------------------- CLI codes


def test_cli_exit_codes_distinguish_timeout_from_failure(tmp_path,
                                                         monkeypatch):
    from repro import cli

    ws = str(tmp_path / "ws")
    assert cli.main(["--workspace", ws, "sql", "SELECT FROM"]) == 3

    def boom(args):
        raise QueryTimeoutError("query exceeded its deadline",
                                sql=args.query)

    monkeypatch.setattr(cli, "cmd_sql", boom)
    assert cli.main(["--workspace", ws, "sql", "SELECT 1"]) == 4


def test_sql_error_still_raised_for_bad_statements():
    db = _accounts_db()
    with pytest.raises(SqlError):
        execute_sql(db, "SELEC balance FROM accounts")
