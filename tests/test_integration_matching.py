"""Tests for schema matching, entity resolution, and fusion."""

import pytest

from repro.docmodel.document import Span
from repro.extraction.base import Extraction
from repro.integration.entity_resolution import (
    EntityResolver,
    MatchConstraints,
    Mention,
    default_blocking_key,
)
from repro.integration.fusion import fuse_extractions
from repro.integration.schema_matching import SchemaMatcher


# ------------------------------------------------------------ schema match


def test_schema_match_synonyms():
    matcher = SchemaMatcher(threshold=0.4)
    matches = matcher.match(
        {"location": ["123 Main St", "9 Oak Ave"]},
        {"address": ["55 Elm St", "123 Main St"]},
    )
    assert matches and matches[0].left == "location" and matches[0].right == "address"


def test_schema_match_instance_numeric_overlap():
    matcher = SchemaMatcher(threshold=0.3, name_weight=0.2, instance_weight=0.8)
    matches = matcher.match(
        {"temp_f": [60.0, 70.0, 80.0]},
        {"temperature": [65.0, 75.0], "year": [1990.0, 2005.0]},
    )
    assert matches[0].right == "temperature"


def test_schema_match_type_disagreement_zero_instance():
    matcher = SchemaMatcher(threshold=0.01, name_weight=0.0, instance_weight=1.0)
    matches = matcher.match({"a": [1.0, 2.0]}, {"b": ["x", "y"]})
    assert matches == []


def test_schema_match_one_to_one():
    matcher = SchemaMatcher(threshold=0.3)
    matches = matcher.match(
        {"pop": [100, 200], "population": [100, 200]},
        {"population": [150, 250]},
    )
    assert len(matches) == 1  # only one left attribute may claim 'population'


def test_schema_match_constraints():
    matcher = SchemaMatcher(threshold=0.2)
    left = {"location": ["a"], "pop": [1]}
    right = {"address": ["a"], "population": [1]}
    pinned = matcher.match(left, right, must_match={("pop", "address")})
    assert any(m.left == "pop" and m.right == "address" and m.score == 1.0
               for m in pinned)
    forbidden = matcher.match(left, right,
                              cannot_match={("location", "address")})
    assert not any(m.left == "location" and m.right == "address"
                   for m in forbidden)


def test_schema_match_top_k_candidates():
    matcher = SchemaMatcher()
    candidates = matcher.top_k_candidates(
        "location", ["123 Main St"],
        {"address": ["123 Main St"], "phone": ["555-1234"], "name": ["Bob"]},
        k=2,
    )
    assert len(candidates) == 2
    assert candidates[0].right == "address"
    # state restored after the call
    assert matcher.one_to_one and matcher.threshold == 0.5


# --------------------------------------------------------------------- ER


def _mentions():
    return [
        Mention(0, "David Smith"),
        Mention(1, "D. Smith"),
        Mention(2, "Smith, David"),
        Mention(3, "Jane Doe"),
        Mention(4, "J. Doe"),
        Mention(5, "Albert Zweig"),
    ]


def test_resolver_clusters_variants():
    clusters = EntityResolver().resolve(_mentions())
    by_mention = {}
    for cluster in clusters:
        for mid in cluster.mention_ids:
            by_mention[mid] = cluster.cluster_id
    assert by_mention[0] == by_mention[1]  # David Smith ~ D. Smith
    assert by_mention[3] == by_mention[4]  # Jane Doe ~ J. Doe
    assert by_mention[0] != by_mention[3]
    assert by_mention[5] not in (by_mention[0], by_mention[3])


def test_resolver_canonical_name_is_longest():
    clusters = EntityResolver().resolve([Mention(0, "D. Smith"),
                                         Mention(1, "David Smith")])
    assert clusters[0].canonical_name == "David Smith"


def test_blocking_reduces_pairs():
    mentions = [Mention(i, name) for i, name in enumerate(
        ["Al Brown", "Bo Crane", "Cy Drake", "Di Evans", "Ed Frank"]
    )]
    blocked = EntityResolver().candidate_pairs(mentions)
    unblocked = EntityResolver(blocking_key=None).candidate_pairs(mentions)
    assert len(unblocked) == 10
    assert len(blocked) < len(unblocked)


def test_default_blocking_key_groups_smiths():
    assert default_blocking_key(Mention(0, "David Smith")) == \
        default_blocking_key(Mention(1, "D. Smith"))


def test_constraints_must_link_overrides_score():
    mentions = [Mention(0, "Alpha One"), Mention(1, "Beta Two")]
    constraints = MatchConstraints()
    constraints.add_must(0, 1)
    clusters = EntityResolver(blocking_key=None).resolve(mentions, constraints)
    assert len(clusters) == 1


def test_constraints_cannot_link_blocks_merge():
    mentions = [Mention(0, "David Smith"), Mention(1, "D. Smith")]
    constraints = MatchConstraints()
    constraints.add_cannot(0, 1)
    clusters = EntityResolver().resolve(mentions, constraints)
    assert len(clusters) == 2


def test_constraints_flip():
    constraints = MatchConstraints()
    constraints.add_must(0, 1)
    constraints.add_cannot(1, 0)  # normalized to same pair, flips it
    assert (0, 1) in constraints.cannot_link
    assert (0, 1) not in constraints.must_link


def test_attribute_agreement_shifts_score():
    resolver = EntityResolver(attribute_weight=0.15)
    base = resolver.score_pair(Mention(0, "D. Smith"), Mention(1, "Dan Smith"))
    agree = resolver.score_pair(
        Mention(0, "D. Smith", (("affiliation", "UW"),)),
        Mention(1, "Dan Smith", (("affiliation", "UW"),)),
    )
    conflict = resolver.score_pair(
        Mention(0, "D. Smith", (("affiliation", "UW"),)),
        Mention(1, "Dan Smith", (("affiliation", "MIT"),)),
    )
    assert agree > base > conflict


def test_uncertain_pairs_near_threshold():
    resolver = EntityResolver(threshold=0.85)
    pairs = resolver.uncertain_pairs(_mentions(), band=0.2, limit=3)
    assert len(pairs) <= 3
    for pair in pairs:
        assert abs(pair.score - 0.85) <= 0.2


# ------------------------------------------------------------------ fusion


def _extractions():
    span = Span("d", 0, 2, "70")
    return [
        Extraction("Madison", "sep_temp", 70.0, span, 0.95, "infobox"),
        Extraction("Madison", "sep_temp", 70.0, span, 0.6, "prose"),
        Extraction("Madison", "sep_temp", 7.0, span, 0.4, "noisy"),
        Extraction("Madison", "population", 233209.0, span, 0.9, "infobox"),
    ]


def test_fusion_weighted_vote_picks_majority_confidence():
    fused = {f.attribute: f for f in fuse_extractions(_extractions())}
    assert fused["sep_temp"].value == 70.0
    assert fused["sep_temp"].support == 2
    assert fused["sep_temp"].conflict == 1
    assert fused["population"].value == 233209.0


def test_fusion_max_confidence_strategy():
    span = Span("d", 0, 1, "x")
    extractions = [
        Extraction("e", "a", "low", span, 0.3),
        Extraction("e", "a", "high", span, 0.9),
    ]
    fused = fuse_extractions(extractions, strategy="max_confidence")
    assert fused[0].value == "high"


def test_fusion_numeric_median_robust_to_outlier():
    span = Span("d", 0, 1, "x")
    extractions = [
        Extraction("e", "t", 70.0, span, 0.8),
        Extraction("e", "t", 71.0, span, 0.8),
        Extraction("e", "t", 999.0, span, 0.8),
    ]
    fused = fuse_extractions(extractions, strategy="numeric_median")
    assert fused[0].value in (70.0, 71.0)


def test_fusion_unknown_strategy():
    with pytest.raises(ValueError):
        fuse_extractions([], strategy="bogus")


def test_fusion_confidence_in_bounds():
    for fact in fuse_extractions(_extractions()):
        assert 0.0 <= fact.confidence <= 1.0


def test_fusion_keeps_supporting_spans():
    fused = {f.attribute: f for f in fuse_extractions(_extractions())}
    assert len(fused["sep_temp"].spans) == 2
