"""Tests for the xlog parser and expression language."""

import pytest

from repro.lang.ast import (
    AskOp,
    Compare,
    Const,
    DocsOp,
    ExtractOp,
    FieldRef,
    FilterOp,
    FuseOp,
    JoinOp,
    LimitOp,
    Logic,
    ResolveOp,
    SelectOp,
    UnionOp,
    eval_expr,
    expr_fields,
    render_expr,
)
from repro.lang.parser import ParseError, parse_expression, parse_program

PROGRAM = """
# extract temperatures, curate them, publish
pages  = docs()
temps  = extract(pages, "temp_rules")
good   = filter(temps, confidence >= 0.6 and value < 130)
canon  = resolve(good, "er")
fused  = fuse(canon, "weighted_vote")
asked  = ask(fused, "verify", where = confidence < 0.8, redundancy = 5)
final  = select(asked, entity, attribute, value)
output final
"""


def test_parse_program_shapes():
    ops, output = parse_program(PROGRAM)
    assert output == "final"
    types = [type(op).__name__ for op in ops]
    assert types == ["DocsOp", "ExtractOp", "FilterOp", "ResolveOp",
                     "FuseOp", "AskOp", "SelectOp"]


def test_parse_extract_and_filter_details():
    ops, _ = parse_program(PROGRAM)
    extract = next(o for o in ops if isinstance(o, ExtractOp))
    assert extract.extractor == "temp_rules"
    filter_op = next(o for o in ops if isinstance(o, FilterOp))
    assert isinstance(filter_op.predicate, Logic)
    assert expr_fields(filter_op.predicate) == {"confidence", "value"}


def test_parse_ask_kwargs():
    ops, _ = parse_program(PROGRAM)
    ask = next(o for o in ops if isinstance(o, AskOp))
    assert ask.mode == "verify"
    assert ask.redundancy == 5
    assert ask.where is not None


def test_parse_join_union_limit():
    source = (
        'a = docs()\nx = extract(a, "e1")\ny = extract(a, "e2")\n'
        "j = join(x, y, on = entity)\nu = union(x, y)\nl = limit(u, 10)\n"
        "output j"
    )
    ops, _ = parse_program(source)
    join = next(o for o in ops if isinstance(o, JoinOp))
    assert join.on == "entity" and join.inputs == ["x", "y"]
    union = next(o for o in ops if isinstance(o, UnionOp))
    assert union.inputs == ["x", "y"]
    limit = next(o for o in ops if isinstance(o, LimitOp))
    assert limit.n == 10


def test_parse_errors():
    with pytest.raises(ParseError):
        parse_program("x = docs()\n")  # no output
    with pytest.raises(ParseError):
        parse_program("output nowhere")
    with pytest.raises(ParseError):
        parse_program("x = docs()\nx = docs()\noutput x")  # duplicate var
    with pytest.raises(ParseError):
        parse_program("x = bogus()\noutput x")
    with pytest.raises(ParseError):
        parse_program('x = extract(a)\noutput x')  # missing extractor arg
    with pytest.raises(ParseError):
        parse_program('x = docs()\ny = ask(x, "badmode")\noutput y')
    with pytest.raises(ParseError):
        parse_program("x = docs()\noutput x\noutput x")


def test_comments_and_blank_lines_ignored():
    ops, output = parse_program("# hi\n\nx = docs()  # trailing\noutput x")
    assert output == "x" and isinstance(ops[0], DocsOp)


def test_expression_comparisons():
    expr = parse_expression("confidence >= 0.5")
    assert isinstance(expr, Compare)
    assert eval_expr(expr, {"confidence": 0.7}) is True
    assert eval_expr(expr, {"confidence": 0.3}) is False
    assert eval_expr(expr, {}) is False  # missing field is never a match


def test_expression_logic_and_parens():
    expr = parse_expression("(a = 1 or b = 2) and not c = 3")
    assert eval_expr(expr, {"a": 1, "c": 0}) is True
    assert eval_expr(expr, {"a": 1, "c": 3}) is False
    assert eval_expr(expr, {"a": 0, "b": 0, "c": 0}) is False


def test_expression_strings_and_booleans():
    expr = parse_expression('attribute = "sep_temp"')
    assert eval_expr(expr, {"attribute": "sep_temp"}) is True
    expr2 = parse_expression("flag = true")
    assert eval_expr(expr2, {"flag": True}) is True
    expr3 = parse_expression("x = none")
    # comparisons with None are False by design
    assert eval_expr(expr3, {"x": None}) is False


def test_expression_type_mismatch_is_false():
    expr = parse_expression("value < 10")
    assert eval_expr(expr, {"value": "a string"}) is False


def test_expression_parse_errors():
    with pytest.raises(ParseError):
        parse_expression("a = ")
    with pytest.raises(ParseError):
        parse_expression("(a = 1")
    with pytest.raises(ParseError):
        parse_expression("a = 1 extra garbage =")


def test_render_expr_roundtrips_semantics():
    source = "confidence >= 0.5 and (value < 130 or value > 200)"
    expr = parse_expression(source)
    rendered = render_expr(expr)
    again = parse_expression(rendered)
    for row in ({"confidence": 0.6, "value": 100},
                {"confidence": 0.6, "value": 150},
                {"confidence": 0.6, "value": 250},
                {"confidence": 0.4, "value": 100}):
        assert eval_expr(expr, row) == eval_expr(again, row)
