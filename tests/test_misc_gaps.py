"""Coverage for smaller corners: provenance persistence, plan rendering,
snapshot history, mapreduce accounting."""

import pytest

from repro.cluster.mapreduce import MapReduceJob, run_mapreduce
from repro.cluster.simulator import ClusterConfig
from repro.docmodel.document import Document, Span
from repro.extraction.base import Extraction
from repro.lang.ast import DedupOp, DocFilterOp
from repro.storage.snapshots import SnapshotStore
from repro.uncertainty.provenance import ProvenanceGraph


def _graph():
    graph = ProvenanceGraph()
    extraction = Extraction("Madison", "sep_temp", 70.0,
                            Span("d1", 5, 7, "70"), 0.9, "infobox")
    node = graph.record_extraction(extraction)
    fact = graph.record_fact("Madison", "sep_temp", 70.0, 0.95, [node])
    graph.record_feedback("curated by alice", fact)
    return graph, fact


def test_provenance_save_load_roundtrip(tmp_path):
    graph, fact = _graph()
    path = str(tmp_path / "prov.json")
    graph.save(path)
    again = ProvenanceGraph.load(path)
    assert len(again) == len(graph)
    original = graph.explain(fact.node_id).render()
    restored = again.explain(fact.node_id).render()
    assert original == restored
    # counters continue, so new nodes do not collide
    new_node = again.add_node("fact", "another")
    assert new_node.node_id not in {fact.node_id}


def test_provenance_load_preserves_queries(tmp_path):
    graph, _ = _graph()
    path = str(tmp_path / "prov.json")
    graph.save(path)
    again = ProvenanceGraph.load(path)
    found = again.find_facts(entity="Madison", attribute="sep_temp")
    assert len(found) == 1
    assert again.explain(found[0].node_id).leaf_spans()


def test_op_describe_strings():
    dedup = DedupOp(name="d", inputs=["x"], keys=["entity"])
    assert dedup.describe() == "dedup(x, entity)"
    assert DedupOp(name="d", inputs=["x"]).describe() == "dedup(x, *)"
    prefilter = DocFilterOp(name="p", inputs=["a"],
                            keyword_groups=[["sep", "temp"], ["jan"]])
    assert prefilter.describe() == "docfilter(a, sep&temp | jan)"


def test_snapshot_history_metadata(tmp_path):
    store = SnapshotStore(str(tmp_path), keyframe_every=2)
    for i in range(4):
        store.commit(Document("p", f"v{i}\ncommon line\n"))
    infos = list(store.history("p"))
    assert [i.version for i in infos] == [0, 1, 2, 3]
    assert [i.is_keyframe for i in infos] == [True, False, True, False]
    assert all(i.byte_size > 0 for i in infos)


def test_mapreduce_result_accounting():
    job = MapReduceJob(
        map_fn=lambda x: [(x % 2, x)],
        reduce_fn=lambda key, values: sum(values),
        split_size=3, num_reducers=2,
    )
    result = run_mapreduce(job, list(range(12)),
                           config=ClusterConfig(num_workers=2, seed=1))
    assert result.makespan == result.map_makespan + result.reduce_makespan
    assert result.shuffle_records == 12
    assert result.output[0] + result.output[1] == sum(range(12))


def test_graph_load_missing_file_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        ProvenanceGraph.load(str(tmp_path / "absent.json"))
