"""Tests for table statistics (repro.storage.rdbms.stats)."""

import pytest

from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.sql import execute_sql
from repro.storage.rdbms.stats import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    HISTOGRAM_BUCKETS,
    _build_column_stats,
)
from repro.telemetry import metrics


@pytest.fixture
def db():
    database = Database()
    execute_sql(
        database,
        "CREATE TABLE item (item_id INT PRIMARY KEY, cat TEXT, score INT)",
    )
    rows = ", ".join(
        f"({i}, 'cat{i % 4}', {i * 10})" for i in range(100)
    )
    execute_sql(
        database,
        f"INSERT INTO item (item_id, cat, score) VALUES {rows}",
    )
    return database


def test_analyze_row_count_and_distinct(db):
    stats = db.statistics().analyze("item")
    assert stats.row_count == 100
    assert stats.columns["cat"].distinct == 4
    assert stats.columns["item_id"].distinct == 100
    assert stats.columns["score"].min_value == 0
    assert stats.columns["score"].max_value == 990


def test_eq_selectivity_uses_distinct(db):
    manager = db.statistics()
    assert manager.eq_selectivity("item", "cat") == pytest.approx(0.25)
    assert manager.eq_selectivity("item", "item_id") == pytest.approx(0.01)


def test_range_selectivity_from_histogram(db):
    manager = db.statistics()
    # score is uniform over 0..990; the bottom tenth should estimate ~0.1
    frac = manager.range_selectivity("item", "score", None, 100, True, False)
    assert 0.03 < frac < 0.25
    full = manager.range_selectivity("item", "score", 0, 990, True, True)
    assert full > 0.9


def test_unknown_column_falls_back_to_defaults(db):
    manager = db.statistics()
    assert manager.eq_selectivity("item", "nope") == DEFAULT_EQ_SELECTIVITY
    assert manager.range_selectivity(
        "item", "nope", 0, 1, True, True) == DEFAULT_RANGE_SELECTIVITY


def test_version_bumps_on_commit_and_ddl(db):
    manager = db.statistics()
    before = manager.version("item")
    execute_sql(db, "INSERT INTO item (item_id, cat, score) "
                    "VALUES (1000, 'cat0', 1)")
    assert manager.version("item") == before + 1
    execute_sql(db, "CREATE TABLE other (x INT PRIMARY KEY)")
    assert manager.version("other") >= 1  # DDL notifies too
    db.drop_table("other")
    assert manager.version("other") >= 2


def test_incremental_refresh_under_small_drift(db):
    manager = db.statistics()
    manager.analyze("item")
    registry = metrics.get_registry()
    full_before = registry.get("planner.analyze.full")
    execute_sql(db, "INSERT INTO item (item_id, cat, score) "
                    "VALUES (2000, 'cat1', 5)")
    stats = manager.stats("item")  # 1% drift: row count folded in, no scan
    assert stats.row_count == 101
    assert registry.get("planner.analyze.full") == full_before
    assert registry.get("planner.analyze.incremental") >= 1


def test_full_reanalyze_on_large_drift(db):
    manager = db.statistics()
    manager.analyze("item")
    registry = metrics.get_registry()
    full_before = registry.get("planner.analyze.full")
    rows = ", ".join(f"({i}, 'catX', 7)" for i in range(5000, 5040))
    execute_sql(db, f"INSERT INTO item (item_id, cat, score) VALUES {rows}")
    stats = manager.stats("item")  # 40% drift: full analyze
    assert registry.get("planner.analyze.full") == full_before + 1
    assert stats.columns["cat"].distinct == 5  # picked up catX


def test_stats_cached_while_version_unchanged(db):
    manager = db.statistics()
    first = manager.stats("item")
    assert manager.stats("item") is first


def test_column_stats_nulls_and_histogram_shape():
    stats = _build_column_stats([None, 1, 2, 3, 4, None])
    assert stats.total == 6
    assert stats.null_count == 2
    assert stats.distinct == 4
    assert stats.non_null_fraction == pytest.approx(4 / 6)
    assert len(stats.histogram) == HISTOGRAM_BUCKETS + 1
    assert stats.histogram[0] == 1 and stats.histogram[-1] == 4


def test_column_stats_mixed_types_keep_distinct_only():
    stats = _build_column_stats(["a", 1, "b"])
    assert stats.distinct == 3
    assert stats.histogram == ()
    assert stats.range_selectivity(0, 10, True, True) \
        == DEFAULT_RANGE_SELECTIVITY


def test_empty_table_stats():
    db = Database()
    execute_sql(db, "CREATE TABLE empty (x INT PRIMARY KEY)")
    stats = db.statistics().stats("empty")
    assert stats.row_count == 0
    assert db.statistics().eq_selectivity("empty", "x") \
        == DEFAULT_EQ_SELECTIVITY
