"""Tests for the text-visualization exploitation mode."""

import pytest

from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.sql import execute_sql
from repro.userlayer.search import KeywordSearchEngine
from repro.userlayer.session import ExplorationSession
from repro.userlayer.translate import QueryTranslator
from repro.userlayer.visualize import bar_chart, histogram, sparkline, table


def test_bar_chart_renders_labels_and_values():
    rows = [{"city": "Madison", "n": 10}, {"city": "Austin", "n": 20}]
    chart = bar_chart(rows, "city", "n")
    lines = chart.splitlines()
    assert len(lines) == 2
    assert "Madison" in lines[0] and "10" in lines[0]
    # Austin's bar is twice Madison's
    assert lines[1].count("█") == 2 * lines[0].count("█")


def test_bar_chart_validates_input():
    with pytest.raises(ValueError):
        bar_chart([], "a", "b")
    with pytest.raises(ValueError):
        bar_chart([{"a": "x", "b": "not a number"}], "a", "b")


def test_bar_chart_handles_negative_values():
    chart = bar_chart([{"k": "loss", "v": -5}, {"k": "gain", "v": 5}],
                      "k", "v")
    assert "-5" in chart and "5" in chart


def test_sparkline_shape():
    line = sparkline([1, 2, 3, 4, 5, 4, 3, 2, 1])
    assert len(line) == 9
    assert line[0] == "▁"
    assert max(line) == line[4]  # peak mid-series


def test_sparkline_constant_series():
    line = sparkline([5, 5, 5])
    assert len(line) == 3
    assert len(set(line)) == 1


def test_sparkline_validates():
    with pytest.raises(ValueError):
        sparkline([])
    with pytest.raises(ValueError):
        sparkline(["x"])


def test_histogram_bins_and_counts():
    values = [1] * 10 + [9] * 5
    text = histogram(values, bins=4)
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].endswith("10")
    assert lines[-1].endswith("5")


def test_histogram_validates():
    with pytest.raises(ValueError):
        histogram([])
    with pytest.raises(ValueError):
        histogram([1.0], bins=0)


def test_table_rendering_and_truncation():
    rows = [{"a": i, "b": f"row{i}"} for i in range(30)]
    text = table(rows, limit=5)
    assert "a" in text.splitlines()[0]
    assert "... 25 more rows" in text
    assert table([]) == "(no rows)"


def test_session_visualize_mode():
    db = Database()
    execute_sql(db, "CREATE TABLE facts (entity TEXT, value_num FLOAT)")
    execute_sql(db, "INSERT INTO facts (entity, value_num) VALUES "
                    "('Madison', 45.0), ('Austin', 68.0), ('Portland', 54.0)")
    session = ExplorationSession(
        search=KeywordSearchEngine(),
        translator=QueryTranslator(table="facts", entity_column="entity"),
        db=db,
    )
    chart = session.visualize(
        "SELECT entity, AVG(value_num) AS t FROM facts GROUP BY entity",
        "entity", "t",
    )
    assert "Madison" in chart and "Austin" in chart
    assert session.history[-1].mode == "visualize"
    # visualization participates in iterative refinement
    refined = session.refine("value_num > 50")
    assert {r["entity"] for r in refined} == {"Austin", "Portland"}
