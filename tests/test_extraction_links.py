"""Tests for the wiki-link extractor."""

from repro.docmodel.document import Document
from repro.extraction.links import LinkExtractor

PAGE = (
    "'''Madison''' is the capital of [[Wisconsin]]. It sits in "
    "[[Dane County|the county]] near [[Lake Mendota]]. "
    "See [[Wisconsin]] again and [[Geography of Wisconsin#Climate]]."
)


def test_links_extracted_with_page_entity():
    results = LinkExtractor().extract(Document("madison", PAGE))
    assert all(r.entity == "Madison" for r in results)
    targets = [r.value for r in results]
    assert targets == ["Wisconsin", "Dane County", "Lake Mendota",
                       "Geography of Wisconsin"]


def test_duplicate_targets_collapse():
    results = LinkExtractor().extract(Document("madison", PAGE))
    assert [r.value for r in results].count("Wisconsin") == 1


def test_piped_label_and_section_anchor_stripped():
    doc = Document("d", "x [[Target Page#Section|display text]] y")
    results = LinkExtractor().extract(doc)
    assert results[0].value == "Target Page"


def test_entity_falls_back_to_doc_id():
    doc = Document("plain_doc", "no bold title, just [[A Link]]")
    results = LinkExtractor().extract(doc)
    assert results[0].entity == "plain_doc"


def test_spans_cover_link_markup():
    doc = Document("d", "before [[Somewhere]] after")
    result = LinkExtractor().extract(doc)[0]
    assert doc.text[result.span.start:result.span.end] == "[[Somewhere]]"


def test_no_links_no_output():
    assert LinkExtractor().extract(Document("d", "plain text")) == []


def test_link_graph_queryable_through_system():
    from repro.core.system import FACTS_TABLE, StructureManagementSystem

    docs = [
        Document("a", "'''PageA''' links [[PageB]] and [[PageC]]."),
        Document("b", "'''PageB''' links [[PageC]]."),
        Document("c", "'''PageC''' stands alone."),
    ]
    system = StructureManagementSystem()
    system.registry.register_extractor("links", LinkExtractor())
    system.ingest(docs)
    system.generate('p = docs()\nl = extract(p, "links")\noutput l')
    inbound = system.query(
        f"SELECT value_text, COUNT(*) AS n FROM {FACTS_TABLE} "
        "WHERE attribute = 'links_to' GROUP BY value_text "
        "ORDER BY n DESC"
    )
    assert inbound[0]["value_text"] == "PageC"
    assert inbound[0]["n"] == 2
