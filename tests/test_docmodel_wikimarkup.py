"""Tests for the wiki-markup parser."""

from repro.docmodel.document import Document
from repro.docmodel.wikimarkup import (
    parse_headings,
    parse_infoboxes,
    parse_tables,
    parse_wiki_page,
    strip_markup,
)

PAGE = """{{Infobox city
 | name = Madison
 | state = Wisconsin
 | sep_temp = 70
 | population = 233,209
}}

'''Madison''' is the capital of [[Wisconsin]].

== Climate ==
The weather varies.

{|
! month !! temperature
|-
| January || 26
|-
| September || 70
|}
"""


def test_infobox_fields_parsed():
    box = parse_infoboxes(Document("m", PAGE))[0]
    assert box.box_type == "city"
    assert box.fields["name"] == "Madison"
    assert box.fields["sep_temp"] == "70"
    assert box.fields["population"] == "233,209"


def test_infobox_field_spans_match_source():
    doc = Document("m", PAGE)
    box = parse_infoboxes(doc)[0]
    for key, span in box.field_spans.items():
        assert doc.text[span.start:span.end] == box.fields[key]


def test_infobox_span_covers_template():
    doc = Document("m", PAGE)
    box = parse_infoboxes(doc)[0]
    assert doc.text[box.span.start:box.span.start + 2] == "{{"
    assert doc.text[box.span.end - 2:box.span.end] == "}}"


def test_infobox_nested_template_value():
    text = "{{Infobox city | name = Springfield | coord = {{coord|44|N}} | pop = 5 }}"
    box = parse_infoboxes(Document("d", text))[0]
    assert box.fields["coord"] == "{{coord|44|N}}"
    assert box.fields["pop"] == "5"


def test_infobox_unbalanced_is_skipped():
    assert parse_infoboxes(Document("d", "{{Infobox city | name = X")) == []


def test_multiple_infoboxes():
    text = "{{Infobox city | name = A }} text {{Infobox person | name = B }}"
    boxes = parse_infoboxes(Document("d", text))
    assert [b.box_type for b in boxes] == ["city", "person"]


def test_table_headers_and_rows():
    table = parse_tables(Document("m", PAGE))[0]
    assert table.headers == ["month", "temperature"]
    assert ["January", "26"] in table.rows
    assert ["September", "70"] in table.rows


def test_table_multi_cell_rows():
    text = "{|\n! a !! b !! c\n|-\n| 1 || 2 || 3\n|}"
    table = parse_tables(Document("d", text))[0]
    assert table.rows == [["1", "2", "3"]]


def test_headings():
    headings = parse_headings(Document("m", PAGE))
    assert len(headings) == 1
    assert headings[0].title == "Climate"
    assert headings[0].level == 2


def test_strip_markup_removes_templates_and_links():
    plain = strip_markup(PAGE)
    assert "Infobox" not in plain
    assert "[[" not in plain
    assert "Madison is the capital of Wisconsin." in plain
    assert "month !! temperature" not in plain


def test_strip_markup_link_with_label():
    assert strip_markup("see [[Page|the label]] here") == "see the label here"


def test_parse_wiki_page_bundles_everything():
    page = parse_wiki_page(Document("m", PAGE))
    assert page.infobox("city") is not None
    assert page.infobox("CITY") is not None  # case-insensitive
    assert page.infobox("person") is None
    assert len(page.tables) == 1
    assert len(page.headings) == 1
    assert "Madison is the capital" in page.plain_text
