"""Differential property tests: sharded parallel execution vs unsharded.

The unsharded naive interpreter (``use_planner=False``) is the oracle:
for every generated query, a table sharded into 1, 2 or 8 shards and
executed through the parallel operators (ParallelScan / heapq shard
merge / partial->final aggregation) must return the *identical* row
list — same rows, same order.  Compaction state varies too, so both the
frozen-segment and tail-row worker paths are exercised.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.backends import SerialBackend
from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.sql import execute_sql
from repro.storage.rdbms.types import Column, ColumnType, TableSchema

_NAMES = ["alpha", "beta", "gamma", "delta", "epsilon"]

rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(_NAMES + [None]),
        st.integers(min_value=-50, max_value=50),
        st.floats(min_value=-1000, max_value=1000, allow_nan=False,
                  allow_infinity=False),
    ),
    min_size=0, max_size=40,
)

shard_count_strategy = st.sampled_from([1, 2, 8])
shard_key_strategy = st.sampled_from(["name", "qty"])


def _schema():
    return TableSchema(
        "t",
        (Column("rid", ColumnType.INT, nullable=False),
         Column("name", ColumnType.TEXT),
         Column("qty", ColumnType.INT),
         Column("score", ColumnType.FLOAT)),
        primary_key="rid",
    )


def _load(rows, shard_key=None, shard_count=1, compact=False):
    db = Database()
    if shard_key is not None and shard_count > 1:
        db.create_table(_schema(), shard_key=shard_key,
                        shard_count=shard_count)
    else:
        db.create_table(_schema())
    with db.begin() as txn:
        for i, (name, qty, score) in enumerate(rows):
            txn.insert("t", {"rid": i, "name": name, "qty": qty,
                             "score": score})
    if compact:
        db.compact("t")
    db.exec_backend = SerialBackend()
    return db


def _canon(result):
    return json.dumps(result, sort_keys=True, default=str)


@given(
    rows=rows_strategy,
    shards=shard_count_strategy,
    shard_key=shard_key_strategy,
    compact=st.booleans(),
    template=st.sampled_from([
        "qty = {n}",
        "qty > {n} AND qty <= {m}",
        "name = '{name}'",
        "name = '{name}' AND qty >= {n}",
        "qty IN ({n}, {m}, 0)",
        "name IN ('{name}', NULL)",
        "name IS NULL",
        "name = '{name}' OR qty = {n}",
    ]),
    tail=st.sampled_from(["", " ORDER BY qty", " ORDER BY qty DESC LIMIT 3",
                          " LIMIT 4"]),
    n=st.integers(-50, 50),
    m=st.integers(-50, 50),
    name=st.sampled_from(_NAMES),
)
@settings(max_examples=60, deadline=None)
def test_sharded_select_matches_unsharded(rows, shards, shard_key, compact,
                                          template, tail, n, m, name):
    sharded = _load(rows, shard_key, shards, compact)
    oracle = _load(rows)
    where = template.format(n=n, m=m, name=name)
    sql = f"SELECT * FROM t WHERE {where}{tail}"
    assert _canon(execute_sql(sharded, sql)) == \
        _canon(execute_sql(oracle, sql, use_planner=False)), sql


@given(
    rows=rows_strategy,
    shards=shard_count_strategy,
    shard_key=shard_key_strategy,
    compact=st.booleans(),
    sql=st.sampled_from([
        "SELECT COUNT(*) AS n FROM t",
        "SELECT COUNT(*) AS n, SUM(qty) AS s, MIN(qty) AS lo, "
        "MAX(name) AS hi FROM t",
        "SELECT name, COUNT(*) AS n, SUM(qty) AS s FROM t GROUP BY name",
        "SELECT qty, COUNT(*) AS n FROM t WHERE qty > 0 GROUP BY qty",
        # FLOAT aggregates: gated out of partial merge, serial fold over
        # the globally rid-ordered parallel scan must still match
        "SELECT name, SUM(score) AS s, AVG(score) AS a FROM t "
        "GROUP BY name",
        "SELECT AVG(qty) AS a FROM t",
    ]),
)
@settings(max_examples=60, deadline=None)
def test_sharded_aggregates_match_unsharded(rows, shards, shard_key,
                                            compact, sql):
    sharded = _load(rows, shard_key, shards, compact)
    oracle = _load(rows)
    assert _canon(execute_sql(sharded, sql)) == \
        _canon(execute_sql(oracle, sql, use_planner=False)), sql


@given(
    rows=rows_strategy,
    shards=shard_count_strategy,
    shard_key=shard_key_strategy,
    compact=st.booleans(),
    template=st.sampled_from([
        "UPDATE t SET score = 0.0 WHERE name = '{name}'",
        "UPDATE t SET qty = 99 WHERE qty < {n}",
        # rewriting the shard key moves rows between shards
        "UPDATE t SET name = 'omega' WHERE qty >= {n}",
        "DELETE FROM t WHERE name = '{name}' AND qty >= {n}",
        "DELETE FROM t WHERE qty IN ({n}, 0)",
    ]),
    n=st.integers(-50, 50),
    name=st.sampled_from(_NAMES),
)
@settings(max_examples=60, deadline=None)
def test_sharded_dml_matches_unsharded(rows, shards, shard_key, compact,
                                       template, n, name):
    sql = template.format(n=n, name=name)
    sharded = _load(rows, shard_key, shards, compact)
    oracle = _load(rows)
    assert _canon(execute_sql(sharded, sql)) == \
        _canon(execute_sql(oracle, sql, use_planner=False)), sql
    final = "SELECT * FROM t ORDER BY rid"
    assert _canon(execute_sql(sharded, final)) == \
        _canon(execute_sql(oracle, final, use_planner=False)), sql


@given(
    rows=rows_strategy,
    shards=shard_count_strategy,
    old_key=shard_key_strategy,
    new_key=shard_key_strategy,
    compact=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_reshard_preserves_rows(rows, shards, old_key, new_key, compact):
    sharded = _load(rows, old_key, shards, compact)
    oracle = _load(rows)
    sharded.reshard("t", new_key, 8 // max(shards // 2, 1))
    sql = "SELECT * FROM t"
    assert _canon(execute_sql(sharded, sql)) == \
        _canon(execute_sql(oracle, sql, use_planner=False))
