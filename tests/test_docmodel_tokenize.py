"""Tests for tokenization and sentence splitting."""

from repro.docmodel.document import Document
from repro.docmodel.tokenize import SentenceSplitter, Tokenizer, sentences, tokenize


def _texts(tokens):
    return [t.text for t in tokens]


def test_tokenize_words_numbers_punct():
    doc = Document("d", "Madison has 233,209 people!")
    tokens = tokenize(doc)
    assert _texts(tokens) == ["Madison", "has", "233,209", "people", "!"]
    kinds = [t.kind for t in tokens]
    assert kinds == ["word", "word", "number", "word", "punct"]


def test_tokenize_spans_are_accurate():
    doc = Document("d", "ab 12 cd")
    for token in tokenize(doc):
        assert doc.text[token.span.start:token.span.end] == token.text


def test_tokenize_negative_and_decimal_numbers():
    doc = Document("d", "temp is -7 or 3.14")
    numbers = [t.text for t in tokenize(doc) if t.is_number()]
    assert numbers == ["-7", "3.14"]


def test_tokenize_hyphenated_words():
    doc = Document("d", "best-effort extraction")
    assert _texts(tokenize(doc))[0] == "best-effort"


def test_tokenize_range_restricts_offsets():
    doc = Document("d", "aaa bbb ccc")
    tokens = Tokenizer().tokenize_range(doc, 4, 7)
    assert _texts(tokens) == ["bbb"]
    assert tokens[0].span.start == 4


def test_normalize_lowercases_words_only():
    tokenizer = Tokenizer()
    doc = Document("d", "Madison 42")
    tokens = tokenizer.tokenize(doc)
    assert tokenizer.normalize(tokens[0]) == "madison"
    assert tokenizer.normalize(tokens[1]) == "42"


def test_sentences_basic_split():
    doc = Document("d", "First sentence. Second sentence! Third?")
    spans = sentences(doc)
    assert len(spans) == 3
    assert spans[0].text == "First sentence."


def test_sentences_abbreviations_do_not_split():
    doc = Document("d", "Dr. Smith agrees. Mr. Jones does not.")
    spans = sentences(doc)
    assert len(spans) == 2
    assert spans[0].text == "Dr. Smith agrees."


def test_sentences_initials_do_not_split():
    doc = Document("d", "J. F. Naughton wrote this. It is good.")
    spans = sentences(doc)
    assert len(spans) == 2


def test_sentences_spans_point_into_document():
    doc = Document("d", "  Leading space. Next one.  ")
    for span in sentences(doc):
        assert doc.text[span.start:span.end] == span.text
        assert span.text == span.text.strip()


def test_sentences_empty_document():
    assert sentences(Document("d", "")) == []


def test_sentences_no_terminator():
    spans = sentences(Document("d", "no punctuation here"))
    assert len(spans) == 1
    assert spans[0].text == "no punctuation here"


def test_splitter_custom_abbreviations():
    splitter = SentenceSplitter(abbreviations=frozenset({"approx"}))
    doc = Document("d", "It is approx. forty. Done.")
    assert len(splitter.split(doc)) == 2
