"""Tests for the core document model."""

import pytest

from repro.docmodel.document import (
    Document,
    DocumentMetadata,
    Span,
    Token,
    iter_ngrams,
    merge_spans,
)


def test_document_length_and_span():
    doc = Document("d1", "hello world")
    assert len(doc) == 11
    span = doc.span(0, 5)
    assert span.text == "hello"
    assert span.doc_id == "d1"


def test_document_content_hash_is_stable():
    a = Document("a", "same text")
    b = Document("b", "same text")
    assert a.content_hash() == b.content_hash()
    assert a.content_hash() != Document("c", "other").content_hash()


def test_document_lines_keepends():
    doc = Document("d", "one\ntwo\nthree")
    assert doc.lines() == ["one\n", "two\n", "three"]


def test_span_validates_bounds():
    with pytest.raises(ValueError):
        Span("d", -1, 3, "abcd")
    with pytest.raises(ValueError):
        Span("d", 5, 2, "")


def test_span_validates_text_length():
    with pytest.raises(ValueError):
        Span("d", 0, 3, "toolong")


def test_span_overlap_same_doc():
    a = Span("d", 0, 5, "aaaaa")
    b = Span("d", 3, 8, "bbbbb")
    c = Span("d", 5, 9, "cccc")
    assert a.overlaps(b)
    assert b.overlaps(a)
    assert not a.overlaps(c)  # half-open ranges touch but do not overlap


def test_span_overlap_different_docs_is_false():
    a = Span("d1", 0, 5, "aaaaa")
    b = Span("d2", 0, 5, "bbbbb")
    assert not a.overlaps(b)


def test_span_contains():
    outer = Span("d", 0, 10, "x" * 10)
    inner = Span("d", 2, 5, "xxx")
    assert outer.contains(inner)
    assert not inner.contains(outer)


def test_span_shifted():
    span = Span("d", 5, 8, "abc")
    moved = span.shifted(10)
    assert (moved.start, moved.end) == (15, 18)
    assert moved.text == "abc"


def test_span_ordering():
    spans = [Span("d", 5, 6, "x"), Span("d", 0, 3, "abc")]
    assert sorted(spans)[0].start == 0


def test_token_properties():
    token = Token(span=Span("d", 0, 2, "42"), kind="number")
    assert token.text == "42"
    assert token.is_number()
    assert not token.is_word()


def test_merge_spans_contiguous():
    a = Span("d", 0, 3, "abc")
    b = Span("d", 3, 6, "def")
    merged = merge_spans([a, b])
    assert (merged.start, merged.end) == (0, 6)
    assert merged.text == "abcdef"


def test_merge_spans_with_gap_pads():
    a = Span("d", 0, 3, "abc")
    b = Span("d", 5, 8, "def")
    merged = merge_spans([b, a])
    assert merged.text == "abc  def"


def test_merge_spans_rejects_empty_and_mixed_docs():
    with pytest.raises(ValueError):
        merge_spans([])
    with pytest.raises(ValueError):
        merge_spans([Span("d1", 0, 1, "a"), Span("d2", 0, 1, "b")])


def test_iter_ngrams():
    tokens = [
        Token(Span("d", i, i + 1, c), "word") for i, c in enumerate("abcd")
    ]
    bigrams = list(iter_ngrams(tokens, 2))
    assert len(bigrams) == 3
    assert bigrams[0][0].text == "a" and bigrams[0][1].text == "b"


def test_iter_ngrams_rejects_nonpositive():
    with pytest.raises(ValueError):
        list(iter_ngrams([], 0))


def test_metadata_defaults():
    meta = DocumentMetadata()
    assert meta.mime_type == "text/plain"
    assert meta.extra == {}
