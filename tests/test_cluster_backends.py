"""Tests for the real execution backends and their Map-Reduce integration."""

import os
import subprocess
import sys

import pytest

from repro.cluster.backends import (
    BackendError,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    make_backend,
)
from repro.cluster.mapreduce import (
    MapReduceJob,
    _stable_hash,
    run_mapreduce,
)
from repro.cluster.simulator import ClusterConfig, SimulatedCluster


def _double(x):
    return x * 2


def _word_map(line):
    return [(w, 1) for w in line.split()]


def _sum_reduce(key, values):
    return sum(values)


def _sum_combine(key, values):
    return [sum(values)]


# ----------------------------------------------------------------- factory


def test_make_backend_specs():
    assert make_backend(None) is None
    assert isinstance(make_backend("serial"), SerialBackend)
    assert isinstance(make_backend("thread"), ThreadPoolBackend)
    assert isinstance(make_backend("process"), ProcessPoolBackend)
    existing = SerialBackend()
    assert make_backend(existing) is existing


def test_make_backend_rejects_unknown_spec():
    with pytest.raises(BackendError):
        make_backend("quantum")
    with pytest.raises(BackendError):
        make_backend(42)  # type: ignore[arg-type]


def test_make_backend_worker_override():
    backend = make_backend("thread", max_workers=3)
    assert backend.max_workers == 3
    backend.close()


# --------------------------------------------------------------- map order


@pytest.mark.parametrize("spec", ["serial", "thread", "process"])
def test_backend_map_preserves_input_order(spec):
    with make_backend(spec, max_workers=4) as backend:
        items = list(range(57))
        assert backend.map(_double, items) == [i * 2 for i in items]
        # odd chunk sizes must not reorder or drop results
        assert backend.map(_double, items, chunk_size=5) == \
            [i * 2 for i in items]


@pytest.mark.parametrize("spec", ["serial", "thread", "process"])
def test_backend_map_empty_input(spec):
    with make_backend(spec, max_workers=2) as backend:
        assert backend.map(_double, []) == []


def test_process_backend_rejects_unpicklable_payload():
    with ProcessPoolBackend(max_workers=2) as backend:
        with pytest.raises(BackendError, match="picklable"):
            backend.map(lambda x: x, [1, 2, 3])


def test_backend_close_is_idempotent():
    backend = ThreadPoolBackend(max_workers=2)
    assert backend.map(_double, [1, 2]) == [2, 4]
    backend.close()
    backend.close()


# ----------------------------------------------------- mapreduce + backend


def _wordcount(lines, backend=None, combine=False, seed=1):
    job = MapReduceJob(
        map_fn=_word_map,
        reduce_fn=_sum_reduce,
        combine_fn=_sum_combine if combine else None,
        split_size=5,
        num_reducers=3,
    )
    return run_mapreduce(job, lines,
                         config=ClusterConfig(num_workers=4, seed=seed),
                         backend=backend)


def test_mapreduce_output_identical_across_backends():
    lines = ["a b a", "b c", "a d e"] * 12
    inline = _wordcount(lines)
    for spec in ("serial", "thread", "process"):
        with make_backend(spec, max_workers=4) as backend:
            result = _wordcount(lines, backend=backend)
            assert result.output == inline.output
            assert result.shuffle_records == inline.shuffle_records
            assert result.backend_name == spec


def test_mapreduce_backend_does_not_change_simulated_makespan():
    lines = ["x y z w"] * 30
    inline = _wordcount(lines)
    with make_backend("thread", max_workers=4) as backend:
        threaded = _wordcount(lines, backend=backend)
    assert threaded.makespan == inline.makespan
    assert threaded.map_makespan == inline.map_makespan
    assert threaded.reduce_makespan == inline.reduce_makespan


def test_mapreduce_reports_wave_task_counts_and_real_seconds():
    lines = ["a b" for _ in range(20)]
    with make_backend("serial") as backend:
        result = _wordcount(lines, backend=backend)
    assert result.map_tasks == 4  # 20 lines / split_size 5
    assert 1 <= result.reduce_tasks <= 3
    assert result.real_seconds >= 0.0
    inline = _wordcount(lines)
    assert inline.backend_name == "inline"
    assert inline.real_seconds == 0.0
    assert inline.map_tasks == 4


def test_combiner_reduces_shuffle_records_under_backend():
    lines = ["x x x x x"] * 20
    with make_backend("process", max_workers=2) as backend:
        plain = _wordcount(lines, backend=backend)
        combined = _wordcount(lines, backend=backend, combine=True)
    assert plain.output == combined.output == {"x": 100}
    assert combined.shuffle_records < plain.shuffle_records
    # the map-side combiner collapses each split's 25 pairs into 1
    assert combined.shuffle_records == combined.map_tasks


# ------------------------------------------------- stable-hash partitioning

_SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _child_python(script, hash_seed):
    """Run a snippet in a fresh interpreter with a forced str-hash seed."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR
    env["PYTHONHASHSEED"] = str(hash_seed)
    out = subprocess.run([sys.executable, "-c", script],
                         capture_output=True, text=True, env=env, check=True)
    return out.stdout.strip()


def test_stable_hash_is_deterministic_across_processes():
    keys = ["alpha", "beta", "gamma", ("tuple", 3), 42]
    local = [_stable_hash(k) for k in keys]
    script = (
        "from repro.cluster.mapreduce import _stable_hash; "
        "print([_stable_hash(k) for k in "
        "['alpha', 'beta', 'gamma', ('tuple', 3), 42]])"
    )
    assert eval(_child_python(script, 0)) == local
    assert eval(_child_python(script, 12345)) == local  # immune to salting


def test_salted_hash_is_not_process_stable():
    # The control for the test above: the builtin str hash the shuffle must
    # NOT use really does differ between differently-salted interpreters.
    script = "print([hash(k) for k in ['alpha', 'beta', 'gamma', 'delta']])"
    assert _child_python(script, 0) != _child_python(script, 1)


def test_partition_assignment_identical_across_processes():
    keys = [f"key-{i}" for i in range(40)]
    num_reducers = 4
    local = [_stable_hash(k) % num_reducers for k in keys]
    script = (
        "from repro.cluster.mapreduce import _stable_hash; "
        f"print([_stable_hash(f'key-{{i}}') % {num_reducers} "
        f"for i in range(40)])"
    )
    assert eval(_child_python(script, 99)) == local


def test_mapreduce_with_cluster_instance_and_backend():
    # run_mapreduce accepts an existing cluster plus a backend; the cluster
    # keeps accumulating its attempts log across jobs.
    cluster = SimulatedCluster(ClusterConfig(num_workers=2, seed=8))
    job = MapReduceJob(map_fn=_word_map, reduce_fn=_sum_reduce, split_size=2)
    with make_backend("thread", max_workers=2) as backend:
        result = run_mapreduce(job, ["a a", "b"], cluster=cluster,
                               backend=backend)
    assert result.output == {"a": 2, "b": 1}
    assert cluster.attempts_log
