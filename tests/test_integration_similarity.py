"""Tests for similarity measures."""

import pytest

from repro.integration.similarity import (
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    name_similarity,
    token_cosine,
    tokens_of,
)


def test_tokens_of():
    assert tokens_of("David Smith, Jr.") == ["david", "smith", "jr"]


def test_jaccard_extremes():
    assert jaccard("a b c", "a b c") == 1.0
    assert jaccard("a b", "c d") == 0.0
    assert jaccard("", "") == 1.0
    assert jaccard("a", "") == 0.0


def test_jaccard_partial():
    assert jaccard("a b c", "b c d") == pytest.approx(0.5)


def test_levenshtein_known_values():
    assert levenshtein("kitten", "sitting") == 3
    assert levenshtein("abc", "abc") == 0
    assert levenshtein("", "abc") == 3
    assert levenshtein("abc", "") == 3


def test_levenshtein_symmetry():
    assert levenshtein("sunday", "saturday") == levenshtein("saturday", "sunday")


def test_levenshtein_similarity_bounds():
    assert levenshtein_similarity("abc", "abc") == 1.0
    assert levenshtein_similarity("", "") == 1.0
    assert 0.0 <= levenshtein_similarity("abc", "xyz") <= 1.0


def test_jaro_extremes():
    assert jaro("abc", "abc") == 1.0
    assert jaro("", "abc") == 0.0
    assert jaro("abc", "xyz") == 0.0


def test_jaro_winkler_prefix_boost():
    base = jaro("martha", "marhta")
    boosted = jaro_winkler("martha", "marhta")
    assert boosted > base
    assert boosted <= 1.0


def test_jaro_winkler_known_value():
    assert jaro_winkler("martha", "marhta") == pytest.approx(0.9611, abs=1e-3)


def test_token_cosine():
    assert token_cosine("a b", "a b") == pytest.approx(1.0)
    assert token_cosine("a a b", "a b b") < 1.0
    assert token_cosine("a", "b") == 0.0
    assert token_cosine("", "") == 1.0


def test_name_similarity_initial_matches_full():
    assert name_similarity("David Smith", "D. Smith") > 0.85
    assert name_similarity("David Smith", "David Smith") == pytest.approx(1.0)


def test_name_similarity_last_first_order():
    # token alignment is order-independent
    assert name_similarity("Smith David", "David Smith") == pytest.approx(1.0)


def test_name_similarity_different_people_low():
    assert name_similarity("David Smith", "Jane Doe") < 0.3
    # same last name, different first initial: clearly below match range
    assert name_similarity("David Smith", "Robert Smith") < 0.82


def test_name_similarity_confusable_same_initial():
    # Daniel vs David Smith: looks alike, should be mid-range (hard case)
    score = name_similarity("Daniel Smith", "D. Smith")
    assert score > 0.8  # an initial honestly matches either


def test_name_similarity_empty():
    assert name_similarity("", "") == 1.0
    assert name_similarity("x", "") == 0.0
