"""Tests for continuous-query monitoring and the built-in form library."""

import pytest

from repro.core.system import FACTS_TABLE, StructureManagementSystem
from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.extraction.infobox import InfoboxExtractor
from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.sql import execute_sql
from repro.userlayer.builtin_forms import builtin_forms, register_builtin_forms
from repro.userlayer.forms import FormCatalog
from repro.userlayer.monitoring import ContinuousQuery, ContinuousQueryManager


# ------------------------------------------------------------- monitoring


@pytest.fixture
def db():
    database = Database()
    execute_sql(database, "CREATE TABLE facts (entity TEXT, attribute TEXT, "
                          "value_num FLOAT)")
    return database


def _insert(db, entity, attribute, value):
    execute_sql(db, f"INSERT INTO facts (entity, attribute, value_num) "
                    f"VALUES ('{entity}', '{attribute}', {value})")


def test_new_matches_are_delivered_once(db):
    manager = ContinuousQueryManager(db)
    manager.register(ContinuousQuery(
        "hot", "SELECT entity, value_num FROM facts "
               "WHERE attribute = 'sep_temp' AND value_num > 90",
    ))
    assert manager.poke() == 0
    # matches are delivered at commit time via the delta stream
    _insert(db, "Phoenix", "sep_temp", 95.0)
    assert manager.pending("hot")[0].row["entity"] == "Phoenix"
    # same row does not notify twice, by poke or by further commits
    assert manager.poke() == 0
    _insert(db, "Tucson", "sep_temp", 93.0)
    assert [n.row["entity"] for n in manager.pending("hot")] \
        == ["Phoenix", "Tucson"]
    assert manager.poke() == 0


def test_existing_rows_absorbed_unless_requested(db):
    _insert(db, "Phoenix", "sep_temp", 95.0)
    manager = ContinuousQueryManager(db)
    delivered = manager.register(ContinuousQuery(
        "hot", "SELECT entity FROM facts WHERE value_num > 90"))
    assert delivered == 0
    assert manager.poke() == 0  # existing row was absorbed
    manager2 = ContinuousQueryManager(db)
    delivered = manager2.register(
        ContinuousQuery("hot", "SELECT entity FROM facts WHERE value_num > 90"),
        fire_on_existing=True,
    )
    assert delivered == 1


def test_condition_and_callback(db):
    received = []
    manager = ContinuousQueryManager(db)
    manager.register(ContinuousQuery(
        "watch", "SELECT entity, value_num FROM facts",
        condition=lambda row: row["value_num"] is not None
        and row["value_num"] < 0,
        callback=lambda qid, row: received.append((qid, row["entity"])),
    ))
    _insert(db, "Nome", "jan_temp", -15.0)
    _insert(db, "Miami", "jan_temp", 68.0)
    assert received == [("watch", "Nome")]
    assert manager.poke() == 0  # both rows already handled at commit
    assert manager.pending() == []  # callback queries bypass the inbox


def test_duplicate_registration_and_unregister(db):
    manager = ContinuousQueryManager(db)
    query = ContinuousQuery("q", "SELECT entity FROM facts")
    manager.register(query)
    with pytest.raises(ValueError):
        manager.register(query)
    manager.unregister("q")
    manager.register(query)  # fine after unregister


def test_system_pokes_monitoring_on_generate():
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=6, seed=77, styles=("infobox",))
    )
    system = StructureManagementSystem()
    system.registry.register_extractor("infobox", InfoboxExtractor())
    system.ingest(corpus)
    system.monitoring.register(ContinuousQuery(
        "any_temp",
        f"SELECT entity, value_num FROM {FACTS_TABLE} "
        "WHERE attribute = 'sep_temp'",
    ))
    system.generate('p = docs()\nf = extract(p, "infobox")\noutput f')
    # one notification per city, delivered as part of generation
    assert len(system.monitoring.pending("any_temp")) == len(truth)


def test_direct_batched_writes_fire_standing_queries():
    """Regression: standing queries must see rows written through the
    batched db paths (insert_many / run_batch), not just generate()."""
    system = StructureManagementSystem()
    system.monitoring.register(ContinuousQuery(
        "hot",
        f"SELECT entity, value_num FROM {FACTS_TABLE} "
        "WHERE attribute = 'sep_temp' AND value_num > 90",
    ))

    def _fact(fact_id, entity, temp):
        return {"fact_id": fact_id, "entity": entity,
                "attribute": "sep_temp", "value_text": None,
                "value_num": temp, "confidence": 1.0, "doc_id": "direct"}

    # batched insert_many through db.run — no generate(), no manual poke
    system.db.run(lambda t: t.insert_many(
        FACTS_TABLE, [_fact(0, "Phoenix", 95.0), _fact(1, "Fargo", 55.0)]
    ))
    assert [n.row["entity"] for n in system.monitoring.pending("hot")] \
        == ["Phoenix"]

    # run_batch path fires too, once per commit
    system.db.run_batch([
        lambda t: t.insert_many(FACTS_TABLE, [_fact(2, "Tucson", 93.0)]),
        lambda t: t.insert(FACTS_TABLE, _fact(3, "Nome", 40.0)),
    ])
    assert [n.row["entity"] for n in system.monitoring.pending("hot")] \
        == ["Phoenix", "Tucson"]

    # read-only transactions (the poke's own SELECTs) do not re-notify
    assert system.query(f"SELECT COUNT(*) AS n FROM {FACTS_TABLE}")[0]["n"] \
        == 4
    assert len(system.monitoring.pending("hot")) == 2


# ------------------------------------------------------------------ forms


def test_builtin_forms_register_and_instantiate():
    catalog = FormCatalog()
    count = register_builtin_forms(catalog)
    assert count == len(builtin_forms()) == len(catalog)
    sql = catalog.get("average_of").instantiate(
        {"entity": "Madison", "attribute": "sep_temp"}
    )
    assert "AVG(value_num)" in sql and "Madison" in sql


def test_builtin_forms_run_against_system():
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=6, seed=78, styles=("infobox",))
    )
    system = StructureManagementSystem()
    system.registry.register_extractor("infobox", InfoboxExtractor())
    system.ingest(corpus)
    system.generate('p = docs()\nf = extract(p, "infobox")\noutput f')
    city = truth[0]
    sql = system.forms.get("average_of").instantiate(
        {"entity": city.name, "attribute": "sep_temp"}
    )
    assert system.query(sql)[0]["result"] == city.monthly_temps[8]
    top = system.forms.get("top_entities").instantiate(
        {"attribute": "population", "limit": 3}
    )
    rows = system.query(top)
    assert len(rows) == 3
    assert rows[0]["value"] >= rows[-1]["value"]
    queue = system.forms.get("low_confidence").instantiate({})
    assert len(system.query(queue)) == 20


def test_translator_surfaces_builtin_forms():
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=6, seed=79, styles=("infobox",))
    )
    system = StructureManagementSystem()
    system.registry.register_extractor("infobox", InfoboxExtractor())
    system.ingest(corpus)
    system.generate('p = docs()\nf = extract(p, "infobox")\noutput f')
    candidates = system.translator().translate(
        f"average sep_temp {truth[0].name}", k=8
    )
    assert any(c.form_id == "average_of" for c in candidates)


def test_explain_program_shows_both_plans():
    corpus, _ = generate_city_corpus(
        CityCorpusConfig(num_cities=4, seed=80, styles=("prose",))
    )
    system = StructureManagementSystem()
    from repro.extraction.rules import ContextRule, RuleCascadeExtractor
    system.registry.register_extractor(
        "rules",
        RuleCascadeExtractor(rules=[
            ContextRule("sep_temp", ("September", "temperature"), r"\d+")
        ]),
    )
    system.ingest(corpus)
    text = system.explain_program(
        'p = docs()\nf = extract(p, "rules")\noutput f'
    )
    assert "-- naive plan" in text
    assert "-- optimized plan" in text
    assert "estimated cost" in text
