"""E11 — Transactional storage for concurrently edited structure.

Paper anchor: Section 4, storage layer — "if the system allows concurrent
editing by multiple users on the final structure, then this structure may
be best stored in an RDBMS, to ensure fast and correct concurrency
control"; Part III "handles transaction management and crash recovery."

Reported series:
  (a) committed-edit throughput vs concurrent editor threads (and the
      serializability check: final counters exactly equal the number of
      committed increments);
  (b) crash-recovery: committed work survives, in-flight work does not;
  (c) WAL fsync durability cost.
"""

import threading
import time

from _tables import write_table

from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.types import Column, ColumnType, TableSchema


def _edit_table_schema():
    return TableSchema(
        "wiki_facts",
        (Column("id", ColumnType.INT, nullable=False),
         Column("edits", ColumnType.INT),
         Column("body", ColumnType.TEXT)),
        primary_key="id",
    )


def _seed_rows(db, n=32):
    def work(txn):
        for i in range(n):
            txn.insert("wiki_facts", {"id": i, "edits": 0, "body": f"fact {i}"})
    db.run(work)


def test_e11_concurrent_edit_throughput(benchmark):
    rows_out = []
    edits_per_thread = 40
    for threads in (1, 2, 4, 8):
        db = Database()
        db.create_table(_edit_table_schema())
        _seed_rows(db)

        def editor(thread_id):
            for j in range(edits_per_thread):
                target = (thread_id * 7 + j) % 32

                def bump(txn, target=target):
                    row = txn.get_by_pk("wiki_facts", target)
                    txn.update("wiki_facts", row.rid,
                               {"edits": row.values["edits"] + 1})
                db.run(bump)

        started = time.perf_counter()
        workers = [threading.Thread(target=editor, args=(t,))
                   for t in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        elapsed = time.perf_counter() - started
        total_edits = sum(
            r.values["edits"] for r in db.run(lambda t: t.scan("wiki_facts"))
        )
        assert total_edits == threads * edits_per_thread  # serializable
        rows_out.append([threads, threads * edits_per_thread / elapsed])
    write_table(
        "e11_throughput",
        "E11: committed-edit throughput vs concurrent editors "
        "(row-level 2PL, in-memory)",
        ["editor threads", "edits committed / sec"],
        rows_out,
    )

    db = Database()
    db.create_table(_edit_table_schema())
    _seed_rows(db)

    def one_edit():
        def bump(txn):
            row = txn.get_by_pk("wiki_facts", 0)
            txn.update("wiki_facts", row.rid,
                       {"edits": row.values["edits"] + 1})
        db.run(bump)

    benchmark(one_edit)


def test_e11_crash_recovery(benchmark, tmp_path):
    db = Database(str(tmp_path / "db"))
    db.create_table(_edit_table_schema())
    _seed_rows(db, n=8)
    committed_edits = 25
    for i in range(committed_edits):
        def bump(txn, i=i):
            row = txn.get_by_pk("wiki_facts", i % 8)
            txn.update("wiki_facts", row.rid,
                       {"edits": row.values["edits"] + 1})
        db.run(bump)
    dangling = db.begin()
    row = dangling.get_by_pk("wiki_facts", 0)
    dangling.update("wiki_facts", row.rid, {"edits": 9999})
    # CRASH: abandon the database object without commit or clean shutdown
    recovered = Database(str(tmp_path / "db"))
    total = sum(
        r.values["edits"] for r in recovered.run(lambda t: t.scan("wiki_facts"))
    )
    write_table(
        "e11b_recovery",
        "E11b: crash recovery — committed edits survive, in-flight do not",
        ["metric", "value"],
        [["committed edits before crash", committed_edits],
         ["edits after recovery", total],
         ["in-flight edit visible", "no" if total == committed_edits else "YES"]],
    )
    assert total == committed_edits
    benchmark(lambda: Database(str(tmp_path / "db")))


def test_e11_wal_sync_cost(benchmark, tmp_path):
    rows_out = []
    for label, sync in (("no fsync", False), ("fsync per record", True)):
        db = Database(str(tmp_path / f"db-{sync}"), sync_wal=sync)
        db.create_table(_edit_table_schema())
        started = time.perf_counter()
        def work(txn):
            for i in range(200):
                txn.insert("wiki_facts", {"id": i, "edits": 0, "body": "x"})
        db.run(work)
        elapsed = time.perf_counter() - started
        rows_out.append([label, 200 / elapsed])
        db.close()
    write_table(
        "e11c_wal_sync",
        "E11c: WAL durability cost (inserts/sec in one transaction)",
        ["mode", "inserts / sec"],
        rows_out,
    )
    assert rows_out[0][1] > rows_out[1][1]  # fsync costs throughput
    db = Database(str(tmp_path / "bench"), sync_wal=False)
    db.create_table(_edit_table_schema())
    counter = iter(range(10_000_000))
    benchmark(lambda: db.run(
        lambda t: t.insert("wiki_facts",
                           {"id": next(counter), "edits": 0, "body": "y"})
    ))
