"""E17 — extraction cache: warm-vs-cold cost over churned corpora.

The DGE workload is a re-crawl loop: each snapshot changes a small
fraction of pages, yet an uncached ``generate()`` re-extracts everything.
This bench primes a persistent on-disk cache on day-0, churns the corpus
at several rates (1% / 10% / 30% via ``datagen.churn``), and measures the
warm re-run against a cold (uncached) run of the same snapshot.

Checked invariants:
  * warm wall-clock after 10% churn is >= 3x faster than cold
    (min-of-N, each repeat against a freshly primed cache);
  * warm work is *exactly* the churn: ``chars_scanned`` on a warm run
    equals the summed text length of the documents whose text changed —
    at every churn rate and at two corpus sizes (so warm cost provably
    scales with the churn fraction, not the corpus size);
  * output rows are byte-identical cached vs uncached, across the
    serial / thread / process backends, on the simulated-cluster path,
    and across a disk-cache close/reopen (which must then hit on every
    document).

Run standalone (writes ``results/BENCH_e17.json``)::

    PYTHONPATH=src python benchmarks/bench_e17_cache_churn.py
    PYTHONPATH=src python benchmarks/bench_e17_cache_churn.py --smoke

or via pytest: ``pytest benchmarks/bench_e17_cache_churn.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from _tables import write_table

from repro.cache.store import DiskExtractionCache
from repro.cluster.simulator import ClusterConfig, SimulatedCluster
from repro.datagen.churn import churn_corpus
from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.docmodel.document import Document
from repro.extraction.infobox import InfoboxExtractor
from repro.lang.executor import run_program
from repro.lang.registry import OperatorRegistry
from repro.telemetry.metrics import MetricsRegistry, use_registry

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_e17.json")
PROGRAM = 'p = docs()\nf = extract(p, "infobox")\noutput f'
CHURN_RATES = (0.01, 0.10, 0.30)


def _registry() -> OperatorRegistry:
    registry = OperatorRegistry()
    registry.register_extractor("infobox", InfoboxExtractor())
    return registry


def _corpus(num_docs: int) -> list[Document]:
    corpus, _ = generate_city_corpus(
        CityCorpusConfig(num_cities=num_docs, seed=17, styles=("infobox",))
    )
    return list(corpus)


def _churn(day0: list[Document], rate: float, seed: int) -> list[Document]:
    """Churn ~``rate`` of the *documents*.

    ``churn_corpus``'s ``change_fraction`` is a per-line edit fraction
    whose per-document change probability is 3x itself; dividing by 3
    makes the sweep's rates mean "this share of pages changed since the
    last crawl", which is the axis the cache's work should track.
    """
    return list(churn_corpus(day0, change_fraction=rate / 3.0, seed=seed))


def _changed_chars(day0: list[Document], day1: list[Document]) -> tuple[int, int]:
    """(changed doc count, summed text length of changed docs)."""
    before = {d.doc_id: d.text for d in day0}
    changed = [d for d in day1 if d.text != before[d.doc_id]]
    return len(changed), sum(len(d.text) for d in changed)


def _run(docs, cache=None, backend=None, cluster=None):
    """One isolated executor run (fresh ambient registry)."""
    with use_registry(MetricsRegistry()):
        return run_program(PROGRAM, docs, _registry(), cache=cache,
                           backend=backend, cluster=cluster)


def bench_churn_sweep(num_docs: int, base_dir: str) -> list[dict]:
    """Warm work vs churn rate; gates warm chars == churned chars."""
    day0 = _corpus(num_docs)
    cold = _run(day0)
    cold_chars = cold.stats.total_chars_scanned
    out = []
    for rate in CHURN_RATES:
        cache = DiskExtractionCache(
            os.path.join(base_dir, f"sweep_{num_docs}_{int(rate * 100)}"))
        primed = _run(day0, cache=cache)
        assert primed.rows == cold.rows, "cached cold run changed output"
        day1 = _churn(day0, rate, seed=170)
        changed_docs, changed_chars = _changed_chars(day0, day1)

        warm = _run(day1, cache=cache)
        uncached = _run(day1)
        assert warm.rows == uncached.rows, \
            f"warm output differs from uncached at churn {rate}"
        assert warm.stats.cache_misses == changed_docs
        assert warm.stats.cache_hits == num_docs - changed_docs
        # The central scaling gate: warm work is exactly the churned text.
        assert warm.stats.total_chars_scanned == changed_chars, (
            f"warm run scanned {warm.stats.total_chars_scanned} chars, "
            f"churn only touched {changed_chars}"
        )
        cache.close()
        out.append({
            "num_docs": num_docs,
            "churn_rate": rate,
            "changed_docs": changed_docs,
            "cold_chars": cold_chars,
            "warm_chars": warm.stats.total_chars_scanned,
            "warm_work_fraction": warm.stats.total_chars_scanned / cold_chars,
        })
    return out


def bench_speedup(num_docs: int, repeats: int, churn_rate: float,
                  base_dir: str) -> dict:
    """Min-of-N warm vs cold wall-clock at the given churn rate."""
    day0 = _corpus(num_docs)
    day1 = _churn(day0, churn_rate, seed=171)
    cold_times, warm_times = [], []
    for i in range(repeats):
        started = time.perf_counter()
        cold = _run(day1)
        cold_times.append(time.perf_counter() - started)

        cache = DiskExtractionCache(os.path.join(base_dir, f"speed{i}"))
        _run(day0, cache=cache)  # prime on day-0 (not timed)
        started = time.perf_counter()
        warm = _run(day1, cache=cache)
        warm_times.append(time.perf_counter() - started)
        cache.close()
        assert warm.rows == cold.rows, "warm output differs from cold"
    cold_s, warm_s = min(cold_times), min(warm_times)
    return {
        "num_docs": num_docs,
        "churn_rate": churn_rate,
        "repeats": repeats,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
    }


def bench_determinism(num_docs: int, base_dir: str) -> dict:
    """Byte-identity across backends, the cluster path, and a reopen."""
    day0 = _corpus(num_docs)
    day1 = _churn(day0, 0.1, seed=172)
    baseline = _run(day1)

    root = os.path.join(base_dir, "det_cache")
    cache = DiskExtractionCache(root)
    _run(day0, cache=cache)
    for spec in ("serial", "thread", "process"):
        result = _run(day1, cache=cache, backend=spec)
        assert result.rows == baseline.rows, \
            f"{spec} backend output differs with a warm cache"

    cluster_plain = _run(day1, cluster=SimulatedCluster(
        ClusterConfig(num_workers=3, seed=7)))
    cluster_warm = _run(day1, cache=cache, cluster=SimulatedCluster(
        ClusterConfig(num_workers=3, seed=7)))
    assert cluster_warm.rows == cluster_plain.rows, \
        "cluster-path output differs with a warm cache"

    cache.close()
    reopened = DiskExtractionCache(root)
    warm = _run(day1, cache=reopened)
    assert warm.stats.cache_misses == 0, \
        "reopened disk cache missed documents it had stored"
    assert warm.rows == baseline.rows
    reopened.close()
    return {
        "num_docs": num_docs,
        "backends_identical": True,
        "cluster_identical": True,
        "reopen_all_hits": True,
    }


def run_bench(num_docs: int = 400, repeats: int = 3,
              min_speedup: float = 3.0, smoke: bool = False) -> dict:
    """Run all three benches, print/persist tables, emit BENCH_e17.json."""
    with tempfile.TemporaryDirectory(prefix="bench_e17_") as base_dir:
        sweep = bench_churn_sweep(num_docs, base_dir)
        # Same sweep at twice the corpus: warm chars must track the churn
        # there too, which rules out any hidden O(corpus) re-extraction.
        sweep += bench_churn_sweep(num_docs * 2, base_dir)
        speedup = bench_speedup(num_docs, repeats, churn_rate=0.10,
                                base_dir=base_dir)
        determinism = bench_determinism(max(num_docs // 4, 20), base_dir)

    write_table(
        "e17_cache_churn",
        f"E17: warm extraction work vs churn rate (persistent disk cache)",
        ["docs", "churn", "changed docs", "warm chars", "cold chars",
         "warm/cold work"],
        [[s["num_docs"], s["churn_rate"], s["changed_docs"],
          s["warm_chars"], s["cold_chars"], s["warm_work_fraction"]]
         for s in sweep],
    )
    write_table(
        "e17_cache_speedup",
        f"E17: cold vs warm wall-clock at 10% churn "
        f"({speedup['num_docs']} pages, min of {speedup['repeats']})",
        ["variant", "seconds", "speedup"],
        [["cold (no cache)", speedup["cold_seconds"], 1.0],
         ["warm (primed cache)", speedup["warm_seconds"],
          speedup["speedup"]]],
    )

    payload = {
        "experiment": "e17_cache_churn",
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "min_speedup": min_speedup,
        "churn_sweep": sweep,
        "speedup": speedup,
        "determinism": determinism,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    print(f"\nwrote {JSON_PATH}")

    if not smoke:
        assert speedup["speedup"] >= min_speedup, (
            f"warm run after 10% churn is only {speedup['speedup']:.2f}x "
            f"faster than cold; the bar is {min_speedup:.1f}x"
        )
    return payload


# --------------------------------------------------------------- pytest


def test_e17_smoke(tmp_path):
    """Small-scale E17: scaling + determinism invariants; no timing gate."""
    sweep = bench_churn_sweep(num_docs=30, base_dir=str(tmp_path))
    assert all(s["warm_chars"] < s["cold_chars"] for s in sweep)
    determinism = bench_determinism(num_docs=16, base_dir=str(tmp_path))
    assert determinism["reopen_all_hits"]


# ----------------------------------------------------------------- main


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--docs", type=int, default=400,
                        help="city pages in the day-0 corpus")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (min is reported)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="acceptance bar: warm speedup at 10%% churn")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload, no timing assertion")
    args = parser.parse_args(argv)
    if args.smoke:
        args.docs = min(args.docs, 40)
        args.repeats = 1
    payload = run_bench(num_docs=args.docs, repeats=args.repeats,
                        min_speedup=args.min_speedup, smoke=args.smoke)
    ten = next(s for s in payload["churn_sweep"] if s["churn_rate"] == 0.10)
    print(f"warm work at 10% churn: {ten['warm_work_fraction']:.1%} of cold; "
          f"speedup {payload['speedup']['speedup']:.1f}x "
          f"(bar {payload['min_speedup']:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
