"""E19 — query serving: cost-based planner + result cache vs naive execution.

The serving-path claim of the PR: with table statistics, secondary
indexes, and a commit-invalidated result cache, the structured store
answers the exploration-session workload (point lookups, range scans,
selective joins, top-k) far faster than the naive interpreter — while
returning *identical* rows in *identical* order for every query.

Checked invariants:
  * every planner-executed bench query is row-identical to the naive
    (``use_planner=False``) run of the same SQL;
  * at 100k rows the planner is >= 5x faster on the selective join and
    >= 3x on the 2% range scan (min-of-N wall-clock);
  * a warm result-cache hit is >= 10x faster than the cold execution it
    memoizes, and a commit drops the cached entry (no stale reads).

Run standalone (writes ``results/BENCH_e19.json``)::

    PYTHONPATH=src python benchmarks/bench_e19_query_serving.py
    PYTHONPATH=src python benchmarks/bench_e19_query_serving.py --smoke

or via pytest: ``pytest benchmarks/bench_e19_query_serving.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

from _tables import write_table

from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.qcache import QueryResultCache
from repro.storage.rdbms.sql import execute_sql
from repro.storage.rdbms.types import Column, ColumnType, TableSchema

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_e19.json")

NUM_CATEGORIES = 100
SCORE_MAX = 1_000_000


def build_db(num_items: int, seed: int = 19) -> Database:
    """items (indexed category/score) + a 100-row dims table."""
    rng = random.Random(seed)
    db = Database()
    db.create_table(TableSchema(
        "items",
        (Column("item_id", ColumnType.INT, nullable=False),
         Column("category", ColumnType.TEXT),
         Column("score", ColumnType.INT),
         Column("value", ColumnType.FLOAT)),
        primary_key="item_id",
    ))
    db.create_table(TableSchema(
        "dims",
        (Column("category", ColumnType.TEXT, nullable=False),
         Column("label", ColumnType.TEXT)),
        primary_key="category",
    ))

    def load(txn):
        for i in range(num_items):
            txn.insert("items", {
                "item_id": i,
                "category": f"cat_{rng.randrange(NUM_CATEGORIES)}",
                "score": rng.randrange(SCORE_MAX),
                "value": rng.random(),
            })
        for c in range(NUM_CATEGORIES):
            txn.insert("dims", {"category": f"cat_{c}",
                                "label": f"label_{c % 10}"})
    db.run(load)
    db.create_index("items", "category", "hash")
    db.create_index("items", "score", "sorted")
    db.create_index("dims", "category", "hash")
    db.statistics().analyze("items")
    db.statistics().analyze("dims")
    return db


def workloads(num_items: int) -> list[dict]:
    """The bench queries; ``gate`` is the minimum planner speedup."""
    lo = SCORE_MAX // 2
    hi = lo + SCORE_MAX // 50  # ~2% of the score domain
    return [
        {"name": "point lookup",
         "sql": "SELECT * FROM items WHERE category = 'cat_42'",
         "gate": None},
        {"name": "range scan (~2%)",
         "sql": f"SELECT * FROM items WHERE score >= {lo} AND score < {hi}",
         "gate": 3.0},
        {"name": "selective join",
         "sql": "SELECT items.item_id, dims.label FROM items "
                "JOIN dims ON items.category = dims.category "
                "WHERE label = 'label_7' AND score < 50000",
         "gate": 5.0},
        {"name": "top-k",
         "sql": "SELECT item_id, score FROM items "
                "ORDER BY score DESC LIMIT 10",
         "gate": None},
    ]


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def bench_planner(db: Database, num_items: int, repeats: int) -> list[dict]:
    """Planner vs naive wall-clock per workload; identity asserted."""
    out = []
    for w in workloads(num_items):
        sql = w["sql"]
        planned = execute_sql(db, sql)
        naive = execute_sql(db, sql, use_planner=False)
        assert planned == naive, f"planner rows differ on: {sql}"
        planner_s = _time(lambda: execute_sql(db, sql), repeats)
        naive_s = _time(
            lambda: execute_sql(db, sql, use_planner=False), repeats)
        plan = "\n".join(
            r["plan"] for r in execute_sql(db, f"EXPLAIN {sql}"))
        out.append({
            "name": w["name"],
            "sql": sql,
            "rows": len(planned),
            "gate": w["gate"],
            "naive_seconds": naive_s,
            "planner_seconds": planner_s,
            "speedup": naive_s / planner_s if planner_s > 0
            else float("inf"),
            "plan": plan,
        })
    return out


def bench_result_cache(db: Database, num_items: int, repeats: int) -> dict:
    """Cold vs warm through the result cache, plus invalidation check."""
    cache = QueryResultCache(db)
    lo = SCORE_MAX // 2
    sql = (f"SELECT * FROM items WHERE score >= {lo} "
           f"AND score < {lo + SCORE_MAX // 50}")

    cold_times, warm_times = [], []
    for _ in range(repeats):
        cache.clear()
        cold_times.append(_time(lambda: cache.execute(sql), 1))
        warm_times.append(_time(lambda: cache.execute(sql), 1))
    cold_s, warm_s = min(cold_times), min(warm_times)

    # No stale reads: a commit to items must evict and recompute.
    before = cache.execute("SELECT COUNT(*) AS n FROM items")[0]["n"]
    execute_sql(db, f"INSERT INTO items (item_id, category, score, value) "
                    f"VALUES ({num_items + 1}, 'cat_0', 1, 0.5)")
    after = cache.execute("SELECT COUNT(*) AS n FROM items")[0]["n"]
    assert after == before + 1, "result cache served a stale row count"
    execute_sql(db, f"DELETE FROM items WHERE item_id = {num_items + 1}")

    return {
        "sql": sql,
        "repeats": repeats,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "invalidation_correct": True,
    }


def run_bench(num_items: int = 100_000, repeats: int = 3,
              smoke: bool = False) -> dict:
    db = build_db(num_items)
    queries = bench_planner(db, num_items, repeats)
    cache = bench_result_cache(db, num_items, repeats)

    write_table(
        "e19_query_serving",
        f"E19: planner vs naive execution ({num_items} items, "
        f"min of {repeats})",
        ["workload", "rows", "naive s", "planner s", "speedup", "gate"],
        [[q["name"], q["rows"], q["naive_seconds"], q["planner_seconds"],
          q["speedup"], q["gate"] or "-"] for q in queries],
    )
    write_table(
        "e19_result_cache",
        f"E19: result cache cold vs warm ({num_items} items)",
        ["variant", "seconds", "speedup"],
        [["cold (plan + execute)", cache["cold_seconds"], 1.0],
         ["warm (cache hit)", cache["warm_seconds"], cache["speedup"]]],
    )

    payload = {
        "experiment": "e19_query_serving",
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "num_items": num_items,
        "queries": queries,
        "result_cache": cache,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    print(f"\nwrote {JSON_PATH}")

    if not smoke:
        for q in queries:
            if q["gate"] is not None:
                assert q["speedup"] >= q["gate"], (
                    f"{q['name']} is only {q['speedup']:.2f}x over naive; "
                    f"the bar is {q['gate']:.1f}x"
                )
        assert cache["speedup"] >= 10.0, (
            f"warm result-cache hit is only {cache['speedup']:.2f}x over "
            f"cold; the bar is 10x"
        )
    return payload


# --------------------------------------------------------------- pytest


def test_e19_smoke():
    """Small-scale E19: identity + invalidation invariants; no timing gate."""
    payload = run_bench(num_items=2000, repeats=1, smoke=True)
    assert all(q["rows"] >= 0 for q in payload["queries"])
    assert payload["result_cache"]["invalidation_correct"]
    joins = [q for q in payload["queries"] if q["name"] == "selective join"]
    assert "IndexNestedLoopJoin" in joins[0]["plan"] \
        or "HashJoin" in joins[0]["plan"]


# ----------------------------------------------------------------- main


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--items", type=int, default=100_000,
                        help="rows in the items table")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (min is reported)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload, no timing assertions")
    args = parser.parse_args(argv)
    if args.smoke:
        args.items = min(args.items, 2000)
        args.repeats = 1
    payload = run_bench(num_items=args.items, repeats=args.repeats,
                        smoke=args.smoke)
    for q in payload["queries"]:
        print(f"{q['name']}: {q['speedup']:.1f}x over naive "
              f"({q['rows']} rows)")
    print(f"result cache warm hit: "
          f"{payload['result_cache']['speedup']:.1f}x over cold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
