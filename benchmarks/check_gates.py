"""Validate every ``results/BENCH_*.json`` against its declared gates.

Benchmarks that make pass/fail claims record them as a ``gates`` list::

    "gates": [
      {"name": "speedup:count(*)", "actual": 26.3,
       "op": ">=", "threshold": 3.0, "pass": true},
      ...
    ]

This checker re-evaluates each gate from its ``actual``/``op``/
``threshold`` fields and fails loudly if any gate does not hold or if a
recorded ``pass`` disagrees with the recomputation — so a regression
(or a bench writing stale verdicts) surfaces in one place regardless of
which bench produced it.  Result files without a ``gates`` key are
listed but not judged.

Usage::

    python benchmarks/check_gates.py            # check all result files
    python benchmarks/check_gates.py --strict   # also fail if no gated
                                                # result files exist
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_OPS = {
    ">=": lambda a, t: a >= t,
    "<=": lambda a, t: a <= t,
    ">": lambda a, t: a > t,
    "<": lambda a, t: a < t,
    "==": lambda a, t: a == t,
}


def check_file(path: str) -> tuple[list[str], bool]:
    """(problems, declares_gates) for one result file."""
    with open(path, "r", encoding="utf-8") as f:
        payload = json.load(f)
    gates = payload.get("gates")
    name = os.path.basename(path)
    if gates is None:
        print(f"  {name}: no gates declared")
        return [], False
    problems = []
    for gate in gates:
        op = _OPS.get(gate.get("op"))
        if op is None:
            problems.append(f"{name}: gate {gate.get('name')!r} has "
                            f"unknown op {gate.get('op')!r}")
            continue
        holds = op(gate["actual"], gate["threshold"])
        verdict = "ok" if holds else "FAIL"
        print(f"  {name}: {gate['name']}: {gate['actual']:.3f} "
              f"{gate['op']} {gate['threshold']} ... {verdict}")
        if not holds:
            problems.append(
                f"{name}: gate {gate['name']!r} violated: "
                f"{gate['actual']:.3f} not {gate['op']} {gate['threshold']}")
        if bool(gate.get("pass")) != holds:
            problems.append(
                f"{name}: gate {gate['name']!r} records pass="
                f"{gate.get('pass')} but recomputes to {holds}")
    return problems, True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--strict", action="store_true",
                        help="fail when no gated result files exist")
    args = parser.parse_args(argv)
    paths = sorted(glob.glob(os.path.join(RESULTS_DIR, "BENCH_*.json")))
    if not paths:
        print("no BENCH_*.json result files found")
        return 1 if args.strict else 0
    problems = []
    gated = 0
    for path in paths:
        found, declares = check_file(path)
        problems.extend(found)
        gated += declares
    if args.strict and not gated:
        problems.append("no result file declares gates")
    if problems:
        print("\ngate check FAILED:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(f"\nall declared gates hold "
          f"({gated} gated of {len(paths)} result files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
