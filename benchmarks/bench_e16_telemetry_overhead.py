"""E16 — telemetry overhead and cross-backend determinism.

Instrumentation is only acceptable if it is effectively free when you need
the numbers and invisible when you don't: spans and metrics run through
the whole pipeline (system -> executor -> mapreduce -> rdbms), so this
bench measures the end-to-end ingest+generate+query pipeline twice — with
telemetry off (the default no-op tracer) and with telemetry fully on
(spans streamed to a JSONL file plus the metrics snapshot) — and gates on
the relative overhead.

Checked invariants:
  * min-of-N wall-clock overhead of full telemetry is <= 10%;
  * with telemetry enabled, sorted query output is byte-identical across
    the serial / thread / process execution backends (enabling
    observability must not perturb the determinism contract);
  * the instrumented run actually produced a span tree and a metrics
    snapshot covering all four layers (no silently-disabled telemetry).

Run standalone (writes ``results/BENCH_e16.json``)::

    PYTHONPATH=src python benchmarks/bench_e16_telemetry_overhead.py
    PYTHONPATH=src python benchmarks/bench_e16_telemetry_overhead.py --smoke

or via pytest: ``pytest benchmarks/bench_e16_telemetry_overhead.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from _tables import write_table

from repro import telemetry
from repro.core.system import StructureManagementSystem
from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.extraction.infobox import InfoboxExtractor
from repro.telemetry.metrics import MetricsRegistry, use_registry

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_e16.json")
PROGRAM = 'p = docs()\nf = extract(p, "infobox")\noutput f'
QUERY = ("SELECT entity, attribute, value_text, value_num, confidence "
         "FROM facts")


def _canonical(rows: list[dict]) -> bytes:
    """Byte-stable form of a query result set (sorted, key-ordered)."""
    return json.dumps(sorted(rows, key=lambda r: json.dumps(r, sort_keys=True)),
                      sort_keys=True).encode("utf-8")


def _run_pipeline(docs, workspace: str, backend: str | None = None):
    """One full ingest -> generate -> query run in a fresh workspace."""
    system = StructureManagementSystem(workspace=workspace, use_cluster=True,
                                       backend=backend)
    system.registry.register_extractor("infobox", InfoboxExtractor())
    system.ingest(docs)
    report = system.generate(PROGRAM)
    rows = system.query(QUERY)
    system.close()
    return report, rows


def _timed_run(docs, base_dir: str, tag: str, instrumented: bool):
    """Time one pipeline run; returns (seconds, rows, spans, snapshot)."""
    workspace = os.path.join(base_dir, tag)
    registry = MetricsRegistry()
    spans, snapshot = [], None
    with use_registry(registry):
        if instrumented:
            session = telemetry.enable(
                jsonl_path=os.path.join(base_dir, f"{tag}.jsonl"))
            try:
                started = time.perf_counter()
                _, rows = _run_pipeline(docs, workspace)
                seconds = time.perf_counter() - started
                spans = session.spans()
                snapshot = session.finish()
            finally:
                telemetry.disable()
        else:
            started = time.perf_counter()
            _, rows = _run_pipeline(docs, workspace)
            seconds = time.perf_counter() - started
    return seconds, rows, spans, snapshot


def bench_overhead(num_docs: int, repeats: int, base_dir: str) -> dict:
    """Min-of-N pipeline time with telemetry off vs fully on."""
    corpus, _ = generate_city_corpus(
        CityCorpusConfig(num_cities=num_docs, seed=16, styles=("infobox",))
    )
    docs = list(corpus)
    plain_times: list[float] = []
    instrumented_times: list[float] = []
    spans, snapshot = [], None
    for i in range(repeats):
        seconds, _, _, _ = _timed_run(docs, base_dir, f"plain{i}",
                                      instrumented=False)
        plain_times.append(seconds)
        seconds, _, spans, snapshot = _timed_run(docs, base_dir, f"tel{i}",
                                                 instrumented=True)
        instrumented_times.append(seconds)

    # telemetry must have actually recorded the pipeline
    span_names = {s.name for s in spans}
    assert "system.generate" in span_names, "no system root span recorded"
    assert any(n.startswith("executor.op.") for n in span_names)
    assert any(n.startswith("mapreduce.") for n in span_names)
    assert "rdbms.txn" in span_names
    counters = snapshot["counters"]
    assert counters["rdbms.wal.records"] > 0
    assert counters["mapreduce.shuffle.bytes"] > 0
    assert any(n.startswith("executor.rows.") for n in counters)

    baseline = min(plain_times)
    instrumented = min(instrumented_times)
    return {
        "num_docs": num_docs,
        "repeats": repeats,
        "baseline_seconds": baseline,
        "instrumented_seconds": instrumented,
        "overhead_fraction": (instrumented - baseline) / baseline,
        "span_count": len(spans),
        "metric_count": len(counters),
    }


def bench_determinism(num_docs: int, workers: int, base_dir: str) -> dict:
    """Query output must be byte-identical per backend, telemetry on."""
    corpus, _ = generate_city_corpus(
        CityCorpusConfig(num_cities=num_docs, seed=61, styles=("infobox",))
    )
    docs = list(corpus)
    outputs: dict[str, bytes] = {}
    wal_records: dict[str, float] = {}
    for spec in ("serial", "thread", "process"):
        registry = MetricsRegistry()
        with use_registry(registry):
            session = telemetry.enable(
                jsonl_path=os.path.join(base_dir, f"det_{spec}.jsonl"))
            try:
                _, rows = _run_pipeline(
                    docs, os.path.join(base_dir, f"det_{spec}"), backend=spec)
                session.finish()
            finally:
                telemetry.disable()
        outputs[spec] = _canonical(rows)
        wal_records[spec] = registry.get("rdbms.wal.records")

    assert outputs["thread"] == outputs["serial"], \
        "thread backend output differs from serial with telemetry on"
    assert outputs["process"] == outputs["serial"], \
        "process backend output differs from serial with telemetry on"
    assert wal_records["thread"] == wal_records["serial"]
    assert wal_records["process"] == wal_records["serial"]
    return {
        "num_docs": num_docs,
        "workers": workers,
        "output_bytes": len(outputs["serial"]),
        "outputs_identical": True,
        "wal_records_identical": True,
    }


def run_bench(num_docs: int = 200, repeats: int = 5,
              det_docs: int = 60, workers: int = 2,
              max_overhead: float = 0.10, smoke: bool = False) -> dict:
    """Run both benches, print/persist tables, emit BENCH_e16.json."""
    with tempfile.TemporaryDirectory(prefix="bench_e16_") as base_dir:
        overhead = bench_overhead(num_docs, repeats, base_dir)
        determinism = bench_determinism(det_docs, workers, base_dir)

    write_table(
        "e16_telemetry_overhead",
        f"E16: pipeline wall-clock, telemetry off vs on "
        f"({num_docs} pages, min of {repeats})",
        ["variant", "seconds", "overhead"],
        [["telemetry off", overhead["baseline_seconds"], 0.0],
         ["telemetry on", overhead["instrumented_seconds"],
          overhead["overhead_fraction"]]],
    )

    payload = {
        "experiment": "e16_telemetry_overhead",
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "max_overhead_fraction": max_overhead,
        "overhead": overhead,
        "determinism": determinism,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    print(f"\nwrote {JSON_PATH}")

    if not smoke:
        assert overhead["overhead_fraction"] <= max_overhead, (
            f"telemetry overhead {overhead['overhead_fraction']:.1%} exceeds "
            f"the {max_overhead:.0%} acceptance bar"
        )
    return payload


# --------------------------------------------------------------- pytest


def test_e16_smoke(tmp_path):
    """Small-scale E16: telemetry records, determinism holds; no gate."""
    overhead = bench_overhead(num_docs=20, repeats=1, base_dir=str(tmp_path))
    assert overhead["span_count"] > 0
    determinism = bench_determinism(num_docs=12, workers=2,
                                    base_dir=str(tmp_path))
    assert determinism["outputs_identical"]


# ----------------------------------------------------------------- main


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--docs", type=int, default=200,
                        help="city pages in the overhead workload")
    parser.add_argument("--repeats", type=int, default=5,
                        help="repeats per variant (min is reported)")
    parser.add_argument("--det-docs", type=int, default=60,
                        help="city pages in the determinism workload")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-overhead", type=float, default=0.10,
                        help="acceptance bar on the overhead fraction")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload, no overhead assertion")
    args = parser.parse_args(argv)
    if args.smoke:
        args.docs = min(args.docs, 30)
        args.det_docs = min(args.det_docs, 12)
        args.repeats = min(args.repeats, 2)
    payload = run_bench(num_docs=args.docs, repeats=args.repeats,
                        det_docs=args.det_docs, workers=args.workers,
                        max_overhead=args.max_overhead, smoke=args.smoke)
    print(f"telemetry overhead "
          f"{payload['overhead']['overhead_fraction']:.1%} "
          f"({payload['overhead']['span_count']} spans, "
          f"{payload['overhead']['metric_count']} counters); "
          f"backend outputs identical: "
          f"{payload['determinism']['outputs_identical']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
