"""E6 — Optimizing declarative IE programs.

Paper anchor: Section 4, processing layer — programs "can be parsed,
reformulated ..., optimized, then executed."

Reported table: naive vs optimized execution of an IE+filter program over
a mostly-irrelevant corpus — wall time, documents reaching the expensive
extractor, cost-weighted work — plus the cost model's predictions and the
check that both plans return identical results.  An ablation compares the
rule-based rewrite alone against rewrite+cost-gating on an unselective
corpus (where the rewrite should be declined).
"""

import time

from _tables import write_table

from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.docmodel.document import Document
from repro.extraction.dictionary import DictionaryExtractor
from repro.extraction.normalize import MONTHS, normalize_temperature
from repro.extraction.rules import ContextRule, RuleCascadeExtractor
from repro.lang.executor import Executor
from repro.lang.optimizer import Optimizer
from repro.lang.parser import parse_program
from repro.lang.plan import LogicalPlan
from repro.lang.registry import OperatorRegistry

PROGRAM = """
pages = docs()
temps = extract(pages, "temp_rules")
good  = filter(temps, confidence >= 0.5 and value < 130)
output good
"""


def _registry(names):
    registry = OperatorRegistry()
    cities = DictionaryExtractor(attribute="city", phrases=names)
    rules = [
        ContextRule(f"{m[:3]}_temp", (m.capitalize(), "temperature"),
                    r"(\d+(?:\.\d+)?)\s*degrees",
                    normalizer=normalize_temperature, confidence=0.75)
        for m in MONTHS
    ]
    registry.register_extractor(
        "temp_rules",
        RuleCascadeExtractor(rules=rules, entity_dictionary=cities,
                             cost_per_char=5.0),
    )
    return registry


def _corpus(relevant=10, irrelevant=90):
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=relevant, seed=91, styles=("prose",))
    )
    docs = list(corpus)
    for i in range(irrelevant):
        docs.append(Document(
            f"irrelevant_{i}",
            "This page talks about something entirely different. " * 30,
        ))
    return docs, [t.name for t in truth]


def _execute(plan, docs, registry):
    executor = Executor(registry)
    started = time.perf_counter()
    result = executor.execute(plan, docs)
    elapsed = time.perf_counter() - started
    return result, elapsed


def test_e6_naive_vs_optimized(benchmark):
    docs, names = _corpus()
    registry = _registry(names)
    ops, output = parse_program(PROGRAM)
    naive_plan = LogicalPlan.from_ops(ops, output)
    optimizer = Optimizer(registry)
    optimized_plan = optimizer.optimize(naive_plan, docs[:50])

    naive_result, naive_time = _execute(naive_plan, docs, registry)
    optimized_result, optimized_time = _execute(optimized_plan, docs, registry)

    key = lambda r: (r["entity"], r["attribute"], r["value"])
    assert sorted(map(key, naive_result.rows)) == sorted(
        map(key, optimized_result.rows)
    )

    naive_docs = sum(naive_result.stats.docs_extracted.values())
    optimized_docs = sum(optimized_result.stats.docs_extracted.values())
    naive_cost = optimizer.estimate_cost(naive_plan, docs[:50]).total
    optimized_cost = optimizer.estimate_cost(optimized_plan, docs[:50]).total
    write_table(
        "e6_optimizer",
        "E6: naive vs optimized IE program (100 docs, 10% relevant)",
        ["plan", "wall seconds", "docs extracted", "estimated cost"],
        [
            ["naive", naive_time, naive_docs, naive_cost],
            ["optimized (trigger prefilter)", optimized_time,
             optimized_docs, optimized_cost],
            ["speedup / reduction", naive_time / optimized_time,
             naive_docs / max(optimized_docs, 1),
             naive_cost / max(optimized_cost, 1e-9)],
        ],
    )
    assert optimized_docs < naive_docs / 5
    assert optimized_time < naive_time
    assert optimized_cost < naive_cost

    benchmark(lambda: Executor(registry).execute(optimized_plan, docs))


def test_e6_cost_gating_declines_useless_rewrite(benchmark):
    """On an all-relevant corpus the prefilter passes everything; the cost
    model should decline it, and execution time should not regress."""
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=30, seed=92, styles=("prose",))
    )
    docs = list(corpus)
    registry = _registry([t.name for t in truth])
    ops, output = parse_program(PROGRAM)
    naive_plan = LogicalPlan.from_ops(ops, output)
    optimized_plan = Optimizer(registry).optimize(naive_plan, docs)
    # rewrite declined: plans have the same operators
    assert {type(op).__name__ for op in optimized_plan.ops.values()} == \
        {type(op).__name__ for op in naive_plan.ops.values()}
    write_table(
        "e6b_cost_gating",
        "E6b: cost model declines the prefilter on an unselective corpus",
        ["plan", "operators"],
        [["naive", len(naive_plan.ops)],
         ["optimized", len(optimized_plan.ops)]],
    )
    benchmark(lambda: Optimizer(registry).optimize(naive_plan, docs))


def test_e6_optimize_overhead_is_small(benchmark):
    """Plan optimization itself must be cheap relative to execution."""
    docs, names = _corpus(relevant=5, irrelevant=45)
    registry = _registry(names)
    ops, output = parse_program(PROGRAM)
    plan = LogicalPlan.from_ops(ops, output)
    optimizer = Optimizer(registry)

    optimize_time = benchmark(lambda: optimizer.optimize(plan, docs[:50]))
    _, execution_time = _execute(plan, docs, registry)
    # the benchmark fixture returns the function's result; re-time manually
    started = time.perf_counter()
    optimizer.optimize(plan, docs[:50])
    single_optimize = time.perf_counter() - started
    assert single_optimize < execution_time
