"""E8 — Uncertainty management and provenance overhead.

Paper anchor: Figure 1, Part V — "handles the uncertainty that arise
during the IE, II, and HI processes.  It also provides the provenance and
explanation for the derived structured data."

Reported series:
  (a) precision / recall / F1 of accepted facts vs confidence threshold,
      over a mixed-quality extraction workload (high-precision infobox +
      noisy low-confidence regex producing wrong values);
  (b) corroboration: noisy-or fused confidence separates facts with two
      agreeing witnesses from single-witness facts;
  (c) provenance recording overhead (facts/second with vs without
      lineage recording).
"""

import time

from _tables import write_table

from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.docmodel.document import Span
from repro.extraction.base import Extraction
from repro.extraction.infobox import InfoboxExtractor
from repro.extraction.normalize import MONTHS
from repro.integration.fusion import fuse_extractions
from repro.uncertainty.probabilistic import combine_noisy_or
from repro.uncertainty.provenance import ProvenanceGraph


def _mixed_quality_extractions(num_cities=30, seed=121):
    """Infobox extractions (correct, conf 0.97) plus injected noisy wrong
    readings (conf ~0.4) for a third of the facts."""
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=num_cities, seed=seed,
                         styles=("infobox",))
    )
    extractor = InfoboxExtractor()
    good = extractor.extract_corpus(corpus)
    truth_map = {
        (t.name, f"{m[:3]}_temp"): t.monthly_temps[i]
        for t in truth for i, m in enumerate(MONTHS)
    }
    noisy = []
    for i, extraction in enumerate(good):
        if i % 3 == 0 and isinstance(extraction.value, float):
            noisy.append(Extraction(
                entity=extraction.entity,
                attribute=extraction.attribute,
                value=extraction.value + 57.0,  # wrong
                span=Span(extraction.span.doc_id, 0, 1,
                          extraction.span.text[:1] or " "),
                confidence=0.4,
                extractor="noisy-regex",
            ))
    return good + noisy, truth_map


def _is_correct(fact, truth_map):
    expected = truth_map.get((fact.entity, fact.attribute))
    if expected is None:
        return None  # not a temperature fact (population, state...)
    return isinstance(fact.value, float) and abs(fact.value - expected) < 0.01


def test_e8_threshold_sweep(benchmark):
    extractions, truth_map = _mixed_quality_extractions()
    rows = []
    for threshold in (0.0, 0.3, 0.5, 0.7, 0.9):
        accepted = [e for e in extractions if e.confidence >= threshold]
        verdicts = [_is_correct(e, truth_map) for e in accepted]
        scored = [v for v in verdicts if v is not None]
        tp = sum(1 for v in scored if v)
        all_true = sum(
            1 for e in extractions
            if _is_correct(e, truth_map) is True
        )
        precision = tp / len(scored) if scored else 1.0
        recall = tp / all_true if all_true else 0.0
        f1 = (2 * precision * recall / (precision + recall)
              if precision + recall else 0.0)
        rows.append([threshold, precision, recall, f1])
    write_table(
        "e8_threshold_sweep",
        "E8: accepted-fact quality vs confidence threshold "
        "(infobox @0.97 correct + noisy @0.4 wrong)",
        ["threshold", "precision", "recall", "F1"],
        rows,
    )
    low = rows[0]
    high = rows[3]  # threshold 0.7
    assert high[1] > low[1]          # precision rises with the threshold
    assert high[2] == low[2]         # no correct facts lost at 0.7 here
    benchmark(lambda: [e for e in extractions if e.confidence >= 0.7])


def test_e8_corroboration_noisy_or(benchmark):
    """Two independent agreeing witnesses beat either alone."""
    single = combine_noisy_or(0.7)
    double = combine_noisy_or(0.7, 0.7)
    triple = combine_noisy_or(0.7, 0.7, 0.7)
    write_table(
        "e8b_corroboration",
        "E8b: noisy-or corroboration of independent witnesses (conf 0.7)",
        ["witnesses", "fused confidence"],
        [[1, single], [2, double], [3, triple]],
    )
    assert single < double < triple <= 1.0

    # and fusion's support/conflict accounting reflects corroboration
    span = Span("d", 0, 1, "x")
    fused = fuse_extractions([
        Extraction("e", "a", 70.0, span, 0.7, "w1"),
        Extraction("e", "a", 70.0, span, 0.7, "w2"),
        Extraction("e", "b", 70.0, span, 0.7, "w1"),
    ])
    by_attr = {f.attribute: f for f in fused}
    assert by_attr["a"].support == 2
    assert by_attr["a"].confidence >= by_attr["b"].confidence
    benchmark(lambda: combine_noisy_or(0.7, 0.8, 0.6, 0.9))


def test_e8_fusion_strategy_ablation(benchmark):
    """DESIGN §6 ablation: which conflict-resolution strategy recovers the
    most correct values under single-outlier corruption."""
    extractions, truth_map = _mixed_quality_extractions(num_cities=30,
                                                        seed=122)
    rows = []
    for strategy in ("max_confidence", "weighted_vote", "numeric_median"):
        fused = fuse_extractions(extractions, strategy=strategy)
        verdicts = [_is_correct(f, truth_map) for f in fused]
        scored = [v for v in verdicts if v is not None]
        accuracy = sum(1 for v in scored if v) / len(scored)
        rows.append([strategy, len(scored), accuracy])
    # Harder scenario: the wrong witness is *overconfident* (0.99) while
    # two honest witnesses agree at 0.8 — the case that separates the
    # strategies (max_confidence trusts the liar; voting and the median
    # side with the corroborated majority).
    hard: list[Extraction] = []
    span = Span("d", 0, 1, "x")
    truth_hard: dict[tuple[str, str], float] = {}
    for i in range(60):
        entity, attribute = f"e{i}", "temp"
        truth_hard[(entity, attribute)] = 70.0
        hard.append(Extraction(entity, attribute, 70.0, span, 0.8, "w1"))
        hard.append(Extraction(entity, attribute, 70.0, span, 0.8, "w2"))
        hard.append(Extraction(entity, attribute, 170.0, span, 0.99, "liar"))
    hard_rows = []
    for strategy in ("max_confidence", "weighted_vote", "numeric_median"):
        fused = fuse_extractions(hard, strategy=strategy)
        correct = sum(
            1 for f in fused
            if abs(float(f.value) - truth_hard[(f.entity, f.attribute)]) < 0.01
        )
        hard_rows.append([strategy + " (overconfident liar)", len(fused),
                          correct / len(fused)])
    write_table(
        "e8d_fusion_ablation",
        "E8d: fusion strategy ablation",
        ["strategy", "facts", "accuracy"],
        rows + hard_rows,
    )
    # easy scenario: every strategy near-perfect
    for _, _, accuracy in rows:
        assert accuracy > 0.95
    # hard scenario: corroboration-aware strategies beat max_confidence
    by_name = {r[0]: r[2] for r in hard_rows}
    assert by_name["max_confidence (overconfident liar)"] == 0.0
    assert by_name["weighted_vote (overconfident liar)"] == 1.0
    assert by_name["numeric_median (overconfident liar)"] == 1.0
    benchmark(lambda: fuse_extractions(extractions, strategy="weighted_vote"))


def test_e8_provenance_overhead(benchmark):
    extractions, _ = _mixed_quality_extractions(num_cities=20)

    def without_provenance():
        count = 0
        for extraction in extractions:
            count += 1
        return count

    def with_provenance():
        graph = ProvenanceGraph()
        for extraction in extractions:
            node = graph.record_extraction(extraction)
            graph.record_fact(extraction.entity, extraction.attribute,
                              extraction.value, extraction.confidence,
                              [node])
        return graph

    started = time.perf_counter()
    without_provenance()
    base_time = time.perf_counter() - started
    started = time.perf_counter()
    graph = with_provenance()
    provenance_time = time.perf_counter() - started
    per_fact_us = provenance_time / len(extractions) * 1e6
    write_table(
        "e8c_provenance_overhead",
        "E8c: provenance recording overhead",
        ["metric", "value"],
        [
            ["facts recorded", len(extractions)],
            ["lineage nodes created", len(graph)],
            ["recording micro-sec per fact", per_fact_us],
        ],
    )
    # overhead must be linear and modest (well under a millisecond a fact)
    assert per_fact_us < 1000
    # every recorded fact is explainable down to a span
    some_fact = next(iter(graph.facts()))
    assert graph.explain(some_fact.node_id).leaf_spans()
    benchmark(with_provenance)
