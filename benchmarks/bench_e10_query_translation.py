"""E10 — Guiding keyword queries into structured queries.

Paper anchor: Section 3.2 (exploitation) — "an ordinary user ... would
just want to start with a keyword query ... One way [to guide them] is to
'guess' and show the user several structured queries ... then ask the user
to select the appropriate one"; Section 3.3 predicts this exploitation
problem is where extraction-only work will get stuck.

Reported series: top-1 / top-3 / top-5 accuracy of the translator's
ranked structured-query guesses over a generated workload of keyword
queries with known intents (aggregate + attribute + entity combinations,
with phrasing variation), plus translation latency.
"""

import random

from _tables import write_table

from repro.core.system import FACTS_TABLE, StructureManagementSystem
from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.extraction.infobox import InfoboxExtractor
from repro.extraction.normalize import MONTHS
from repro.storage.rdbms.sql import execute_sql

AGG_PHRASES = {
    "AVG": ["average", "mean"],
    "MAX": ["highest", "maximum", "warmest"],
    "MIN": ["lowest", "coldest"],
}


def _system():
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=20, seed=141, styles=("infobox",))
    )
    system = StructureManagementSystem()
    system.registry.register_extractor("infobox", InfoboxExtractor())
    system.ingest(corpus)
    system.generate('p = docs()\nf = extract(p, "infobox")\noutput f')
    return system, truth


def _expected_value(system, agg, attribute, entity):
    rows = system.query(
        f"SELECT {agg}(value_num) AS v FROM {FACTS_TABLE} "
        f"WHERE attribute = '{attribute}' AND entity = '{entity}'"
    )
    return rows[0]["v"]


def _workload(truth, n=60, seed=9):
    rng = random.Random(seed)
    queries = []
    months = [m[:3] for m in MONTHS]
    for i in range(n):
        agg = rng.choice(list(AGG_PHRASES))
        phrase = rng.choice(AGG_PHRASES[agg])
        month = rng.choice(months)
        city = rng.choice(truth).name
        text = rng.choice([
            f"{phrase} {month} temp {city}",
            f"{phrase} {month} temp in {city}",
            f"what is the {phrase} {month} temp of {city}",
        ])
        queries.append((text, agg, f"{month}_temp", city))
    return queries


def test_e10_topk_accuracy(benchmark):
    system, truth = _system()
    translator = system.translator()
    queries = _workload(truth)
    hits = {1: 0, 3: 0, 5: 0}
    for text, agg, attribute, entity in queries:
        expected = _expected_value(system, agg, attribute, entity)
        candidates = translator.translate(text, k=5)
        for k in hits:
            for candidate in candidates[:k]:
                try:
                    rows = execute_sql(system.db, candidate.sql)
                except Exception:
                    continue
                values = [v for row in rows for v in row.values()
                          if isinstance(v, (int, float))]
                if values and expected is not None and any(
                    abs(v - expected) < 1e-6 for v in values
                ):
                    hits[k] += 1
                    break
    n = len(queries)
    write_table(
        "e10_translation_accuracy",
        f"E10: keyword-to-structured translation accuracy (n = {n})",
        ["metric", "accuracy"],
        [[f"top-{k}", hits[k] / n] for k in (1, 3, 5)],
    )
    assert hits[1] / n > 0.6
    assert hits[5] / n > 0.85
    assert hits[1] <= hits[3] <= hits[5]

    benchmark(lambda: translator.translate("average sep temp somewhere", k=5))


def test_e10_misspelled_queries_degrade_gracefully(benchmark):
    """Queries with a typo in the city name: the fuzzy matchers should
    still recover most intents, with accuracy between the clean workload
    and chance."""
    system, truth = _system()
    translator = system.translator()
    rng = random.Random(77)
    queries = _workload(truth, n=40, seed=10)

    def misspell(word: str) -> str:
        if len(word) < 4:
            return word
        pos = rng.randrange(1, len(word) - 1)
        return word[:pos] + word[pos + 1:]  # drop one inner character

    hits = 0
    for text, agg, attribute, entity in queries:
        mangled = text.replace(entity, misspell(entity))
        expected = _expected_value(system, agg, attribute, entity)
        for candidate in translator.translate(mangled, k=5):
            try:
                rows = execute_sql(system.db, candidate.sql)
            except Exception:
                continue
            values = [v for row in rows for v in row.values()
                      if isinstance(v, (int, float))]
            if values and expected is not None and any(
                abs(v - expected) < 1e-6 for v in values
            ):
                hits += 1
                break
    accuracy = hits / len(queries)
    write_table(
        "e10c_misspelled",
        f"E10c: top-5 accuracy with one-character typos in the entity "
        f"(n = {len(queries)})",
        ["workload", "top-5 accuracy"],
        [["clean (see E10)", 1.0], ["misspelled entity", accuracy]],
    )
    assert accuracy > 0.5   # fuzzy matching recovers most
    assert accuracy <= 1.0
    benchmark(lambda: translator.translate("average sep temp Madsion", k=5))


def test_e10_unanswerable_queries_score_low(benchmark):
    """Queries about attributes the system never extracted should not get
    confident top candidates (the translator is honest about coverage)."""
    system, _ = _system()
    translator = system.translator()
    known = translator.translate("average sep temp", k=1)
    unknown = translator.translate("average rainfall humidity", k=1)
    known_score = known[0].score if known else 0.0
    unknown_score = unknown[0].score if unknown else 0.0
    write_table(
        "e10b_honesty",
        "E10b: candidate score for covered vs uncovered intents",
        ["query kind", "top score"],
        [["covered (sep temp)", known_score],
         ["uncovered (rainfall)", unknown_score]],
    )
    assert known_score > unknown_score
    benchmark(lambda: translator.translate("average rainfall", k=3))
