"""E5 — Diff-based snapshot storage for overlapping daily crawls.

Paper anchor: Section 4, storage layer — "the daily snapshots will overlap
a lot, and hence may be best stored in a device such as Subversion, which
only stores the 'diff' across the snapshots, to save space."

Reported series: on-disk bytes after each of 30 simulated daily re-crawls
(churn 5% of lines in ~15% of pages per day) for the diff store vs the
full-copy store, plus the space ratio and checkout-correctness check.
"""

import pytest
from _tables import write_table

from repro.datagen.churn import churn_corpus
from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.storage.snapshots import FullCopyStore, SnapshotStore

DAYS = 30


def _run_days(tmp_path, days=DAYS, change_fraction=0.05):
    corpus, _ = generate_city_corpus(CityCorpusConfig(num_cities=15, seed=81))
    diff_store = SnapshotStore(str(tmp_path / "diff"), keyframe_every=50)
    full_store = FullCopyStore(str(tmp_path / "full"))
    series = []
    current = corpus
    originals = {d.doc_id: d.text for d in corpus}
    for day in range(days):
        for doc in current:
            diff_store.commit(doc)
            full_store.commit(doc)
        series.append((day, diff_store.total_bytes(), full_store.total_bytes()))
        current = churn_corpus(current, change_fraction=change_fraction,
                               seed=1000 + day)
    return diff_store, full_store, series, originals


def test_e5_space_series(benchmark, tmp_path):
    diff_store, full_store, series, originals = _run_days(tmp_path)
    rows = [
        [day, diff_bytes, full_bytes, full_bytes / diff_bytes]
        for day, diff_bytes, full_bytes in series
        if day in (0, 4, 9, 19, 29)
    ]
    write_table(
        "e5_snapshot_space",
        "E5: storage bytes over 30 daily snapshots (5% line churn)",
        ["day", "diff-store bytes", "full-copy bytes", "ratio (full/diff)"],
        rows,
    )
    final_ratio = rows[-1][3]
    assert final_ratio > 5.0  # diff store wins by a large factor

    # correctness: version 0 of every document reconstructs exactly
    for doc_id, text in originals.items():
        assert diff_store.checkout(doc_id, 0).text == text
        assert (diff_store.checkout(doc_id).text
                == full_store.checkout(doc_id).text)

    doc_id = next(iter(originals))
    benchmark(lambda: diff_store.checkout(doc_id))


@pytest.mark.parametrize("churn", [0.01, 0.10, 0.30])
def test_e5_ratio_vs_churn(benchmark, tmp_path, churn):
    """The diff store's advantage shrinks as churn grows (crossover study)."""
    diff_store, full_store, series, _ = _run_days(
        tmp_path, days=10, change_fraction=churn
    )
    _, diff_bytes, full_bytes = series[-1]
    write_table(
        f"e5b_ratio_churn_{int(churn * 100):02d}",
        f"E5b: space ratio at churn {churn:.0%} after 10 days",
        ["churn", "diff bytes", "full bytes", "ratio"],
        [[churn, diff_bytes, full_bytes, full_bytes / diff_bytes]],
    )
    assert full_bytes > diff_bytes
    corpus, _ = generate_city_corpus(CityCorpusConfig(num_cities=5, seed=3))
    store = SnapshotStore(str(tmp_path / f"b{int(churn*100)}"))
    docs = list(corpus)
    benchmark(lambda: [store.commit(d) for d in docs])
