"""E20 — columnar segments: vectorized scan/aggregate vs row-at-a-time.

The cold-data claim of the PR: freezing committed heap rows into typed
column segments (``ALTER TABLE ... COMPACT``) makes full-scan aggregates
an order of magnitude faster — the executor sums ``array`` buffers and
consults zone maps instead of materializing a python dict per row — while
every query stays byte-identical to the naive interpreter.

Checked invariants:
  * at 1M rows the vectorized executor is >= 10x faster than naive
    row-at-a-time execution on full-scan COUNT/SUM/AVG (min-of-N
    wall-clock) and >= 5x on GROUP BY;
  * a selective range predicate skips segments via zone maps (the
    ``segments.skipped`` counter moves; most segments are never decoded);
  * every bench query — aggregates, GROUP BY, selections — returns
    byte-identical JSON (``sort_keys=True``) to ``use_planner=False``;
  * compaction is WAL-covered: after a simulated crash (torn WAL tail,
    no clean close) the reopened database returns the identical rows and
    the segment layout is rebuilt.

Run standalone (writes ``results/BENCH_e20.json``)::

    PYTHONPATH=src python benchmarks/bench_e20_columnar_scan.py
    PYTHONPATH=src python benchmarks/bench_e20_columnar_scan.py --smoke

or via pytest: ``pytest benchmarks/bench_e20_columnar_scan.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import sys
import tempfile
import time

from _tables import write_table

from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.sql import execute_sql
from repro.storage.rdbms.types import Column, ColumnType, TableSchema
from repro.telemetry import metrics

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_e20.json")

REGIONS = ["na", "eu", "apac", "latam", "mea", "anz", "in", "jp"]
STATUSES = ["ok", "late", "failed", "retry"]
DAYS = 365


def _schema() -> TableSchema:
    return TableSchema(
        "events",
        (Column("event_id", ColumnType.INT, nullable=False),
         Column("day", ColumnType.INT),
         Column("region", ColumnType.TEXT),
         Column("status", ColumnType.TEXT),
         Column("qty", ColumnType.INT),
         Column("amount", ColumnType.FLOAT),
         Column("flagged", ColumnType.BOOL)),
        primary_key="event_id",
    )


def build_db(num_rows: int, seed: int = 20,
             workspace: str | None = None) -> Database:
    """events: 1M-row style fact table; ``day`` correlates with insert
    order, so segments get tight day zone maps (the skip demo)."""
    rng = random.Random(seed)
    db = Database(workspace)
    db.create_table(_schema())
    batch = []
    rows_per_day = max(num_rows // DAYS, 1)
    for i in range(num_rows):
        batch.append({
            "event_id": i,
            "day": min(i // rows_per_day, DAYS - 1),
            "region": REGIONS[rng.randrange(len(REGIONS))],
            "status": STATUSES[rng.randrange(len(STATUSES))],
            "qty": rng.randrange(1, 100) if rng.random() > 0.02 else None,
            "amount": rng.random() * 1000.0,
            "flagged": rng.random() < 0.01,
        })
        if len(batch) >= 50_000:
            chunk = batch
            db.run(lambda txn, c=chunk: txn.insert_many("events", c))
            batch = []
    if batch:
        db.run(lambda txn, c=batch: txn.insert_many("events", c))
    return db


def workloads() -> list[dict]:
    """Bench queries; ``gate`` is the minimum vectorized speedup."""
    return [
        {"name": "count(*)",
         "sql": "SELECT COUNT(*) FROM events", "gate": 10.0},
        {"name": "sum/avg amount",
         "sql": "SELECT SUM(amount), AVG(amount) FROM events", "gate": 10.0},
        {"name": "count/sum qty (nullable)",
         "sql": "SELECT COUNT(qty), SUM(qty) FROM events", "gate": 10.0},
        {"name": "min/max",
         "sql": "SELECT MIN(amount), MAX(amount), MIN(day), MAX(day) "
                "FROM events", "gate": 10.0},
        {"name": "group by region",
         "sql": "SELECT region, COUNT(*), SUM(amount) FROM events "
                "GROUP BY region", "gate": 5.0},
        {"name": "group by region+status",
         "sql": "SELECT region, status, COUNT(*), AVG(qty) FROM events "
                "GROUP BY region, status", "gate": 5.0},
        {"name": "filtered aggregate",
         "sql": "SELECT COUNT(*), SUM(amount) FROM events "
                "WHERE status = 'failed'", "gate": None},
        {"name": "zone-map range (last week)",
         "sql": f"SELECT COUNT(*), SUM(amount) FROM events "
                f"WHERE day >= {DAYS - 7}", "gate": None},
    ]


IDENTITY_QUERIES = [
    "SELECT region, COUNT(*), SUM(amount), MIN(qty), MAX(qty) "
    "FROM events GROUP BY region",
    "SELECT status, AVG(amount) FROM events WHERE flagged = TRUE "
    "GROUP BY status",
    "SELECT COUNT(*) FROM events WHERE qty IS NULL",
    "SELECT COUNT(*) FROM events WHERE region IN ('eu', 'jp') "
    "AND amount < 100.0",
    "SELECT event_id, amount FROM events WHERE day = 3 "
    "ORDER BY amount DESC LIMIT 20",
    "SELECT COUNT(*) FROM events WHERE region LIKE 'a%'",
]


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def bench_aggregates(db: Database, repeats: int) -> list[dict]:
    """Vectorized vs naive wall-clock per workload; identity asserted."""
    out = []
    for w in workloads():
        sql = w["sql"]
        fast = execute_sql(db, sql)
        slow = execute_sql(db, sql, use_planner=False)
        assert json.dumps(fast, sort_keys=True) == \
            json.dumps(slow, sort_keys=True), f"rows differ on: {sql}"
        fast_s = _time(lambda: execute_sql(db, sql), repeats)
        slow_s = _time(
            lambda: execute_sql(db, sql, use_planner=False), repeats)
        plan = "\n".join(
            r["plan"] for r in execute_sql(db, f"EXPLAIN {sql}"))
        out.append({
            "name": w["name"],
            "sql": sql,
            "gate": w["gate"],
            "naive_seconds": slow_s,
            "vectorized_seconds": fast_s,
            "speedup": slow_s / fast_s if fast_s > 0 else float("inf"),
            "plan": plan,
        })
    return out


def bench_zone_map_skip(db: Database) -> dict:
    """The skip demo: a trailing-window predicate must prune most
    segments without decoding them."""
    registry = metrics.get_registry()
    scanned0 = registry.get("segments.scanned")
    skipped0 = registry.get("segments.skipped")
    sql = (f"SELECT COUNT(*), SUM(amount) FROM events "
           f"WHERE day >= {DAYS - 7}")
    fast = execute_sql(db, sql)
    slow = execute_sql(db, sql, use_planner=False)
    assert json.dumps(fast, sort_keys=True) == \
        json.dumps(slow, sort_keys=True)
    scanned = registry.get("segments.scanned") - scanned0
    skipped = registry.get("segments.skipped") - skipped0
    return {
        "sql": sql,
        "segments_scanned": scanned,
        "segments_skipped": skipped,
        "skip_fraction": skipped / (scanned + skipped)
        if scanned + skipped else 0.0,
    }


def check_identity(db: Database) -> int:
    """Byte-identity of the selection/aggregate battery vs naive."""
    for sql in IDENTITY_QUERIES:
        fast = execute_sql(db, sql)
        slow = execute_sql(db, sql, use_planner=False)
        assert json.dumps(fast, sort_keys=True) == \
            json.dumps(slow, sort_keys=True), f"rows differ on: {sql}"
    return len(IDENTITY_QUERIES)


def check_crash_consistency(num_rows: int) -> dict:
    """WAL-covered compaction: kill (torn tail, no close) then reopen."""
    workdir = tempfile.mkdtemp(prefix="e20_crash_")
    try:
        db = build_db(num_rows, workspace=workdir)
        db.compact("events", target_rows=max(num_rows // 8, 1))
        db.run(lambda txn: txn.insert_many("events", [{
            "event_id": num_rows + j, "day": 0, "region": "na",
            "status": "ok", "qty": 1, "amount": 1.0, "flagged": False,
        } for j in range(25)]))
        before = execute_sql(
            db, "SELECT * FROM events ORDER BY event_id",
            use_planner=False)
        segments_before = db._table("events").segment_count()
        # simulated crash: torn half-record at the log tail, no close()
        with open(os.path.join(workdir, "wal.jsonl"), "a",
                  encoding="utf-8") as f:
            f.write('{"lsn": 999999, "txn": 7, "type": "ins')
        db2 = Database(workdir)
        after = execute_sql(
            db2, "SELECT * FROM events ORDER BY event_id",
            use_planner=False)
        assert json.dumps(before, sort_keys=True) == \
            json.dumps(after, sort_keys=True), \
            "rows changed across crash/reopen"
        segments_after = db2._table("events").segment_count()
        assert segments_after == segments_before, (
            f"segment layout not re-established: "
            f"{segments_before} -> {segments_after}")
        agg_fast = execute_sql(
            db2, "SELECT region, COUNT(*), SUM(amount) FROM events "
                 "GROUP BY region")
        agg_slow = execute_sql(
            db2, "SELECT region, COUNT(*), SUM(amount) FROM events "
                 "GROUP BY region", use_planner=False)
        assert json.dumps(agg_fast, sort_keys=True) == \
            json.dumps(agg_slow, sort_keys=True)
        db2.close()
        return {
            "rows": len(after),
            "segments": segments_after,
            "rows_identical": True,
            "layout_restored": True,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def run_bench(num_rows: int = 1_000_000, repeats: int = 3,
              smoke: bool = False) -> dict:
    db = build_db(num_rows)
    summary = db.compact("events")
    assert summary["rows_frozen"] == num_rows
    db.statistics().analyze("events")

    queries = bench_aggregates(db, repeats)
    skip = bench_zone_map_skip(db)
    identity_count = check_identity(db)
    crash = check_crash_consistency(min(num_rows, 20_000))

    write_table(
        "e20_columnar_scan",
        f"E20: vectorized segment scan vs naive execution "
        f"({num_rows} rows, min of {repeats})",
        ["workload", "naive s", "vectorized s", "speedup", "gate"],
        [[q["name"], q["naive_seconds"], q["vectorized_seconds"],
          q["speedup"], q["gate"] or "-"] for q in queries],
    )
    write_table(
        "e20_zone_map_skip",
        f"E20: zone-map segment skipping ({num_rows} rows)",
        ["metric", "value"],
        [["segments scanned", skip["segments_scanned"]],
         ["segments skipped", skip["segments_skipped"]],
         ["skip fraction", skip["skip_fraction"]]],
    )

    payload = {
        "experiment": "e20_columnar_scan",
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "num_rows": num_rows,
        "segments_created": summary["segments_created"],
        "queries": queries,
        "zone_map_skip": skip,
        "identity_queries_checked": identity_count,
        "crash_consistency": crash,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    print(f"\nwrote {JSON_PATH}")

    if not smoke:
        for q in queries:
            if q["gate"] is not None:
                assert q["speedup"] >= q["gate"], (
                    f"{q['name']} is only {q['speedup']:.2f}x over naive; "
                    f"the bar is {q['gate']:.1f}x"
                )
        assert skip["segments_skipped"] > 0, "zone maps never skipped"
        assert skip["skip_fraction"] >= 0.5, (
            f"only {skip['skip_fraction']:.0%} of segments skipped on the "
            f"trailing-window query; the bar is 50%"
        )
    return payload


# --------------------------------------------------------------- pytest


def test_e20_smoke():
    """Small-scale E20: identity + crash invariants; no timing gates."""
    payload = run_bench(num_rows=20_000, repeats=1, smoke=True)
    assert payload["segments_created"] >= 1
    assert payload["crash_consistency"]["rows_identical"]
    assert payload["crash_consistency"]["layout_restored"]
    assert any("SegmentScan" in q["plan"] for q in payload["queries"])
    assert any("VectorizedAggregate" in q["plan"]
               for q in payload["queries"])


# ----------------------------------------------------------------- main


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=1_000_000,
                        help="rows in the events table")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (min is reported)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload, no timing assertions")
    args = parser.parse_args(argv)
    if args.smoke:
        args.rows = min(args.rows, 20_000)
        args.repeats = 1
    payload = run_bench(num_rows=args.rows, repeats=args.repeats,
                        smoke=args.smoke)
    for q in payload["queries"]:
        print(f"{q['name']}: {q['speedup']:.1f}x over naive")
    skip = payload["zone_map_skip"]
    print(f"zone-map skip: {skip['segments_skipped']} of "
          f"{skip['segments_skipped'] + skip['segments_scanned']} segments "
          f"pruned ({skip['skip_fraction']:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
