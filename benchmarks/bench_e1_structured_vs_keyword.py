"""E1 — Structured approach vs keyword search on aggregate questions.

Paper anchor: Section 2's motivating example — "find the average
March–September temperature in Madison, Wisconsin" is unanswerable by
keyword search but answerable once structure is extracted.

Reported table: per approach, the fraction of aggregate questions answered
correctly over the synthetic city corpus (keyword honest mode, keyword
grep-guess mode, structured pipeline), plus per-question latency.
"""

import statistics

from _tables import write_table

from repro.baselines.keyword_baseline import KeywordSearchBaseline
from repro.core.system import FACTS_TABLE, StructureManagementSystem
from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.extraction.dictionary import DictionaryExtractor
from repro.extraction.infobox import InfoboxExtractor
from repro.extraction.normalize import MONTHS, normalize_temperature
from repro.extraction.rules import ContextRule, RuleCascadeExtractor

MONTH_RANGE = ["mar", "apr", "may", "jun", "jul", "aug", "sep"]
ATTR_LIST = ", ".join(f"'{m}_temp'" for m in MONTH_RANGE)


def _build(num_cities=40, seed=101):
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=num_cities, seed=seed,
                         styles=("infobox", "prose"))
    )
    system = StructureManagementSystem()
    system.registry.register_extractor("infobox", InfoboxExtractor())
    cities = DictionaryExtractor(attribute="city",
                                 phrases=[t.name for t in truth])
    rules = [
        ContextRule(f"{m[:3]}_temp", (m.capitalize(), "temperature"),
                    r"(\d+(?:\.\d+)?)\s*degrees",
                    normalizer=normalize_temperature, confidence=0.75)
        for m in MONTHS
    ]
    system.registry.register_extractor(
        "prose", RuleCascadeExtractor(rules=rules, entity_dictionary=cities)
    )
    system.ingest(corpus)
    system.generate(
        'p = docs()\na = extract(p, "infobox")\nb = extract(p, "prose")\n'
        'u = union(a, b)\noutput u'
    )
    baseline = KeywordSearchBaseline()
    baseline.index_corpus(corpus)
    return system, baseline, truth


def _structured_answer(system, name):
    rows = system.query(
        f"SELECT AVG(value_num) AS a FROM {FACTS_TABLE} "
        f"WHERE entity = '{name}' AND attribute IN ({ATTR_LIST})"
    )
    return rows[0]["a"]


def test_e1_accuracy_table(benchmark):
    system, baseline, truth = _build()

    def score():
        structured = honest = grep = 0
        for facts in truth:
            expected = statistics.fmean(facts.monthly_temps[2:9])
            value = _structured_answer(system, facts.name)
            if value is not None and abs(value - expected) < 0.5:
                structured += 1
            question = (
                f"average March September temperature {facts.name}"
            )
            if baseline.answer_aggregate(question).answerable:
                honest += 1
            guess = baseline.answer_aggregate(question, grep_guess=True)
            if guess.value is not None and abs(guess.value - expected) < 0.5:
                grep += 1
        return structured, honest, grep

    structured, honest, grep = benchmark(score)
    n = len(truth)
    write_table(
        "e1_structured_vs_keyword",
        "E1: aggregate questions answered correctly (n = %d)" % n,
        ["approach", "correct", "accuracy"],
        [
            ["keyword search (honest)", honest, honest / n],
            ["keyword search (grep top page)", grep, grep / n],
            ["structured pipeline (this system)", structured, structured / n],
        ],
    )
    assert structured > grep
    assert honest == 0


def test_e1_structured_query_latency(benchmark):
    system, _, truth = _build(num_cities=20, seed=7)
    name = truth[0].name
    value = benchmark(lambda: _structured_answer(system, name))
    assert value is not None
