"""E15 — real parallel execution backends + batched fact writes.

Paper anchor: Section 4, physical layer — "IE and II are often very
computation intensive ... we need parallel processing in the physical
layer."  E7 measures the *simulated* cluster (makespan shape vs worker
count); E15 measures the *real* thing: wall-clock time of the same
extraction pipeline on the serial / thread-pool / process-pool execution
backends, plus the batched ``insert_many`` write path vs the old
one-transaction-per-fact loop.

The extraction workload models the full fetch+extract task: each document
costs a small simulated fetch wait (the raw snapshot store / network read
that dominates real crawling pipelines) plus real CPU parsing.  The wait is
what thread/process pools overlap, so speedups are honest wall-clock
numbers even on small CI machines; the pure-CPU component parallelizes
across cores only on multi-core hosts.

Checked invariants (the determinism contract):
  * sorted output rows are byte-identical across serial/thread/process;
  * batched inserts write one WAL record per batch (vs 3 per fact) and are
    faster than the per-row loop.

Run standalone (writes ``results/BENCH_e15.json``)::

    PYTHONPATH=src python benchmarks/bench_e15_parallel_backend.py
    PYTHONPATH=src python benchmarks/bench_e15_parallel_backend.py --smoke

or via pytest: ``pytest benchmarks/bench_e15_parallel_backend.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from dataclasses import dataclass, field

from _tables import write_table

from repro.cluster.backends import make_backend
from repro.core.system import facts_schema
from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.docmodel.document import Document
from repro.extraction.base import Extraction, Extractor
from repro.extraction.infobox import InfoboxExtractor
from repro.lang.executor import run_program
from repro.lang.registry import OperatorRegistry
from repro.storage.rdbms.engine import Database

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_e15.json")
PROGRAM = 'p = docs()\nf = extract(p, "city")\noutput f'


@dataclass
class FetchingInfoboxExtractor(Extractor):
    """Infobox extraction preceded by a simulated per-document fetch wait.

    Module-level and picklable so the process backend can ship it to
    workers.  ``io_wait`` models reading the page from the raw snapshot
    store / network — the component pools overlap.
    """

    io_wait: float = 0.0
    inner: InfoboxExtractor = field(default_factory=InfoboxExtractor)
    name: str = "fetching-infobox"
    cost_per_char: float = 0.3

    def extract(self, doc: Document) -> list[Extraction]:
        if self.io_wait > 0.0:
            time.sleep(self.io_wait)
        return self.inner.extract(doc)


def _canonical(rows: list[dict]) -> bytes:
    """Byte-stable form of an output row set (sorted, key-ordered)."""
    return json.dumps(sorted(rows, key=lambda r: json.dumps(r, sort_keys=True)),
                      sort_keys=True).encode("utf-8")


def bench_extraction(num_docs: int, workers: int, io_wait: float) -> dict:
    """Time the extraction pipeline on each backend; verify equal output."""
    corpus, _ = generate_city_corpus(
        CityCorpusConfig(num_cities=num_docs, seed=15, styles=("infobox",))
    )
    docs = list(corpus)
    registry = OperatorRegistry()
    registry.register_extractor("city", FetchingInfoboxExtractor(io_wait=io_wait))

    timings: dict[str, float] = {}
    outputs: dict[str, bytes] = {}
    row_counts: dict[str, int] = {}
    for spec in ("serial", "thread", "process"):
        with make_backend(spec, max_workers=workers) as backend:
            started = time.perf_counter()
            result = run_program(PROGRAM, docs, registry, optimize=False,
                                 backend=backend)
            timings[spec] = time.perf_counter() - started
        outputs[spec] = _canonical(result.rows)
        row_counts[spec] = len(result.rows)

    assert outputs["thread"] == outputs["serial"], \
        "thread backend output differs from serial"
    assert outputs["process"] == outputs["serial"], \
        "process backend output differs from serial"

    return {
        "num_docs": num_docs,
        "workers": workers,
        "io_wait_per_doc": io_wait,
        "rows": row_counts["serial"],
        "seconds": timings,
        "speedup": {
            spec: timings["serial"] / timings[spec]
            for spec in ("thread", "process")
        },
        "outputs_identical": True,
    }


def bench_insert(num_facts: int, batch_size: int, base_dir: str) -> dict:
    """Per-row transaction loop vs batched insert_many, WAL-backed."""
    def fact(i: int) -> dict:
        return {
            "fact_id": i,
            "entity": f"City-{i % 97}",
            "attribute": f"attr_{i % 13}",
            "value_text": None,
            "value_num": float(i % 120),
            "confidence": 0.9,
            "doc_id": f"doc-{i % 97}",
        }

    facts = [fact(i) for i in range(num_facts)]

    per_row_db = Database(os.path.join(base_dir, "per_row"))
    per_row_db.create_table(facts_schema())
    per_row_db.create_index("facts", "entity")
    per_row_db.create_index("facts", "attribute")
    started = time.perf_counter()
    for values in facts:
        per_row_db.run(lambda t, v=values: t.insert("facts", v))
    per_row_seconds = time.perf_counter() - started
    per_row_wal = sum(1 for _ in per_row_db._wal.records())
    per_row_db.close()

    batched_db = Database(os.path.join(base_dir, "batched"))
    batched_db.create_table(facts_schema())
    batched_db.create_index("facts", "entity")
    batched_db.create_index("facts", "attribute")
    started = time.perf_counter()
    for lo in range(0, num_facts, batch_size):
        chunk = facts[lo : lo + batch_size]
        batched_db.run(lambda t, c=chunk: t.insert_many("facts", c))
    batched_seconds = time.perf_counter() - started
    batched_wal = sum(1 for _ in batched_db._wal.records())
    stored = batched_db.table_size("facts")
    batched_db.close()

    assert stored == num_facts
    num_batches = (num_facts + batch_size - 1) // batch_size
    # one insert_many WAL record per batch (plus begin/commit framing)
    assert batched_wal <= 3 * num_batches + 1
    assert per_row_wal >= 3 * num_facts

    return {
        "num_facts": num_facts,
        "batch_size": batch_size,
        "per_row": {"seconds": per_row_seconds, "wal_records": per_row_wal},
        "batched": {"seconds": batched_seconds, "wal_records": batched_wal},
        "speedup": per_row_seconds / batched_seconds,
        "wal_record_ratio": per_row_wal / batched_wal,
    }


def run_bench(num_docs: int = 2000, num_facts: int = 5000, workers: int = 4,
              io_wait: float = 0.002, batch_size: int = 1000,
              smoke: bool = False) -> dict:
    """Run both benches, print/persist tables, emit BENCH_e15.json."""
    extraction = bench_extraction(num_docs, workers, io_wait)
    with tempfile.TemporaryDirectory(prefix="bench_e15_") as base_dir:
        insert = bench_insert(num_facts, batch_size, base_dir)

    serial_s = extraction["seconds"]["serial"]
    write_table(
        "e15_parallel_backend",
        f"E15: extraction wall-clock by backend "
        f"({num_docs} pages, {workers} workers, "
        f"{io_wait * 1000:.1f}ms simulated fetch/page)",
        ["backend", "seconds", "speedup vs serial"],
        [[spec, extraction["seconds"][spec],
          serial_s / extraction["seconds"][spec]]
         for spec in ("serial", "thread", "process")],
    )
    write_table(
        "e15b_batched_inserts",
        f"E15b: {num_facts} fact inserts — per-row transactions vs "
        f"insert_many batches of {batch_size}",
        ["variant", "seconds", "WAL records"],
        [["per-row", insert["per_row"]["seconds"],
          insert["per_row"]["wal_records"]],
         ["batched", insert["batched"]["seconds"],
          insert["batched"]["wal_records"]]],
    )

    payload = {
        "experiment": "e15_parallel_backend",
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "extraction": extraction,
        "batched_inserts": insert,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    print(f"\nwrote {JSON_PATH}")

    if not smoke:
        assert extraction["speedup"]["process"] >= 2.0, (
            f"process backend speedup {extraction['speedup']['process']:.2f} "
            f"below the 2x acceptance bar"
        )
        assert extraction["speedup"]["thread"] >= 2.0, (
            f"thread backend speedup {extraction['speedup']['thread']:.2f} "
            f"below the 2x acceptance bar"
        )
        assert insert["batched"]["seconds"] < insert["per_row"]["seconds"], \
            "batched insert path is not faster than the per-row loop"
    return payload


# --------------------------------------------------------------- pytest


def test_e15_smoke(benchmark, tmp_path):
    """Small-scale E15: equality invariants hold; speedups reported only."""
    extraction = bench_extraction(num_docs=60, workers=2, io_wait=0.001)
    assert extraction["outputs_identical"]
    insert = bench_insert(num_facts=300, batch_size=100, base_dir=str(tmp_path))
    assert insert["batched"]["wal_records"] < insert["per_row"]["wal_records"]
    corpus, _ = generate_city_corpus(
        CityCorpusConfig(num_cities=12, seed=15, styles=("infobox",))
    )
    docs = list(corpus)
    registry = OperatorRegistry()
    registry.register_extractor("city", FetchingInfoboxExtractor())
    benchmark(lambda: run_program(PROGRAM, docs, registry, optimize=False,
                                  backend="thread"))


# ----------------------------------------------------------------- main


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--docs", type=int, default=2000,
                        help="city pages in the extraction workload")
    parser.add_argument("--facts", type=int, default=5000,
                        help="facts in the insert workload")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--io-wait", type=float, default=0.002,
                        help="simulated fetch seconds per document")
    parser.add_argument("--batch-size", type=int, default=1000)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload, no speedup assertions")
    args = parser.parse_args(argv)
    if args.smoke:
        args.docs, args.facts = min(args.docs, 120), min(args.facts, 400)
    payload = run_bench(num_docs=args.docs, num_facts=args.facts,
                        workers=args.workers, io_wait=args.io_wait,
                        batch_size=args.batch_size, smoke=args.smoke)
    speedups = payload["extraction"]["speedup"]
    print(f"thread speedup {speedups['thread']:.2f}x, "
          f"process speedup {speedups['process']:.2f}x, "
          f"insert batch speedup "
          f"{payload['batched_inserts']['speedup']:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
