"""E18 — fault tolerance: injected faults, quarantine, and crash recovery.

The physical layer is best-effort by design ("IE is computation
intensive"), so the fault path must uphold the determinism contract, not
merely survive: with deterministic faults injected at 1% / 5% / 10% of
documents, a run's output rows are byte-identical to the fault-free run
minus exactly the quarantined (persistently failing) documents — and the
quarantined set equals the injector's prediction before the run starts.

Checked invariants:
  * at every fault rate, output rows == fault-free rows over the
    surviving documents, and the quarantined set == the injector's
    ``persistent_keys`` — inline and on the serial / thread / process
    backends (transient faults heal via per-document retry on all of
    them);
  * the retry machinery costs < 5% wall-clock on a fault-free run
    (min-of-N, retry-wrapped vs fail-fast execution of the same corpus);
  * crash recovery loses no committed transactions: a WAL with a
    multi-record corrupt suffix replays every committed row and counts
    the dropped tail in ``recovery.truncated_records``; a disk
    extraction cache with a flipped byte skips the damaged entry, counts
    it in ``cache.corrupt_entries``, and a re-run regenerates
    byte-identical rows.

Run standalone (writes ``results/BENCH_e18.json``)::

    PYTHONPATH=src python benchmarks/bench_e18_fault_tolerance.py
    PYTHONPATH=src python benchmarks/bench_e18_fault_tolerance.py --smoke

or via pytest: ``pytest benchmarks/bench_e18_fault_tolerance.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from _tables import write_table

from repro.cache.store import DiskExtractionCache
from repro.cluster.backends import make_backend
from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.docmodel.document import Document
from repro.extraction.infobox import InfoboxExtractor
from repro.faults import FaultInjector, FaultyExtractor
from repro.lang.executor import run_program
from repro.lang.registry import OperatorRegistry
from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.types import Column, ColumnType, TableSchema
from repro.telemetry.metrics import MetricsRegistry, use_registry

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_e18.json")
PROGRAM = 'p = docs()\nf = extract(p, "infobox")\noutput f'
FAULT_RATES = (0.01, 0.05, 0.10)
SEED = 18


def _corpus(num_docs: int) -> list[Document]:
    corpus, _ = generate_city_corpus(
        CityCorpusConfig(num_cities=num_docs, seed=17, styles=("infobox",))
    )
    return list(corpus)


def _registry(extractor) -> OperatorRegistry:
    registry = OperatorRegistry()
    registry.register_extractor("infobox", extractor)
    return registry


def _run(docs, extractor, backend=None, fail_fast=False):
    """One isolated executor run (fresh ambient registry)."""
    with use_registry(MetricsRegistry()):
        return run_program(PROGRAM, docs, _registry(extractor),
                           optimize=False, backend=backend,
                           fail_fast=fail_fast)


# ------------------------------------------------------------ fault sweep


def bench_fault_sweep(num_docs: int, backends=(None, "serial", "thread",
                                               "process")) -> list[dict]:
    """Inject faults at each rate; gate output identity and quarantine."""
    corpus = _corpus(num_docs)
    doc_ids = [d.doc_id for d in corpus]
    out = []
    for rate in FAULT_RATES:
        injector = FaultInjector(mode="error", rate=rate,
                                 persistent_share=0.5, seed=SEED)
        predicted_poison = injector.persistent_keys(doc_ids)
        predicted_transient = injector.faulted_keys(doc_ids) \
            - predicted_poison
        survivors = [d for d in corpus if d.doc_id not in predicted_poison]
        baseline = _run(survivors, InfoboxExtractor())

        for spec in backends:
            faulty = FaultyExtractor(InfoboxExtractor(),
                                     FaultInjector(mode="error", rate=rate,
                                                   persistent_share=0.5,
                                                   seed=SEED))
            backend = make_backend(spec, max_workers=3)
            try:
                result = _run(corpus, faulty, backend=backend)
            finally:
                if backend is not None:
                    backend.close()
            label = spec or "inline"
            quarantined = {f["doc_id"] for f in result.failed_docs}
            assert quarantined == predicted_poison, (
                f"rate {rate} on {label}: quarantined {sorted(quarantined)}, "
                f"injector predicted {sorted(predicted_poison)}"
            )
            assert result.rows == baseline.rows, (
                f"rate {rate} on {label}: output differs from the "
                f"fault-free run minus quarantined documents"
            )
        out.append({
            "num_docs": num_docs,
            "fault_rate": rate,
            "faulted_docs": len(predicted_poison) + len(predicted_transient),
            "transient_docs": len(predicted_transient),
            "quarantined_docs": len(predicted_poison),
            "backends_identical": True,
        })
    return out


# ---------------------------------------------------------- retry overhead


def bench_retry_overhead(num_docs: int, repeats: int) -> dict:
    """Fault-free cost of the retry machinery (min-of-N, inline)."""
    corpus = _corpus(num_docs)
    plain_times, retry_times = [], []
    for _ in range(repeats):
        started = time.perf_counter()
        plain = _run(corpus, InfoboxExtractor(), fail_fast=True)
        plain_times.append(time.perf_counter() - started)

        started = time.perf_counter()
        retried = _run(corpus, InfoboxExtractor())
        retry_times.append(time.perf_counter() - started)
        assert retried.rows == plain.rows
        assert not retried.failed_docs
    plain_s, retry_s = min(plain_times), min(retry_times)
    return {
        "num_docs": num_docs,
        "repeats": repeats,
        "fail_fast_seconds": plain_s,
        "retry_seconds": retry_s,
        "overhead": retry_s / plain_s - 1.0 if plain_s > 0 else 0.0,
    }


# ---------------------------------------------------------- crash recovery


def _schema() -> TableSchema:
    return TableSchema(
        "t",
        (Column("id", ColumnType.INT, nullable=False),
         Column("value", ColumnType.TEXT)),
        primary_key="id",
    )


def bench_crash_recovery(base_dir: str, num_txns: int = 50) -> dict:
    """Commit work, damage the trailing log, reopen, verify nothing lost."""
    wal_dir = os.path.join(base_dir, "crash_db")
    db = Database(wal_dir)
    db.create_table(_schema())
    for i in range(num_txns):
        db.run(lambda t, i=i: t.insert("t", {"id": i, "value": f"v{i}"}))
    db.close()
    # a crash mid-burst: garbage, a wrong-shape record, and a torn write
    with open(os.path.join(wal_dir, "wal.jsonl"), "a",
              encoding="utf-8") as f:
        f.write("GARBAGE NOT JSON\n")
        f.write('{"no_lsn_key": true}\n')
        f.write('{"lsn": 99999, "txn": 9, "type": "ins')
    registry = MetricsRegistry()
    with use_registry(registry):
        recovered = Database(wal_dir)
    rows = recovered.run(lambda t: t.scan("t"))
    assert sorted(r.values["id"] for r in rows) == list(range(num_txns)), \
        "crash recovery lost committed transactions"
    truncated = registry.get("recovery.truncated_records")
    assert truncated == 3, f"expected 3 truncated records, saw {truncated}"

    # extraction cache: flip a byte in a stored entry, reopen, re-run
    corpus = _corpus(24)
    baseline = _run(corpus, InfoboxExtractor())
    cache_root = os.path.join(base_dir, "crash_cache")
    cache = DiskExtractionCache(cache_root)
    with use_registry(MetricsRegistry()):
        run_program(PROGRAM, corpus, _registry(InfoboxExtractor()),
                    optimize=False, cache=cache)
    cache.close()
    segment = os.path.join(
        cache_root,
        sorted(n for n in os.listdir(cache_root) if n.endswith(".jsonl"))[0],
    )
    with open(segment, "rb") as f:
        lines = f.read().splitlines(keepends=True)
    victim = lines[len(lines) // 2]
    injector = FaultInjector(mode="corrupt", seed=SEED)
    for attempt in range(32):  # find a flip that breaks the JSON, not a value
        mutated = injector.corrupt(victim, key=f"flip-{attempt}")
        try:
            json.loads(mutated.decode("utf-8", errors="replace"))
        except json.JSONDecodeError:
            break
    lines[len(lines) // 2] = mutated
    with open(segment, "wb") as f:
        f.write(b"".join(lines))

    registry = MetricsRegistry()
    with use_registry(registry):
        reopened = DiskExtractionCache(cache_root)
        result = run_program(PROGRAM, corpus, _registry(InfoboxExtractor()),
                             optimize=False, cache=reopened)
    assert reopened.corrupt_entries >= 1, "flipped byte went unnoticed"
    assert registry.get("cache.corrupt_entries") >= 1
    assert result.rows == baseline.rows, \
        "re-run over a damaged cache changed output"
    cache_misses = registry.get("cache.misses")
    assert 1 <= cache_misses < len(corpus), \
        "only the damaged entry should be regenerated"
    reopened.close()
    return {
        "committed_txns": num_txns,
        "txns_recovered": len(rows),
        "wal_truncated_records": truncated,
        "cache_corrupt_entries": reopened.corrupt_entries,
        "cache_regenerated_docs": cache_misses,
        "rows_identical_after_recovery": True,
    }


# ------------------------------------------------------------------ driver


def run_bench(num_docs: int = 300, repeats: int = 5,
              max_overhead: float = 0.05, smoke: bool = False) -> dict:
    """Run all three benches, print/persist tables, emit BENCH_e18.json."""
    sweep = bench_fault_sweep(num_docs)
    overhead = bench_retry_overhead(num_docs, repeats)
    with tempfile.TemporaryDirectory(prefix="bench_e18_") as base_dir:
        recovery = bench_crash_recovery(base_dir)

    write_table(
        "e18_fault_sweep",
        f"E18: injected faults vs quarantine ({num_docs} pages, "
        f"inline + serial/thread/process identical)",
        ["fault rate", "faulted docs", "healed (transient)",
         "quarantined (poison)"],
        [[s["fault_rate"], s["faulted_docs"], s["transient_docs"],
          s["quarantined_docs"]] for s in sweep],
    )
    write_table(
        "e18_retry_overhead",
        f"E18: fault-free retry overhead ({num_docs} pages, min of "
        f"{overhead['repeats']})",
        ["variant", "seconds", "overhead"],
        [["fail-fast (no retry)", overhead["fail_fast_seconds"], 0.0],
         ["retry-wrapped", overhead["retry_seconds"],
          overhead["overhead"]]],
    )

    payload = {
        "experiment": "e18_fault_tolerance",
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "max_overhead": max_overhead,
        "fault_sweep": sweep,
        "retry_overhead": overhead,
        "crash_recovery": recovery,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    print(f"\nwrote {JSON_PATH}")

    if not smoke:
        assert overhead["overhead"] < max_overhead, (
            f"retry machinery costs {overhead['overhead']:.1%} on a "
            f"fault-free run; the bar is {max_overhead:.0%}"
        )
    return payload


# --------------------------------------------------------------- pytest


def test_e18_smoke(tmp_path):
    """Small-scale E18: identity + recovery invariants; no timing gate."""
    sweep = bench_fault_sweep(num_docs=40, backends=(None, "serial"))
    assert any(s["quarantined_docs"] > 0 for s in sweep)
    recovery = bench_crash_recovery(str(tmp_path), num_txns=10)
    assert recovery["txns_recovered"] == 10
    assert recovery["rows_identical_after_recovery"]


# ----------------------------------------------------------------- main


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--docs", type=int, default=300,
                        help="city pages in the corpus")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repeats (min is reported)")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="acceptance bar: fault-free retry overhead")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload, no timing assertion")
    args = parser.parse_args(argv)
    if args.smoke:
        args.docs = min(args.docs, 40)
        args.repeats = 1
    payload = run_bench(num_docs=args.docs, repeats=args.repeats,
                        max_overhead=args.max_overhead, smoke=args.smoke)
    ten = next(s for s in payload["fault_sweep"] if s["fault_rate"] == 0.10)
    print(f"at 10% faults: {ten['transient_docs']} healed, "
          f"{ten['quarantined_docs']} quarantined, output identical; "
          f"fault-free retry overhead "
          f"{payload['retry_overhead']['overhead']:.1%} "
          f"(bar {payload['max_overhead']:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
