"""E9 — The semantic debugger catches out-of-sync structure.

Paper anchor: Figure 1, Part VI — "if this module has learned that the
monthly temperature of a city cannot exceed 130 degrees, then it can flag
an extracted temperature of 135 as suspicious."

Reported series:
  (a) detection rate and false-positive rate of learned constraints over
      corpora with injected corruptions, vs corruption rate;
  (b) the same with developer-supplied (not learned) constraints;
  (c) system-monitor alerting when the extraction rate collapses.
"""

from _tables import write_table

from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.debugger.constraints import RangeConstraint
from repro.debugger.semantic import SemanticDebugger, SystemMonitor
from repro.extraction.infobox import InfoboxExtractor
from repro.extraction.normalize import MONTHS

TEMP_ATTRS = [f"{m[:3]}_temp" for m in MONTHS]


def _extract_facts(corruption_rate, seed):
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=40, seed=seed,
                         corruption_rate=corruption_rate,
                         styles=("infobox",))
    )
    extractor = InfoboxExtractor(include_fields=tuple(TEMP_ATTRS))
    facts = []
    for doc, city in zip(corpus, truth):
        for extraction in extractor.extract(doc):
            is_corrupt = (
                city.corrupted_month is not None
                and extraction.attribute ==
                f"{MONTHS[city.corrupted_month][:3]}_temp"
            )
            facts.append(
                ({extraction.attribute: extraction.value}, is_corrupt)
            )
    return facts, truth


def _learned_debugger(truth):
    debugger = SemanticDebugger()
    debugger.learn([
        {f"{m[:3]}_temp": t.monthly_temps[i]}
        for t in truth for i, m in enumerate(MONTHS)
    ])
    return debugger


def _score(debugger, facts):
    tp = fp = fn = tn = 0
    for fact, is_corrupt in facts:
        flagged = bool(debugger.check(fact))
        if is_corrupt and flagged:
            tp += 1
        elif is_corrupt:
            fn += 1
        elif flagged:
            fp += 1
        else:
            tn += 1
    detection = tp / (tp + fn) if (tp + fn) else 1.0
    false_positive = fp / (fp + tn) if (fp + tn) else 0.0
    return detection, false_positive, tp + fn


def test_e9_learned_constraints_detection(benchmark):
    rows = []
    for rate in (0.1, 0.3, 0.5):
        facts, truth = _extract_facts(corruption_rate=rate, seed=131)
        clean_truth = [t for t in truth if t.corrupted_month is None]
        debugger = _learned_debugger(clean_truth)
        detection, false_positive, n_corrupt = _score(debugger, facts)
        rows.append([rate, n_corrupt, detection, false_positive])
    write_table(
        "e9_learned_detection",
        "E9: learned-range detection of injected corruptions "
        "(40 cities, infobox style)",
        ["corruption rate", "corrupted facts", "detection rate",
         "false-positive rate"],
        rows,
    )
    for row in rows:
        assert row[2] >= 0.99   # corruptions are extreme: all caught
        assert row[3] <= 0.05   # few clean facts misflagged
    facts, truth = _extract_facts(corruption_rate=0.3, seed=131)
    debugger = _learned_debugger(truth)
    benchmark(lambda: [debugger.check(f) for f, _ in facts[:100]])


def test_e9_developer_constraints_catch_the_135_example(benchmark):
    """The paper's exact scenario: a hand-written <=130 rule flags 135."""
    debugger = SemanticDebugger()
    for attr in TEMP_ATTRS:
        debugger.add_constraint(RangeConstraint(attr, -80.0, 130.0))
    violations = debugger.check({"sep_temp": 135.0})
    assert violations and violations[0].constraint == "range"
    assert debugger.check({"sep_temp": 70.0}) == []

    facts, _ = _extract_facts(corruption_rate=0.4, seed=132)
    detection, false_positive, _ = _score(debugger, facts)
    write_table(
        "e9b_developer_rules",
        "E9b: developer rule (temp in [-80, 130]) on injected corruptions",
        ["metric", "value"],
        [["detection rate", detection],
         ["false-positive rate", false_positive]],
    )
    assert detection == 1.0
    assert false_positive == 0.0
    benchmark(lambda: debugger.check({"sep_temp": 135.0}))


def test_e9_monitor_flags_rate_collapse(benchmark):
    monitor = SystemMonitor(window=10, z_threshold=3.0)
    for _ in range(10):
        assert monitor.record("facts_per_batch", 250.0) is None
    alert = monitor.record("facts_per_batch", 3.0)  # extractor broke
    assert alert is not None
    write_table(
        "e9c_monitor",
        "E9c: system monitor on extraction-rate collapse",
        ["observation", "alerted"],
        [["250 x10 (steady)", "no"], ["3 (collapse)", "yes"]],
    )
    fresh = SystemMonitor()
    benchmark(lambda: fresh.record("m", 100.0))
