"""E14 — Beyond unstructured text: the same pipeline on sensor data.

Paper anchor: Section 6 — "this approach may work for other kinds of data
as well ... sensor data from which we want to infer real-world events
(e.g., someone has entered the room) ... The end system then may end up
looking quite similar to the kind of systems we have discussed."

Reported series: event-detection precision/recall/F1 vs baseline noise
level, using an unmodified Figure-1 pipeline — the sensor-event operator
is just another registered extractor; fusion, confidence thresholds,
storage, and SQL exploitation are reused verbatim.
"""

from _tables import write_table

from repro.core.system import FACTS_TABLE, StructureManagementSystem
from repro.datagen.sensors import (
    EVENT_TYPES,
    SensorCorpusConfig,
    generate_sensor_corpus,
)
from repro.extraction.events import SensorEventExtractor


def _classifier(sensor_id: str, magnitude: float) -> str:
    kind = sensor_id.rstrip("0123456789")
    return EVENT_TYPES.get(kind, "event")


def _detect(noise: float, seed: int = 171):
    corpus, truth = generate_sensor_corpus(
        SensorCorpusConfig(noise=noise, seed=seed)
    )
    system = StructureManagementSystem()
    system.registry.register_extractor(
        "events", SensorEventExtractor(classify=_classifier)
    )
    system.ingest(corpus)
    system.generate('logs = docs()\nev = extract(logs, "events")\noutput ev')
    rows = system.query(
        f"SELECT entity, value_text FROM {FACTS_TABLE} "
        "WHERE attribute = 'event'"
    )
    detected = [(r["entity"], int(r["value_text"].split("@")[1]),
                 r["value_text"].split("@")[0]) for r in rows]
    return detected, truth, system


def _score(detected, truth):
    def matches(d, t):
        sensor, minute, label = d
        return (sensor == t.sensor_id
                and t.start_minute - 2 <= minute <= t.start_minute + t.duration
                and label == t.event_type)

    tp = sum(1 for t in truth if any(matches(d, t) for d in detected))
    fp = sum(1 for d in detected if not any(matches(d, t) for t in truth))
    precision = tp / (tp + fp) if (tp + fp) else 1.0
    recall = tp / len(truth) if truth else 1.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    return precision, recall, f1


def test_e14_detection_vs_noise(benchmark):
    rows = []
    for noise in (0.05, 0.10, 0.20, 0.35):
        detected, truth, _ = _detect(noise)
        precision, recall, f1 = _score(detected, truth)
        rows.append([noise, len(truth), len(detected), precision, recall, f1])
    write_table(
        "e14_sensor_events",
        "E14: sensor-event detection through the unmodified pipeline, "
        "vs noise level",
        ["noise", "true events", "detected", "precision", "recall", "F1"],
        rows,
    )
    # clean regime: essentially perfect; heavy noise: quality degrades,
    # which is the knob HI would be pointed at (per the paper's argument)
    assert rows[0][5] > 0.95
    assert rows[-1][5] <= rows[0][5]

    corpus, _ = generate_sensor_corpus(SensorCorpusConfig(noise=0.1))
    extractor = SensorEventExtractor(classify=_classifier)
    docs = list(corpus)
    benchmark(lambda: extractor.extract_corpus(docs))


def test_e14_pipeline_reuse_is_total(benchmark):
    """The Section 6 thesis in one assertion set: sensor facts flow through
    the same store, confidence model, SQL, and provenance as text facts."""
    detected, truth, system = _detect(noise=0.08)
    # SQL exploitation over inferred events
    rows = system.query(
        f"SELECT entity, COUNT(*) AS n FROM {FACTS_TABLE} "
        "WHERE attribute = 'event' GROUP BY entity ORDER BY n DESC"
    )
    assert rows and all(r["n"] >= 1 for r in rows)
    # confidences populated by the detector's excursion strength
    confs = system.query(
        f"SELECT confidence FROM {FACTS_TABLE} WHERE attribute = 'event'"
    )
    assert all(0.5 <= r["confidence"] <= 0.99 for r in confs)
    # provenance reaches back into raw log lines
    entity = rows[0]["entity"]
    explanation = system.explain(entity, "event")
    assert "[span]" in explanation
    write_table(
        "e14b_pipeline_reuse",
        "E14b: pipeline reuse checklist for sensor data",
        ["capability", "works"],
        [["declarative extract program", "yes"],
         ["EAV storage + SQL", "yes"],
         ["confidence model", "yes"],
         ["provenance to raw lines", "yes"]],
    )
    benchmark(lambda: system.query(
        f"SELECT COUNT(*) AS n FROM {FACTS_TABLE} WHERE attribute = 'event'"
    ))
