"""E7 — Map-Reduce parallelism for computation-intensive extraction.

Paper anchor: Section 4, physical layer — "IE and II are often very
computation intensive ... we need parallel processing in the physical
layer ... a computer cluster running Map-Reduce-like processes."

Reported series (simulated makespans — see DESIGN.md substitutions):
  (a) extraction-job makespan and speedup vs worker count (1..16);
  (b) impact of worker failures on makespan;
  (c) speculative execution vs stragglers ablation.
"""

from _tables import write_table

from repro.cluster.mapreduce import MapReduceJob, run_mapreduce
from repro.cluster.simulator import ClusterConfig, SimulatedCluster
from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.extraction.infobox import InfoboxExtractor


def _job_and_docs(num_cities=64):
    corpus, _ = generate_city_corpus(
        CityCorpusConfig(num_cities=num_cities, seed=111,
                         styles=("infobox",))
    )
    docs = list(corpus)
    extractor = InfoboxExtractor()
    job = MapReduceJob(
        map_fn=lambda doc: [
            ((e.entity, e.attribute), e.value) for e in extractor.extract(doc)
        ],
        reduce_fn=lambda key, values: values[0],
        split_size=4,
        num_reducers=4,
        map_cost_per_item=10.0,
    )
    return job, docs


def test_e7_scaling_curve(benchmark):
    job, docs = _job_and_docs()
    rows = []
    base = None
    for workers in (1, 2, 4, 8, 16):
        cluster = SimulatedCluster(
            ClusterConfig(num_workers=workers, seed=5, heterogeneity=0.1)
        )
        result = run_mapreduce(job, docs, cluster=cluster)
        if base is None:
            base = result.makespan
            reference = result.output
        else:
            assert result.output == reference  # parallelism preserves output
        rows.append([workers, result.makespan, base / result.makespan])
    write_table(
        "e7_scaling",
        "E7: extraction map-reduce makespan vs cluster size "
        "(64 pages, simulated time)",
        ["workers", "makespan", "speedup"],
        rows,
    )
    assert rows[-1][2] > 8.0  # near-linear region persists to 16 workers
    cluster = SimulatedCluster(ClusterConfig(num_workers=4, seed=5))
    benchmark(lambda: run_mapreduce(job, docs, cluster=SimulatedCluster(
        ClusterConfig(num_workers=4, seed=5))))


def test_e7_failures_cost_bounded(benchmark):
    job, docs = _job_and_docs(num_cities=32)
    rows = []
    for failure_prob in (0.0, 0.1, 0.3):
        cluster = SimulatedCluster(
            ClusterConfig(num_workers=4, seed=6, failure_prob=failure_prob,
                          max_attempts=20)
        )
        result = run_mapreduce(job, docs, cluster=cluster)
        rows.append([failure_prob, result.makespan])
    write_table(
        "e7b_failures",
        "E7b: makespan under task-failure injection (4 workers)",
        ["failure probability", "makespan"],
        rows,
    )
    assert rows[0][1] < rows[1][1] < rows[2][1]
    # failures cost retries, not correctness
    clean = run_mapreduce(job, docs, cluster=SimulatedCluster(
        ClusterConfig(num_workers=4, seed=6)))
    flaky = run_mapreduce(job, docs, cluster=SimulatedCluster(
        ClusterConfig(num_workers=4, seed=6, failure_prob=0.3,
                      max_attempts=20)))
    assert clean.output == flaky.output
    benchmark(lambda: run_mapreduce(job, docs, cluster=SimulatedCluster(
        ClusterConfig(num_workers=4, seed=6, failure_prob=0.1,
                      max_attempts=20))))


def test_e7_speculative_execution_ablation(benchmark):
    job, docs = _job_and_docs(num_cities=32)
    rows = []
    for label, speculative in (("speculation on", True),
                               ("speculation off", False)):
        cluster = SimulatedCluster(
            ClusterConfig(num_workers=4, seed=7, straggler_prob=0.25,
                          straggler_factor=8.0,
                          speculative_execution=speculative)
        )
        result = run_mapreduce(job, docs, cluster=cluster)
        rows.append([label, result.makespan])
    write_table(
        "e7c_speculation",
        "E7c: speculative-execution ablation under stragglers "
        "(25% stragglers, 8x slowdown)",
        ["variant", "makespan"],
        rows,
    )
    assert rows[0][1] < rows[1][1]
    benchmark(lambda: run_mapreduce(job, docs, cluster=SimulatedCluster(
        ClusterConfig(num_workers=4, seed=7, straggler_prob=0.25))))
