"""E22 — sharded tables: parallel SQL execution vs the unsharded oracle.

The scale-out claim of the PR: hash-partitioning a fact table
(``CREATE TABLE ... SHARD BY (region) SHARDS 4``) and fanning the
planner's scans/aggregates out as per-shard tasks on the process
backend makes set-oriented SQL several times faster than the naive
single-threaded interpreter — while every query stays byte-identical
to an *unsharded* oracle database, and plan-time shard pruning skips
the shards a shard-key point predicate pins away.

Checked invariants (recorded as a ``gates`` list in ``BENCH_e22.json``
and re-validated by ``benchmarks/check_gates.py``):
  * at >= 100k rows with 4 process workers, parallel scan/aggregate
    workloads are >= 3x faster than naive execution (min-of-N);
  * every bench query returns byte-identical JSON (``sort_keys=True``)
    to ``use_planner=False`` on the unsharded oracle — including FLOAT
    aggregates, which are type-gated out of partial->final merging and
    must fall back to the serial fold;
  * a shard-key point predicate prunes >= 50% of the shards
    (``parallel.shards.pruned`` counter);
  * the shard-pruned point query is no slower than the PR 5 index path
    (<= 1.2x an indexed unsharded database on the same query).

Run standalone (writes ``results/BENCH_e22.json``)::

    PYTHONPATH=src python benchmarks/bench_e22_sharded_parallel.py
    PYTHONPATH=src python benchmarks/bench_e22_sharded_parallel.py --smoke

or via pytest: ``pytest benchmarks/bench_e22_sharded_parallel.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

from _tables import write_table

from repro.cluster.backends import ProcessPoolBackend
from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.sql import execute_sql
from repro.storage.rdbms.types import Column, ColumnType, TableSchema

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_e22.json")

REGIONS = ["na", "eu", "apac", "latam", "mea", "anz", "in", "jp"]
STATUSES = ["ok", "late", "failed", "retry"]
DAYS = 365
SHARDS = 4
WORKERS = 4


def _schema() -> TableSchema:
    return TableSchema(
        "events",
        (Column("event_id", ColumnType.INT, nullable=False),
         Column("day", ColumnType.INT),
         Column("region", ColumnType.TEXT),
         Column("status", ColumnType.TEXT),
         Column("qty", ColumnType.INT),
         Column("amount", ColumnType.FLOAT),
         Column("flagged", ColumnType.BOOL)),
        primary_key="event_id",
    )


def build_db(num_rows: int, sharded: bool, seed: int = 22) -> Database:
    """The E20-style events fact table, optionally SHARD BY (region)."""
    rng = random.Random(seed)
    db = Database()
    if sharded:
        db.create_table(_schema(), shard_key="region", shard_count=SHARDS)
    else:
        db.create_table(_schema())
    batch = []
    rows_per_day = max(num_rows // DAYS, 1)
    for i in range(num_rows):
        batch.append({
            "event_id": i,
            "day": min(i // rows_per_day, DAYS - 1),
            "region": REGIONS[rng.randrange(len(REGIONS))],
            "status": STATUSES[rng.randrange(len(STATUSES))],
            "qty": rng.randrange(1, 100) if rng.random() > 0.02 else None,
            "amount": rng.random() * 1000.0,
            "flagged": rng.random() < 0.01,
        })
        if len(batch) >= 50_000:
            chunk = batch
            db.run(lambda txn, c=chunk: txn.insert_many("events", c))
            batch = []
    if batch:
        db.run(lambda txn, c=batch: txn.insert_many("events", c))
    # fine-grained segments give the day zone maps room to prune; the
    # coordinator drops pruned segments before pickling task payloads
    db.compact("events", target_rows=4096)
    db.statistics().analyze("events")
    return db


def workloads() -> list[dict]:
    """Bench queries; ``gate`` is the minimum parallel-vs-naive speedup.
    FLOAT aggregates carry no gate: they exercise the type-gated
    fallback (serial fold over the rid-merged parallel scan), whose
    point is identity, not speed."""
    return [
        {"name": "count(*)",
         "sql": "SELECT COUNT(*) FROM events", "gate": 3.0},
        {"name": "count/sum qty (nullable)",
         "sql": "SELECT COUNT(qty), SUM(qty) FROM events", "gate": 3.0},
        {"name": "min/max day",
         "sql": "SELECT MIN(day), MAX(day), MIN(region), MAX(region) "
                "FROM events", "gate": 3.0},
        {"name": "group by region",
         "sql": "SELECT region, COUNT(*), SUM(qty) FROM events "
                "GROUP BY region", "gate": 3.0},
        {"name": "group by region+status",
         "sql": "SELECT region, status, COUNT(*) FROM events "
                "GROUP BY region, status", "gate": 3.0},
        {"name": "selective scan",
         "sql": "SELECT * FROM events WHERE qty > 95 AND "
                "status = 'failed'", "gate": 3.0},
        {"name": "sum/avg amount (float fallback)",
         "sql": "SELECT SUM(amount), AVG(amount) FROM events",
         "gate": None},
        {"name": "group by region avg amount (float fallback)",
         "sql": "SELECT region, AVG(amount) FROM events GROUP BY region",
         "gate": None},
    ]


IDENTITY_QUERIES = [
    "SELECT * FROM events WHERE region = 'eu' AND day < 30",
    "SELECT * FROM events WHERE region IN ('eu', 'jp') AND qty > 90",
    "SELECT COUNT(*) FROM events WHERE qty IS NULL",
    "SELECT event_id, amount FROM events WHERE day = 3 "
    "ORDER BY amount DESC LIMIT 20",
    "SELECT COUNT(*) FROM events WHERE region LIKE 'a%'",
    "SELECT * FROM events ORDER BY qty DESC LIMIT 10",
]


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def bench_speedups(db: Database, oracle: Database,
                   repeats: int) -> list[dict]:
    """Parallel (sharded + process backend) vs naive (unsharded oracle)
    wall-clock per workload; byte-identity asserted first."""
    out = []
    for w in workloads():
        sql = w["sql"]
        fast = execute_sql(db, sql)
        slow = execute_sql(oracle, sql, use_planner=False)
        assert json.dumps(fast, sort_keys=True) == \
            json.dumps(slow, sort_keys=True), f"rows differ on: {sql}"
        fast_s = _time(lambda: execute_sql(db, sql), repeats)
        slow_s = _time(
            lambda: execute_sql(oracle, sql, use_planner=False), repeats)
        plan = "\n".join(
            r["plan"] for r in execute_sql(db, f"EXPLAIN {sql}"))
        out.append({
            "name": w["name"],
            "sql": sql,
            "gate": w["gate"],
            "naive_seconds": slow_s,
            "parallel_seconds": fast_s,
            "speedup": slow_s / fast_s if fast_s > 0 else float("inf"),
            "plan": plan,
        })
    return out


def bench_shard_pruning(db: Database) -> dict:
    """A shard-key point predicate must skip the pinned-away shards."""
    from repro.telemetry import metrics

    registry = metrics.get_registry()
    scanned0 = registry.get("parallel.shards.scanned")
    pruned0 = registry.get("parallel.shards.pruned")
    sql = "SELECT COUNT(*), SUM(qty) FROM events WHERE region = 'eu'"
    execute_sql(db, sql)
    scanned = registry.get("parallel.shards.scanned") - scanned0
    pruned = registry.get("parallel.shards.pruned") - pruned0
    return {
        "sql": sql,
        "shards_scanned": scanned,
        "shards_pruned": pruned,
        "prune_fraction": pruned / (scanned + pruned)
        if scanned + pruned else 0.0,
    }


def bench_pruned_vs_index(db: Database, oracle: Database,
                          repeats: int) -> dict:
    """The shard-pruned point query vs the PR 5 index path on the same
    predicate: pruning must not regress point serving."""
    oracle.create_index("events", "region", "hash")
    oracle.statistics().analyze("events")
    sql = ("SELECT COUNT(*), SUM(qty) FROM events "
           "WHERE region = 'eu' AND day < 30")
    fast = execute_sql(db, sql)
    indexed = execute_sql(oracle, sql)
    assert json.dumps(fast, sort_keys=True) == \
        json.dumps(indexed, sort_keys=True)
    pruned_s = _time(lambda: execute_sql(db, sql), repeats)
    index_s = _time(lambda: execute_sql(oracle, sql), repeats)
    return {
        "sql": sql,
        "pruned_seconds": pruned_s,
        "index_seconds": index_s,
        "ratio": pruned_s / index_s if index_s > 0 else float("inf"),
        "index_plan": "\n".join(
            r["plan"] for r in execute_sql(oracle, f"EXPLAIN {sql}")),
    }


def check_identity(db: Database, oracle: Database) -> int:
    """Byte-identity of the selection battery vs the unsharded naive."""
    for sql in IDENTITY_QUERIES:
        fast = execute_sql(db, sql)
        slow = execute_sql(oracle, sql, use_planner=False)
        assert json.dumps(fast, sort_keys=True) == \
            json.dumps(slow, sort_keys=True), f"rows differ on: {sql}"
    return len(IDENTITY_QUERIES)


def _gate(name: str, actual: float, op: str, threshold: float) -> dict:
    ok = actual >= threshold if op == ">=" else actual <= threshold
    return {"name": name, "actual": actual, "op": op,
            "threshold": threshold, "pass": ok}


def run_bench(num_rows: int = 150_000, repeats: int = 3,
              smoke: bool = False) -> dict:
    backend = ProcessPoolBackend(max_workers=WORKERS)
    try:
        db = build_db(num_rows, sharded=True)
        db.exec_backend = backend
        oracle = build_db(num_rows, sharded=False)

        # warm the worker pool so timing measures steady state
        execute_sql(db, "SELECT COUNT(*) FROM events WHERE day < 0")

        queries = bench_speedups(db, oracle, repeats)
        pruning = bench_shard_pruning(db)
        point = bench_pruned_vs_index(db, oracle, repeats)
        identity_count = check_identity(db, oracle)

        assert any("ParallelScan" in q["plan"] for q in queries)
        assert any("ParallelAggregate" in q["plan"] for q in queries)

        gates = []
        if not smoke:
            for q in queries:
                if q["gate"] is not None:
                    gates.append(_gate(f"speedup:{q['name']}",
                                       q["speedup"], ">=", q["gate"]))
            gates.append(_gate("prune_fraction",
                               pruning["prune_fraction"], ">=", 0.5))
            gates.append(_gate("pruned_vs_index_ratio",
                               point["ratio"], "<=", 1.2))

        write_table(
            "e22_sharded_parallel",
            f"E22: sharded parallel execution vs unsharded naive "
            f"({num_rows} rows, {SHARDS} shards, {WORKERS} process "
            f"workers, min of {repeats})",
            ["workload", "naive s", "parallel s", "speedup", "gate"],
            [[q["name"], q["naive_seconds"], q["parallel_seconds"],
              q["speedup"], q["gate"] or "-"] for q in queries],
        )
        write_table(
            "e22_shard_pruning",
            f"E22: shard pruning on a shard-key point predicate "
            f"({num_rows} rows)",
            ["metric", "value"],
            [["shards scanned", pruning["shards_scanned"]],
             ["shards pruned", pruning["shards_pruned"]],
             ["prune fraction", pruning["prune_fraction"]],
             ["pruned point s", point["pruned_seconds"]],
             ["index point s", point["index_seconds"]],
             ["pruned/index ratio", point["ratio"]]],
        )

        payload = {
            "experiment": "e22_sharded_parallel",
            "smoke": smoke,
            "cpu_count": os.cpu_count(),
            "num_rows": num_rows,
            "shards": SHARDS,
            "workers": WORKERS,
            "backend": "process",
            "queries": queries,
            "shard_pruning": pruning,
            "pruned_vs_index": point,
            "identity_queries_checked": identity_count,
            "gates": gates,
        }
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(JSON_PATH, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
        print(f"\nwrote {JSON_PATH}")

        for gate in gates:
            assert gate["pass"], (
                f"{gate['name']}: {gate['actual']:.2f} violates "
                f"{gate['op']} {gate['threshold']}"
            )
        return payload
    finally:
        backend.close()


# --------------------------------------------------------------- pytest


def test_e22_smoke():
    """Small-scale E22: identity + plan-shape invariants; no gates."""
    payload = run_bench(num_rows=8_000, repeats=1, smoke=True)
    assert payload["identity_queries_checked"] == len(IDENTITY_QUERIES)
    assert payload["shard_pruning"]["prune_fraction"] >= 0.5
    assert any("ParallelScan" in q["plan"] for q in payload["queries"])


# ----------------------------------------------------------------- main


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=150_000,
                        help="rows in the events table")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (min is reported)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload, no timing gates")
    args = parser.parse_args(argv)
    if args.smoke:
        args.rows = min(args.rows, 8_000)
        args.repeats = 1
    payload = run_bench(num_rows=args.rows, repeats=args.repeats,
                        smoke=args.smoke)
    for q in payload["queries"]:
        print(f"{q['name']}: {q['speedup']:.1f}x over naive")
    pruning = payload["shard_pruning"]
    print(f"shard pruning: {pruning['shards_pruned']} of "
          f"{pruning['shards_pruned'] + pruning['shards_scanned']} shards "
          f"skipped ({pruning['prune_fraction']:.0%})")
    print(f"pruned point vs index: "
          f"{payload['pruned_vs_index']['ratio']:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
