"""E21 — observability: EXPLAIN ANALYZE accuracy, overhead, slowlog, feedback.

The observability claim of the PR: per-operator profiling, the
slow-query log, and cardinality feedback are *free when off* and cheap
when on — and the numbers they report are exact, not approximations of
row flow.

Checked invariants:
  * EXPLAIN ANALYZE actual row counts match the naive-interpreter oracle
    exactly on the E19 query mix (both the annotated top operator and the
    Execution summary line);
  * running the mix with the slow-query log attached (threshold high
    enough that nothing captures) costs < 2% over running it with
    observability off entirely (min-of-N wall-clock);
  * EXPLAIN ANALYZE (full per-operator instrumentation) costs < 15%
    over the plain planned execution of the same statements;
  * with the threshold at 0 the slow-query log captures 100% of issued
    statements; with it effectively infinite it captures none;
  * a deliberately stale-stats misestimation (> 4x q-error) produces a
    feedback entry, triggers a targeted re-ANALYZE of the offending
    column, and the re-planned estimate lands within 2x of the actual.

Run standalone (writes ``results/BENCH_e21.json``)::

    PYTHONPATH=src python benchmarks/bench_e21_observability.py
    PYTHONPATH=src python benchmarks/bench_e21_observability.py --smoke

or via pytest: ``pytest benchmarks/bench_e21_observability.py``.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import re
import sys
import time

from _tables import write_table

from bench_e19_query_serving import SCORE_MAX, build_db, workloads
from repro.storage.rdbms.qcache import QueryResultCache
from repro.storage.rdbms.sql import execute_sql
from repro.telemetry.feedback import q_error
from repro.telemetry.slowlog import SlowQueryLog

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_e21.json")

OFF_OVERHEAD_GATE = 0.02     # slowlog attached, nothing capturing
ANALYZE_OVERHEAD_GATE = 0.15  # full per-operator instrumentation
FEEDBACK_RATIO_GATE = 4.0    # misestimate that must trigger feedback
CORRECTED_WITHIN = 2.0       # post-feedback q-error bar

_ACTUAL_ROWS = re.compile(r"actual rows=(\d+)")
_EXECUTION = re.compile(r"^Execution: (\d+) rows")


def bench_mix(num_items: int) -> list[str]:
    """The E19 query mix plus an aggregate (stage-profile coverage)."""
    return [w["sql"] for w in workloads(num_items)] + [
        "SELECT category, COUNT(*) AS n, SUM(value) AS total FROM items "
        f"WHERE score < {SCORE_MAX // 4} GROUP BY category",
    ]


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


# ----------------------------------------------------- ANALYZE accuracy


def check_analyze_accuracy(db, mix: list[str]) -> list[dict]:
    """EXPLAIN ANALYZE actuals vs the naive interpreter, per query."""
    out = []
    for sql in mix:
        oracle = execute_sql(db, sql, use_planner=False)
        plan_rows = execute_sql(db, f"EXPLAIN ANALYZE {sql}")
        lines = [r["plan"] for r in plan_rows]
        top_actual = None
        for line in lines:
            m = _ACTUAL_ROWS.search(line)
            if m:
                top_actual = int(m.group(1))
                break
        summary = None
        for line in lines:
            m = _EXECUTION.match(line)
            if m:
                summary = int(m.group(1))
        assert top_actual is not None, f"no actuals in plan for: {sql}"
        assert summary is not None, f"no Execution line for: {sql}"
        assert top_actual == len(oracle), (
            f"top operator reported {top_actual} rows, oracle returned "
            f"{len(oracle)} for: {sql}"
        )
        assert summary == len(oracle), (
            f"Execution line reported {summary} rows, oracle returned "
            f"{len(oracle)} for: {sql}"
        )
        out.append({"sql": sql, "rows": len(oracle),
                    "plan": "\n".join(lines)})
    return out


# ------------------------------------------------------------- overhead


def bench_overhead(db, mix: list[str], repeats: int) -> dict:
    """Observability-off vs slowlog-attached vs EXPLAIN ANALYZE.

    Per-(variant, query) *floors* — the min over interleaved rounds with
    GC paused — are the comparison basis: a query's best-case time is a
    stable property of the code path, where whole-mix wall clocks on a
    shared machine jitter by more than the gates under test.
    """
    plain_cache = QueryResultCache(db)
    watched_cache = QueryResultCache(
        db, slowlog=SlowQueryLog(threshold_seconds=1e9))

    def clear_caches():
        plain_cache.clear()   # measure execution, not cache hits
        watched_cache.clear()

    variants = {
        "off": lambda sql: plain_cache.execute(sql),
        "watched": lambda sql: watched_cache.execute(sql),
        "plain": lambda sql: execute_sql(db, sql),
        "analyze": lambda sql: execute_sql(db, f"EXPLAIN ANALYZE {sql}"),
    }
    floors = {name: [float("inf")] * len(mix) for name in variants}
    # one untimed warm-up pass per variant
    for fn in variants.values():
        for sql in mix:
            clear_caches()
            fn(sql)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for i, sql in enumerate(mix):
                for name, fn in variants.items():
                    clear_caches()
                    started = time.perf_counter()
                    fn(sql)
                    elapsed = time.perf_counter() - started
                    if elapsed < floors[name][i]:
                        floors[name][i] = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    off_s = sum(floors["off"])
    watched_s = sum(floors["watched"])
    plain_s = sum(floors["plain"])
    analyze_s = sum(floors["analyze"])
    return {
        "off_seconds": off_s,
        "watched_seconds": watched_s,
        "watched_overhead": (watched_s - off_s) / off_s if off_s else 0.0,
        "plain_seconds": plain_s,
        "analyze_seconds": analyze_s,
        "analyze_overhead": (analyze_s - plain_s) / plain_s
        if plain_s else 0.0,
    }


# -------------------------------------------------------------- slowlog


def check_slowlog(db, mix: list[str]) -> dict:
    """Threshold 0 captures everything; effectively-inf captures nothing."""
    capture_all = SlowQueryLog(threshold_seconds=0.0, annotate=False)
    capture_none = SlowQueryLog(threshold_seconds=1e9, annotate=False)
    all_cache = QueryResultCache(db, slowlog=capture_all)
    none_cache = QueryResultCache(db, slowlog=capture_none)
    for sql in mix:
        all_cache.execute(sql)
        none_cache.execute(sql)
    captured = len(capture_all.entries())
    missed = len(capture_none.entries())
    assert captured == len(mix), (
        f"slow-query log captured {captured} of {len(mix)} statements "
        f"at threshold 0"
    )
    assert missed == 0, (
        f"slow-query log captured {missed} statements below threshold"
    )
    # One annotated capture: the entry must carry an ANALYZE plan.
    annotated = SlowQueryLog(threshold_seconds=0.0)
    annotated.observe(db, mix[0], seconds=1.0, rows=0)
    entry = annotated.entries()[-1]
    assert "plan" in entry and any(
        "actual rows=" in line for line in entry["plan"]
    ), "annotated slowlog entry is missing its ANALYZE plan"
    return {"issued": len(mix), "captured_at_zero": captured,
            "captured_below_threshold": missed, "annotated": True}


# ------------------------------------------------------------- feedback


def check_feedback() -> dict:
    """Stale stats -> misestimate -> targeted re-ANALYZE -> corrected."""
    from repro.storage.rdbms.engine import Database
    from repro.storage.rdbms.types import Column, ColumnType, TableSchema

    fdb = Database()
    fdb.create_table(TableSchema(
        "events",
        (Column("event_id", ColumnType.INT, nullable=False),
         Column("kind", ColumnType.TEXT),
         Column("val", ColumnType.FLOAT)),
        primary_key="event_id",
    ))
    # Uniform base: 5000 rows over 100 kinds, then ANALYZE...
    fdb.run(lambda t: t.insert_many("events", [
        {"event_id": i, "kind": f"k{i % 100}", "val": float(i)}
        for i in range(5000)
    ]))
    stats = fdb.statistics()
    stats.analyze("events")
    # ...then a skewed tail small enough (20%) to dodge drift refresh.
    fdb.run(lambda t: t.insert_many("events", [
        {"event_id": 5000 + i, "kind": "hot", "val": 1.0}
        for i in range(1000)
    ]))

    def hot_estimate() -> float:
        rows = execute_sql(
            fdb, "EXPLAIN SELECT COUNT(*) AS n FROM events "
                 "WHERE kind = 'hot'")
        for r in rows:
            m = re.search(r"rows~(\d+)", r["plan"])
            if m:
                return float(m.group(1))
        raise AssertionError("no row estimate in plan")

    est_before = hot_estimate()
    actual = execute_sql(
        fdb, "SELECT COUNT(*) AS n FROM events WHERE kind = 'hot'"
    )[0]["n"]
    ratio_before = q_error(est_before, actual)
    assert ratio_before > FEEDBACK_RATIO_GATE, (
        f"scenario failed to misestimate: q-error {ratio_before:.1f} "
        f"<= {FEEDBACK_RATIO_GATE}"
    )
    entries = [e.as_dict() for e in stats.feedback.entries()]
    assert any(e["column"] == "kind" and e["misestimates"] >= 1
               for e in entries), "no feedback entry recorded"
    est_after = hot_estimate()  # stats() saw the pending column, re-analyzed
    ratio_after = q_error(est_after, actual)
    assert ratio_after <= CORRECTED_WITHIN, (
        f"estimate still off {ratio_after:.1f}x after targeted "
        f"re-ANALYZE (was {ratio_before:.1f}x)"
    )
    return {
        "actual_rows": actual,
        "estimate_before": est_before,
        "estimate_after": est_after,
        "q_error_before": ratio_before,
        "q_error_after": ratio_after,
        "feedback_entries": entries,
    }


# ------------------------------------------------------------------ run


def run_bench(num_items: int = 20_000, repeats: int = 5,
              smoke: bool = False) -> dict:
    db = build_db(num_items)
    mix = bench_mix(num_items)

    accuracy = check_analyze_accuracy(db, mix)
    overhead = bench_overhead(db, mix, repeats)
    slowlog = check_slowlog(db, mix)
    feedback = check_feedback()

    write_table(
        "e21_observability",
        f"E21: observability overhead ({num_items} items, "
        f"min of {repeats})",
        ["variant", "seconds", "overhead"],
        [["observability off", overhead["off_seconds"], "-"],
         ["slowlog attached", overhead["watched_seconds"],
          f"{100 * overhead['watched_overhead']:.2f}%"],
         ["plain planned", overhead["plain_seconds"], "-"],
         ["EXPLAIN ANALYZE", overhead["analyze_seconds"],
          f"{100 * overhead['analyze_overhead']:.2f}%"]],
    )

    payload = {
        "experiment": "e21_observability",
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "num_items": num_items,
        "accuracy": [{"sql": a["sql"], "rows": a["rows"]}
                     for a in accuracy],
        "overhead": overhead,
        "slowlog": slowlog,
        "feedback": {k: v for k, v in feedback.items()
                     if k != "feedback_entries"},
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    print(f"\nwrote {JSON_PATH}")

    if not smoke:
        assert overhead["watched_overhead"] < OFF_OVERHEAD_GATE, (
            f"slow-query log adds "
            f"{100 * overhead['watched_overhead']:.2f}% with nothing "
            f"capturing; the bar is {100 * OFF_OVERHEAD_GATE:.0f}%"
        )
        assert overhead["analyze_overhead"] < ANALYZE_OVERHEAD_GATE, (
            f"EXPLAIN ANALYZE adds "
            f"{100 * overhead['analyze_overhead']:.2f}%; the bar is "
            f"{100 * ANALYZE_OVERHEAD_GATE:.0f}%"
        )
    return payload


# --------------------------------------------------------------- pytest


def test_e21_smoke():
    """Small-scale E21: accuracy/slowlog/feedback invariants, no gates."""
    payload = run_bench(num_items=2000, repeats=1, smoke=True)
    assert payload["slowlog"]["captured_at_zero"] == \
        payload["slowlog"]["issued"]
    assert payload["slowlog"]["captured_below_threshold"] == 0
    assert payload["feedback"]["q_error_before"] > FEEDBACK_RATIO_GATE
    assert payload["feedback"]["q_error_after"] <= CORRECTED_WITHIN


# ----------------------------------------------------------------- main


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--items", type=int, default=20_000,
                        help="rows in the items table")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repeats (min is reported)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload, no timing assertions")
    args = parser.parse_args(argv)
    if args.smoke:
        args.items = min(args.items, 2000)
        args.repeats = 1
    payload = run_bench(num_items=args.items, repeats=args.repeats,
                        smoke=args.smoke)
    o = payload["overhead"]
    print(f"slowlog attached (nothing capturing): "
          f"{100 * o['watched_overhead']:+.2f}%")
    print(f"EXPLAIN ANALYZE instrumentation: "
          f"{100 * o['analyze_overhead']:+.2f}%")
    f = payload["feedback"]
    print(f"feedback: estimate {f['estimate_before']:.0f} -> "
          f"{f['estimate_after']:.0f} (actual {f['actual_rows']}, "
          f"q-error {f['q_error_before']:.1f} -> "
          f"{f['q_error_after']:.1f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
