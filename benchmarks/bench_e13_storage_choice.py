"""E13 — One device does not fit all data forms.

Paper anchor: Section 4, storage layer — "these different forms of data
have very different characteristics, and may best be kept in different
storage devices": sequential intermediates → file system; concurrently
edited final structure → RDBMS.

Reported table: the same 2,000-record write-then-scan workload run on the
sequential record-file store and on the transactional RDBMS — write and
scan throughput for each — showing the file store wins the scan-heavy
intermediate workload while only the RDBMS provides transactional point
updates (measured in its own column).
"""

import time

from _tables import write_table

from repro.storage.filestore import RecordFileStore
from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.types import Column, ColumnType, TableSchema

N_RECORDS = 2000


def _payloads():
    return [
        {"entity": f"city{i % 50}", "attribute": "sep_temp",
         "value": 40.0 + i % 60, "confidence": 0.9}
        for i in range(N_RECORDS)
    ]


def _filestore_run(tmp_path):
    store = RecordFileStore(str(tmp_path / "filestore"))
    payloads = _payloads()
    started = time.perf_counter()
    store.append_many(payloads)
    write_time = time.perf_counter() - started
    started = time.perf_counter()
    count = sum(1 for _ in store.scan())
    scan_time = time.perf_counter() - started
    assert count == N_RECORDS
    return write_time, scan_time, store


def _rdbms_run(tmp_path):
    db = Database(str(tmp_path / "rdbms"))
    db.create_table(TableSchema(
        "intermediate",
        (Column("rid", ColumnType.INT, nullable=False),
         Column("entity", ColumnType.TEXT),
         Column("attribute", ColumnType.TEXT),
         Column("value", ColumnType.FLOAT),
         Column("confidence", ColumnType.FLOAT)),
        primary_key="rid",
    ))
    payloads = _payloads()
    started = time.perf_counter()
    def insert_all(txn):
        for i, payload in enumerate(payloads):
            txn.insert("intermediate", {"rid": i, **payload})
    db.run(insert_all)
    write_time = time.perf_counter() - started
    started = time.perf_counter()
    count = len(db.run(lambda t: t.scan("intermediate")))
    scan_time = time.perf_counter() - started
    assert count == N_RECORDS
    return write_time, scan_time, db


def test_e13_device_choice(benchmark, tmp_path):
    fs_write, fs_scan, store = _filestore_run(tmp_path)
    db_write, db_scan, db = _rdbms_run(tmp_path)
    write_table(
        "e13_device_choice",
        f"E13: {N_RECORDS}-record intermediate workload per device",
        ["device", "write sec", "scan sec",
         "writes/sec", "scans of full data/sec"],
        [
            ["record file store", fs_write, fs_scan,
             N_RECORDS / fs_write, 1.0 / fs_scan],
            ["transactional RDBMS", db_write, db_scan,
             N_RECORDS / db_write, 1.0 / db_scan],
        ],
    )
    # the sequential store wins the write path by a clear margin
    assert fs_write < db_write
    benchmark(lambda: sum(1 for _ in store.scan()))
    db.close()


def test_e13_rdbms_unique_capability(benchmark, tmp_path):
    """What the file store cannot do: concurrent transactional updates.
    This is why the *final* structure goes to the RDBMS despite slower
    bulk writes."""
    db = Database()
    db.create_table(TableSchema(
        "final",
        (Column("id", ColumnType.INT, nullable=False),
         Column("value", ColumnType.FLOAT)),
        primary_key="id",
    ))
    db.run(lambda t: t.insert("final", {"id": 1, "value": 0.0}))

    def transactional_update():
        def work(txn):
            row = txn.get_by_pk("final", 1)
            txn.update("final", row.rid, {"value": row.values["value"] + 1})
        db.run(work)

    updates = 200
    started = time.perf_counter()
    for _ in range(updates):
        transactional_update()
    elapsed = time.perf_counter() - started
    final = db.run(lambda t: t.get_by_pk("final", 1)).values["value"]
    assert final == updates
    write_table(
        "e13b_rdbms_updates",
        "E13b: transactional point updates (RDBMS-only capability)",
        ["metric", "value"],
        [["updates applied", updates],
         ["updates / sec", updates / elapsed],
         ["lost updates", 0]],
    )
    benchmark(transactional_update)
