"""One-shot gate: smoke-run E15, run the E16–E18 benches, then tier-1 tests.

Intended as the pre-merge check — it exercises the real-parallelism path
end to end (small workload, equality invariants enforced, no timing
assertions), runs the full telemetry-overhead bench (E16: fails when
end-to-end instrumentation costs more than 10%), runs the full extraction
cache bench (E17: fails unless a warm run after 10% churn is >= 3x faster
than cold and warm work exactly matches the churned text), runs the full
fault-tolerance bench (E18: fails unless output under 1/5/10% injected
faults is byte-identical to the fault-free run minus quarantined
documents, fault-free retry overhead is < 5%, and crash recovery loses no
committed transactions), runs the full query-serving bench (E19: fails
unless the cost-based planner beats naive execution by >= 5x on the
selective join and >= 3x on the range scan at 100k rows, a warm
result-cache hit is >= 10x over cold, and every planner query is
row-identical to naive), and then confirms the whole repo is still
green::

    python benchmarks/run_all.py

Exits non-zero if any step fails.
"""

from __future__ import annotations

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _run(title: str, cmd: list[str]) -> int:
    print(f"\n=== {title} ===\n$ {' '.join(cmd)}", flush=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"),
                    env.get("PYTHONPATH", "")) if p
    )
    return subprocess.call(cmd, cwd=REPO_ROOT, env=env)


def main() -> int:
    steps = [
        ("E15 parallel-backend bench (smoke)",
         [sys.executable,
          os.path.join(REPO_ROOT, "benchmarks", "bench_e15_parallel_backend.py"),
          "--smoke"]),
        ("E16 telemetry-overhead bench (<=10% gate)",
         [sys.executable,
          os.path.join(REPO_ROOT, "benchmarks",
                       "bench_e16_telemetry_overhead.py")]),
        ("E17 extraction-cache bench (>=3x warm speedup gate)",
         [sys.executable,
          os.path.join(REPO_ROOT, "benchmarks",
                       "bench_e17_cache_churn.py")]),
        ("E18 fault-tolerance bench (identity + <5% overhead gates)",
         [sys.executable,
          os.path.join(REPO_ROOT, "benchmarks",
                       "bench_e18_fault_tolerance.py")]),
        ("E19 query-serving bench (planner speedup + cache gates)",
         [sys.executable,
          os.path.join(REPO_ROOT, "benchmarks",
                       "bench_e19_query_serving.py")]),
        ("tier-1 tests",
         [sys.executable, "-m", "pytest", "-x", "-q"]),
    ]
    for title, cmd in steps:
        code = _run(title, cmd)
        if code != 0:
            print(f"\nFAILED: {title} (exit {code})")
            return code
    print("\nall steps passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
