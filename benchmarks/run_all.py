"""One-shot gate: smoke-run the E15 benchmark, then the tier-1 test suite.

Intended as the pre-merge check for the execution-backend / batched-write
work — it exercises the real-parallelism path end to end (small workload,
equality invariants enforced, no timing assertions) and then confirms the
whole repo is still green::

    python benchmarks/run_all.py

Exits non-zero if either step fails.
"""

from __future__ import annotations

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _run(title: str, cmd: list[str]) -> int:
    print(f"\n=== {title} ===\n$ {' '.join(cmd)}", flush=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"),
                    env.get("PYTHONPATH", "")) if p
    )
    return subprocess.call(cmd, cwd=REPO_ROOT, env=env)


def main() -> int:
    steps = [
        ("E15 parallel-backend bench (smoke)",
         [sys.executable,
          os.path.join(REPO_ROOT, "benchmarks", "bench_e15_parallel_backend.py"),
          "--smoke"]),
        ("tier-1 tests",
         [sys.executable, "-m", "pytest", "-x", "-q"]),
    ]
    for title, cmd in steps:
        code = _run(title, cmd)
        if code != 0:
            print(f"\nFAILED: {title} (exit {code})")
            return code
    print("\nall steps passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
