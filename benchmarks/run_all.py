"""One-shot gate: smoke-run E15, run the E16–E24 benches, then tier-1 tests.

Intended as the pre-merge check — it exercises the real-parallelism path
end to end (small workload, equality invariants enforced, no timing
assertions), runs the full telemetry-overhead bench (E16: fails when
end-to-end instrumentation costs more than 10%), runs the full extraction
cache bench (E17: fails unless a warm run after 10% churn is >= 3x faster
than cold and warm work exactly matches the churned text), runs the full
fault-tolerance bench (E18: fails unless output under 1/5/10% injected
faults is byte-identical to the fault-free run minus quarantined
documents, fault-free retry overhead is < 5%, and crash recovery loses no
committed transactions), runs the full query-serving bench (E19: fails
unless the cost-based planner beats naive execution by >= 5x on the
selective join and >= 3x on the range scan at 100k rows, a warm
result-cache hit is >= 10x over cold, and every planner query is
row-identical to naive), runs the full columnar-scan bench (E20: fails
unless the vectorized segment executor beats naive row-at-a-time by
>= 10x on full-scan aggregates at 1M rows, zone maps prune most segments
on the trailing-window query, every query is byte-identical to naive,
and compaction survives a simulated crash), runs the full observability
bench (E21: fails unless EXPLAIN ANALYZE actuals match the naive oracle
exactly, the slow-query log captures 100% above / 0% below threshold,
an attached-but-idle slow-query log costs < 2%, full EXPLAIN ANALYZE
instrumentation costs < 15%, and a stale-stats misestimate feeds back
into a targeted re-ANALYZE that corrects the estimate), runs the full
sharded-execution bench (E22: fails unless parallel scans/aggregates
over a hash-sharded table beat naive execution by >= 3x with 4 process
workers at 150k rows, every query is byte-identical to the unsharded
oracle, a shard-key point predicate prunes >= 50% of the shards, and
the pruned point query is <= 1.2x the index path), runs the full
concurrent-serving bench (E23: fails unless MVCC snapshot readers stay
consistent and row-identical to a serialized oracle under writer +
compaction + reshard churn with zero reader lock waits and <= 2x idle
p99 tail latency, and graceful shutdown drains in-flight queries with a
consistent post-drain reopen), runs the full streaming-DGE bench (E24:
fails unless a 1% churn batch over 10k documents re-scores >= 10x fewer
pairs than a full re-resolution while clusters, fused values, and
standing-query notifications stay byte-identical to a full recompute
after every batch, and a producer 5x faster than the consumer is
throttled by the bounded queues without dropping a delta), re-validates
every
``results/BENCH_*.json`` against its declared gates in one place
(``check_gates.py``), and then confirms the whole repo is still
green::

    python benchmarks/run_all.py
    python benchmarks/run_all.py --only E22      # a single step
    python benchmarks/run_all.py --smoke         # tiny workloads, no gates

Exits non-zero if any step fails.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _run(title: str, cmd: list[str]) -> int:
    print(f"\n=== {title} ===\n$ {' '.join(cmd)}", flush=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"),
                    env.get("PYTHONPATH", "")) if p
    )
    return subprocess.call(cmd, cwd=REPO_ROOT, env=env)


def _bench(script: str, *extra: str) -> list[str]:
    return [sys.executable,
            os.path.join(REPO_ROOT, "benchmarks", script), *extra]


def build_steps(smoke: bool) -> list[tuple[str, str, list[str]]]:
    """(key, title, cmd) triples.  ``smoke`` shrinks every bench and
    drops its timing gates (identity invariants are still enforced)."""
    flag = ("--smoke",) if smoke else ()
    return [
        ("E15", "E15 parallel-backend bench (smoke)",
         _bench("bench_e15_parallel_backend.py", "--smoke")),
        ("E16", "E16 telemetry-overhead bench (<=10% gate)",
         _bench("bench_e16_telemetry_overhead.py", *flag)),
        ("E17", "E17 extraction-cache bench (>=3x warm speedup gate)",
         _bench("bench_e17_cache_churn.py", *flag)),
        ("E18", "E18 fault-tolerance bench (identity + <5% overhead gates)",
         _bench("bench_e18_fault_tolerance.py", *flag)),
        ("E19", "E19 query-serving bench (planner speedup + cache gates)",
         _bench("bench_e19_query_serving.py", *flag)),
        ("E20", "E20 columnar-scan bench (vectorized speedup + crash gates)",
         _bench("bench_e20_columnar_scan.py", *flag)),
        ("E21", "E21 observability bench (accuracy + overhead gates)",
         _bench("bench_e21_observability.py", *flag)),
        ("E22", "E22 sharded-execution bench (speedup + pruning gates)",
         _bench("bench_e22_sharded_parallel.py", *flag)),
        ("E23", "E23 concurrent-serving bench (MVCC + admission gates)",
         _bench("bench_e23_concurrent_serving.py", *flag)),
        ("E24", "E24 streaming-DGE bench (O(delta) + identity gates)",
         _bench("bench_e24_streaming.py", *flag)),
        ("gates", "declared-gate re-validation (check_gates.py)",
         _bench("check_gates.py")),
        ("tests", "tier-1 tests",
         [sys.executable, "-m", "pytest", "-x", "-q"]),
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--only", metavar="STEP", default=None,
                        help="run one step by key: E15..E24, 'gates', "
                             "or 'tests'")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workloads everywhere, no timing gates")
    args = parser.parse_args(argv)

    steps = build_steps(args.smoke)
    if args.only is not None:
        key = args.only.strip()
        key = key.upper() if key.lower().startswith("e") else key.lower()
        steps = [s for s in steps if s[0] == key]
        if not steps:
            keys = ", ".join(k for k, _, _ in build_steps(args.smoke))
            print(f"unknown step {args.only!r}; choose from: {keys}",
                  file=sys.stderr)
            return 2
    for _, title, cmd in steps:
        code = _run(title, cmd)
        if code != 0:
            print(f"\nFAILED: {title} (exit {code})")
            return code
    print("\nall steps passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
