"""E23 — concurrent serving: MVCC snapshot reads under writer contention.

The robustness claim of the PR: SELECTs run lock-free against a
commit-point snapshot while writers keep strict 2PL, so a read-heavy
serving workload keeps answering — correctly and without collapsing —
while ingest, compaction, and resharding churn the same table; and the
serving layer shuts down gracefully under load.

Checked invariants (recorded as machine-readable ``gates``):
  * **snapshot consistency** — every concurrent reader observes the
    writer's invariant (the ledger total never changes mid-transfer) in
    every single read, across compaction and resharding;
  * **row identity** — after the run, the contended table is
    row-identical to a serialized oracle that replays the writer's
    committed script single-threaded;
  * **zero reader lock waits** — the mutator is the only thread that
    touches the lock manager, so the ``rdbms.lock.waits`` delta over the
    mixed phase must be exactly 0 (readers never enter the queue), and a
    reader completes instantly even against a held X lock;
  * **reader p99 ≤ 2× idle** — reader tail latency with the mutator
    running vs the same reader pool idle (non-smoke only);
  * **graceful drain** — ``system.close()`` under a live query load
    drains in-flight queries, sheds new arrivals with typed errors, and
    a post-drain reopen of the same workspace recovers a consistent
    facts table.

Run standalone (writes ``results/BENCH_e23.json``)::

    PYTHONPATH=src python benchmarks/bench_e23_concurrent_serving.py
    PYTHONPATH=src python benchmarks/bench_e23_concurrent_serving.py --smoke

or via pytest: ``pytest benchmarks/bench_e23_concurrent_serving.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import sys
import tempfile
import threading
import time

from _tables import write_table

from repro.core.system import StructureManagementSystem
from repro.errors import AdmissionRejected, QueryTimeoutError
from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.sql import execute_sql
from repro.storage.rdbms.types import Column, ColumnType, TableSchema
from repro.telemetry import metrics

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_e23.json")

ACCOUNTS = 64
BALANCE = 1_000
TOTAL = ACCOUNTS * BALANCE


def build_ledger() -> Database:
    db = Database()
    db.create_table(TableSchema(
        "ledger",
        (Column("id", ColumnType.INT, nullable=False),
         Column("balance", ColumnType.INT)),
        primary_key="id",
    ))
    db.run(lambda t: t.insert_many(
        "ledger", [{"id": i, "balance": BALANCE} for i in range(ACCOUNTS)]))
    db.compact("ledger")  # start with frozen segments in the snapshot mix
    return db


def _apply_transfer(db: Database, a: int, b: int, amount: int) -> None:
    def transfer(txn):
        ra = txn.get_by_pk("ledger", a)
        rb = txn.get_by_pk("ledger", b)
        txn.update("ledger", ra.rid, {"balance": ra.values["balance"] - amount})
        txn.update("ledger", rb.rid, {"balance": rb.values["balance"] + amount})
    db.run(transfer)


def _reader_pass(db: Database, reads: int, latencies: list[float],
                 bad_totals: list[int]) -> None:
    """One reader thread: alternating aggregate / point reads, timed."""
    for i in range(reads):
        t0 = time.perf_counter()
        if i % 2 == 0:
            rows = execute_sql(db, "SELECT SUM(balance) AS s FROM ledger")
            total = rows[0]["s"]
            if total != TOTAL:
                bad_totals.append(total)
        else:
            execute_sql(db, f"SELECT balance FROM ledger WHERE id = {i % ACCOUNTS}")
        latencies.append(time.perf_counter() - t0)


def _p99(latencies: list[float]) -> float:
    ordered = sorted(latencies)
    return ordered[int(0.99 * (len(ordered) - 1))]


def bench_mixed_workload(reads_per_reader: int, readers: int) -> dict:
    """Idle vs contended reader latencies + consistency + oracle identity."""
    db = build_ledger()
    registry = metrics.get_registry()

    def run_readers() -> tuple[list[float], list[int]]:
        latencies: list[float] = []
        bad: list[int] = []
        threads = [threading.Thread(
            target=_reader_pass, args=(db, reads_per_reader, latencies, bad))
            for _ in range(readers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return latencies, bad

    # Phase 1: idle baseline — same reader pool, no writers.
    idle_latencies, idle_bad = run_readers()

    # Phase 2: mixed — a single mutator thread transfers, compacts, and
    # reshards in a deterministic script while the reader pool re-runs.
    # Being single-threaded it never waits for a lock, so ANY
    # rdbms.lock.waits delta in this phase would come from readers.
    script: list[tuple[int, int, int]] = []
    stop = threading.Event()
    mutator_errors: list[BaseException] = []

    def mutator():
        rng = random.Random(23)
        layouts = [("id", 2), ("id", 4), (None, 1)]
        i = 0
        try:
            while not stop.is_set():
                a, b = rng.sample(range(ACCOUNTS), 2)
                amount = rng.randrange(1, 20)
                _apply_transfer(db, a, b, amount)
                script.append((a, b, amount))
                if i % 40 == 39:
                    db.compact("ledger")
                if i % 100 == 99:
                    key, count = layouts[(i // 100) % len(layouts)]
                    db.reshard("ledger", key, count)
                i += 1
                time.sleep(0.0005)  # a steady ingest trickle, not a saturating loop
        except BaseException as exc:  # pragma: no cover - diagnostic
            mutator_errors.append(exc)

    waits_before = registry.get("rdbms.lock.waits")
    mutator_thread = threading.Thread(target=mutator)
    mutator_thread.start()
    mixed_latencies, mixed_bad = run_readers()
    stop.set()
    mutator_thread.join()
    waits_delta = registry.get("rdbms.lock.waits") - waits_before
    assert not mutator_errors, f"mutator failed: {mutator_errors[0]!r}"

    # Phase 3: readers against a *held* exclusive lock — pre-MVCC this
    # deadlocked the serving path into the lock queue; now it must
    # return the committed value instantly.
    txn = db.begin()
    row = txn.get_by_pk("ledger", 0)
    held_value = row.values["balance"]
    txn.update("ledger", row.rid, {"balance": held_value - 1})
    t0 = time.perf_counter()
    blocked_rows = execute_sql(db, "SELECT balance FROM ledger WHERE id = 0")
    blocked_read_seconds = time.perf_counter() - t0
    read_past_lock_ok = blocked_rows == [{"balance": held_value}]
    txn.abort()

    # Serialized oracle: replay the committed script single-threaded and
    # compare the full table row-for-row.
    oracle = Database()
    oracle.create_table(TableSchema(
        "ledger",
        (Column("id", ColumnType.INT, nullable=False),
         Column("balance", ColumnType.INT)),
        primary_key="id",
    ))
    oracle.run(lambda t: t.insert_many(
        "ledger", [{"id": i, "balance": BALANCE} for i in range(ACCOUNTS)]))
    for a, b, amount in script:
        _apply_transfer(oracle, a, b, amount)
    sql = "SELECT id, balance FROM ledger ORDER BY id"
    identical = execute_sql(db, sql) == execute_sql(oracle, sql)

    return {
        "readers": readers,
        "reads_per_reader": reads_per_reader,
        "committed_transfers": len(script),
        "idle_p99_seconds": _p99(idle_latencies),
        "mixed_p99_seconds": _p99(mixed_latencies),
        "p99_degradation": (_p99(mixed_latencies) / _p99(idle_latencies)
                            if _p99(idle_latencies) > 0 else 1.0),
        "idle_inconsistent_reads": len(idle_bad),
        "mixed_inconsistent_reads": len(mixed_bad),
        "reader_lock_waits": waits_delta,
        "read_past_held_lock_ok": read_past_lock_ok,
        "blocked_read_seconds": blocked_read_seconds,
        "oracle_identical": identical,
    }


def bench_graceful_drain(queries_per_worker: int) -> dict:
    """Close the system under a live query load; reopen and recheck."""
    workspace = tempfile.mkdtemp(prefix="e23-serving-")
    try:
        system = StructureManagementSystem(workspace=workspace,
                                           max_concurrent_queries=4,
                                           max_queued_queries=8)
        facts = [{"fact_id": i, "entity": f"e{i % 7}", "attribute": "size",
                  "value_text": None, "value_num": float(i),
                  "confidence": 1.0, "doc_id": f"d{i}"}
                 for i in range(500)]
        system.db.run(lambda t: t.insert_many("facts", facts))

        shed: list[str] = []
        unexpected: list[BaseException] = []
        served = [0]

        def worker():
            for i in range(queries_per_worker):
                try:
                    system.query(
                        "SELECT COUNT(*) AS n FROM facts WHERE "
                        f"value_num >= {i % 400}")
                    served[0] += 1
                except (AdmissionRejected, QueryTimeoutError) as exc:
                    # Typed shedding/cancellation is the *expected* way
                    # in-flight work ends during a drain.
                    shed.append(type(exc).__name__)
                except BaseException as exc:  # pragma: no cover
                    unexpected.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.05)  # let the load ramp, then pull the plug under it
        t0 = time.perf_counter()
        system.close()
        drain_seconds = time.perf_counter() - t0
        for t in threads:
            t.join()
        drained_clean = (not unexpected
                         and system.gate.stats()["active"] == 0)

        reopened = StructureManagementSystem(workspace=workspace)
        count = reopened.query("SELECT COUNT(*) AS n FROM facts")[0]["n"]
        total = reopened.query(
            "SELECT SUM(value_num) AS s FROM facts")[0]["s"]
        reopened.close()
        reopen_ok = count == 500 and total == sum(float(i)
                                                  for i in range(500))
        return {
            "queries_served": served[0],
            "queries_shed": len(shed),
            "unexpected_errors": [repr(e) for e in unexpected],
            "drain_seconds": drain_seconds,
            "drained_clean": drained_clean,
            "reopen_consistent": reopen_ok,
        }
    finally:
        shutil.rmtree(workspace, ignore_errors=True)


def _gate(name: str, actual: float, op: str, threshold: float) -> dict:
    ops = {">=": actual >= threshold, "<=": actual <= threshold,
           "==": actual == threshold}
    return {"name": name, "actual": float(actual), "op": op,
            "threshold": threshold, "pass": ops[op]}


def run_bench(reads_per_reader: int = 300, readers: int = 2,
              queries_per_worker: int = 200, smoke: bool = False) -> dict:
    mixed = bench_mixed_workload(reads_per_reader, readers)
    drain = bench_graceful_drain(queries_per_worker)

    gates = [
        _gate("snapshot_consistency",
              mixed["mixed_inconsistent_reads"]
              + mixed["idle_inconsistent_reads"], "==", 0.0),
        _gate("oracle_row_identity",
              1.0 if mixed["oracle_identical"] else 0.0, "==", 1.0),
        _gate("reader_lock_waits", mixed["reader_lock_waits"], "==", 0.0),
        _gate("read_past_held_lock",
              1.0 if mixed["read_past_held_lock_ok"] else 0.0, "==", 1.0),
        _gate("drain_clean", 1.0 if drain["drained_clean"] else 0.0,
              "==", 1.0),
        _gate("reopen_consistent",
              1.0 if drain["reopen_consistent"] else 0.0, "==", 1.0),
    ]
    if not smoke:
        gates.append(_gate("p99_degradation", mixed["p99_degradation"],
                           "<=", 2.0))

    write_table(
        "e23_concurrent_serving",
        f"E23: reader latency idle vs under writer/compact/reshard churn "
        f"({readers} readers x {reads_per_reader} reads, "
        f"{mixed['committed_transfers']} transfers committed)",
        ["metric", "value"],
        [["idle p99 (s)", mixed["idle_p99_seconds"]],
         ["mixed p99 (s)", mixed["mixed_p99_seconds"]],
         ["p99 degradation", mixed["p99_degradation"]],
         ["inconsistent reads", mixed["mixed_inconsistent_reads"]],
         ["reader lock waits", mixed["reader_lock_waits"]],
         ["oracle identical", mixed["oracle_identical"]],
         ["drain clean", drain["drained_clean"]],
         ["reopen consistent", drain["reopen_consistent"]]],
    )

    payload = {
        "experiment": "e23_concurrent_serving",
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "mixed_workload": mixed,
        "graceful_drain": drain,
        "gates": gates,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    print(f"\nwrote {JSON_PATH}")

    for gate in gates:
        assert gate["pass"], (
            f"{gate['name']}: {gate['actual']:.3f} violates "
            f"{gate['op']} {gate['threshold']}"
        )
    return payload


# --------------------------------------------------------------- pytest


def test_e23_smoke():
    """Small-scale E23: consistency/identity/drain invariants, no timing."""
    payload = run_bench(reads_per_reader=40, readers=2,
                        queries_per_worker=30, smoke=True)
    mixed = payload["mixed_workload"]
    assert mixed["oracle_identical"]
    assert mixed["mixed_inconsistent_reads"] == 0
    assert mixed["reader_lock_waits"] == 0
    assert payload["graceful_drain"]["drained_clean"]
    assert payload["graceful_drain"]["reopen_consistent"]


# ----------------------------------------------------------------- main


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reads", type=int, default=300,
                        help="reads per reader thread per phase")
    parser.add_argument("--readers", type=int, default=2,
                        help="reader threads")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload, no timing assertions")
    args = parser.parse_args(argv)
    if args.smoke:
        args.reads = min(args.reads, 40)
    payload = run_bench(reads_per_reader=args.reads, readers=args.readers,
                        queries_per_worker=30 if args.smoke else 200,
                        smoke=args.smoke)
    mixed = payload["mixed_workload"]
    print(f"idle p99 {mixed['idle_p99_seconds'] * 1000:.2f} ms, "
          f"mixed p99 {mixed['mixed_p99_seconds'] * 1000:.2f} ms "
          f"({mixed['p99_degradation']:.2f}x), "
          f"{mixed['committed_transfers']} transfers committed, "
          f"reader lock waits {mixed['reader_lock_waits']:.0f}")
    drain = payload["graceful_drain"]
    print(f"drain: {drain['queries_served']} served / "
          f"{drain['queries_shed']} shed, clean={drain['drained_clean']}, "
          f"reopen consistent={drain['reopen_consistent']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
