"""E12 — Schema evolution under incremental generation.

Paper anchor: Figure 1, Part IV — "since this structure often is generated
in an incremental, best-effort fashion, in many cases the schema will
evolve over time.  Hence, Part IV will likely have to deal with schema
evolution challenges."

Reported series:
  (a) rows physically rewritten by the eager vs lazy policy as k changes
      accumulate before the next write (lazy composes all pending changes
      into one pass: k*N vs N);
  (b) read-path cost of lazy adapters (rows/sec with pending changes);
  (c) end-to-end evolution scenario time (add, rename, split, retype).
"""

import time

from _tables import write_table

from repro.schema.evolution import (
    AddAttribute,
    EvolvingTable,
    RenameAttribute,
    RetypeAttribute,
    SplitAttribute,
)
from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.types import Column, ColumnType, TableSchema


def _schema():
    return TableSchema(
        "entities",
        (Column("id", ColumnType.INT, nullable=False),
         Column("full_name", ColumnType.TEXT),
         Column("score", ColumnType.TEXT)),
        primary_key="id",
    )


def _table(lazy, rows=300):
    db = Database()
    table = EvolvingTable(db, _schema(), lazy=lazy)
    for i in range(rows):
        table.insert({"id": i, "full_name": f"First{i} Last{i}",
                      "score": str(i % 100)})
    return table


def _changes(k):
    changes = []
    for i in range(k):
        changes.append(
            AddAttribute(Column(f"extra_{i}", ColumnType.INT), default=i)
        )
    return changes


def test_e12_eager_vs_lazy_rewrites(benchmark):
    rows_out = []
    n = 300
    for k in (1, 2, 4, 8):
        eager = _table(lazy=False, rows=n)
        for change in _changes(k):
            eager.evolve(change)
        lazy = _table(lazy=True, rows=n)
        for change in _changes(k):
            lazy.evolve(change)
        lazy.flush()
        rows_out.append([k, eager.rows_rewritten, lazy.rows_rewritten])
    write_table(
        "e12_rewrites",
        f"E12: rows physically rewritten for k schema changes (N = {n})",
        ["changes k", "eager rewrites (k*N)", "lazy rewrites (N)"],
        rows_out,
    )
    for k, eager_rw, lazy_rw in rows_out:
        assert eager_rw == k * n
        assert lazy_rw == n

    counter = iter(range(10_000_000))

    def fresh_table():
        return (_table(lazy=False, rows=50),), {}

    benchmark.pedantic(
        lambda table: table.evolve(
            AddAttribute(Column(f"bench_{next(counter)}", ColumnType.INT))
        ),
        setup=fresh_table,
        rounds=5,
    )


def test_e12_lazy_read_overhead(benchmark):
    lazy = _table(lazy=True, rows=300)
    for change in _changes(4):
        lazy.evolve(change)
    assert lazy.pending_changes == 4

    started = time.perf_counter()
    rows = lazy.rows()
    adapter_time = time.perf_counter() - started
    assert all(f"extra_3" in r for r in rows)

    lazy.flush()
    started = time.perf_counter()
    lazy.rows()
    flushed_time = time.perf_counter() - started
    write_table(
        "e12b_read_overhead",
        "E12b: lazy read path (300 rows, 4 pending changes)",
        ["state", "read seconds"],
        [["4 pending adapters", adapter_time],
         ["after flush", flushed_time]],
    )
    benchmark(lazy.rows)


def test_e12_full_evolution_scenario(benchmark):
    """The realistic sequence an incrementally grown schema goes through."""
    def scenario():
        table = _table(lazy=True, rows=100)
        table.evolve(AddAttribute(Column("seen_count", ColumnType.INT),
                                  default=0))
        table.evolve(RenameAttribute("seen_count", "mention_count"))
        table.evolve(SplitAttribute(
            "full_name",
            (Column("first", ColumnType.TEXT), Column("last", ColumnType.TEXT)),
            splitter=lambda v: dict(zip(("first", "last"), v.split(None, 1))),
        ))
        table.evolve(RetypeAttribute("score", ColumnType.FLOAT,
                                     converter=float))
        table.flush()
        return table

    table = scenario()
    rows = table.rows()
    assert {"id", "first", "last", "score", "mention_count"} <= set(rows[0])
    assert isinstance(rows[0]["score"], float)
    assert table.rows_rewritten == 100  # one composed pass
    write_table(
        "e12c_scenario",
        "E12c: add -> rename -> split -> retype, lazily composed",
        ["metric", "value"],
        [["schema versions", 5],
         ["rows rewritten (one pass)", table.rows_rewritten],
         ["final columns", len(table.logical_schema.columns)]],
    )
    benchmark.pedantic(scenario, rounds=3)
