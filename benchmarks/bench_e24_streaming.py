"""E24 — streaming DGE: O(delta) incremental maintenance under churn.

The perf claim of the PR: once the corpus is seeded, a churn batch
touching 1% of the documents re-scores a pair count proportional to the
*delta's* blocking neighborhoods — at least 10x below what a full
re-resolution of the corpus would score — while the incrementally
maintained state stays byte-identical to a full recompute.

Checked invariants (recorded as machine-readable ``gates``):
  * **pairs_ratio >= 10** — full re-resolution pair count over the mean
    per-batch incremental pair count at 1% churn (non-smoke only);
  * **cluster / fused / notification identity** — after every delta
    batch, the incremental clusters, the fused values, and the standing-
    query notifications are byte-identical (``json.dumps`` with
    ``sort_keys``) to a full recompute oracle;
  * **backpressure** — with a producer running far faster than the
    consumer over a small bounded queue, the observed queue depth never
    exceeds the bound and every submitted delta is processed (nothing
    dropped, memory stays bounded).

The report also carries a micro-benchmark of the attribute-dict hoist in
pair scoring (pre-materialized dicts vs two ``attr_dict()`` calls per
pair), which is not gated.

Run standalone (writes ``results/BENCH_e24.json``)::

    PYTHONPATH=src python benchmarks/bench_e24_streaming.py
    PYTHONPATH=src python benchmarks/bench_e24_streaming.py --smoke

or via pytest: ``pytest benchmarks/bench_e24_streaming.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

from _tables import write_table

from repro.core.streaming import DocDelta, StreamingPipeline
from repro.docmodel.document import Document, Span
from repro.extraction.base import Extraction
from repro.integration.entity_resolution import EntityResolver
from repro.storage.rdbms.engine import Database
from repro.storage.rdbms.sql import execute_sql
from repro.userlayer.monitoring import ContinuousQuery, ContinuousQueryManager

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_e24.json")

GIVEN_VARIANTS = ("Maria", "M.", "Mari", "Mary", "Marya")
ATTRS = ("age", "city", "score")
CITIES = ("Ur", "Kish", "Lagash", "Nippur")


class PersonExtractor:
    """Parses ``entity<TAB>attribute<TAB>value`` lines (bench corpus)."""

    def extract(self, doc):
        out = []
        offset = 0
        for line in doc.text.splitlines(keepends=True):
            stripped = line.rstrip("\n")
            parts = stripped.split("\t")
            if len(parts) == 3:
                entity, attribute, raw = parts
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
                out.append(Extraction(
                    entity=entity, attribute=attribute, value=value,
                    span=Span(doc.doc_id, offset, offset + len(stripped),
                              stripped),
                    confidence=0.9, extractor="person",
                ))
            offset += len(line)
        return out


def surname_blocking_key(mention):
    """Block on the full surname token — many small blocks, the regime
    the paper's incremental-maintenance argument assumes."""
    return mention.name.rsplit(" ", 1)[-1].lower()


def make_doc(doc_id: str, identity: int, surnames: list[str],
             rng: random.Random) -> Document:
    """One document describing one person identity, with value noise."""
    surname = surnames[identity % len(surnames)]
    name = f"{rng.choice(GIVEN_VARIANTS)} {surname}"
    age = 20 + identity % 60 + (1 if rng.random() < 0.2 else 0)
    lines = [f"{name}\tage\t{age}",
             f"{name}\tcity\t{rng.choice(CITIES)}"]
    if rng.random() < 0.5:
        lines.append(f"{name}\tscore\t{rng.randrange(1, 5)}")
    return Document(doc_id, "\n".join(lines))


def full_resolution_pairs(pipeline: StreamingPipeline) -> int:
    """Pairs a from-scratch batch resolution of the live mentions scores."""
    key = pipeline.resolver.resolver.blocking_key
    blocks: dict = {}
    for mention in pipeline.resolver.mentions():
        blocks[key(mention)] = blocks.get(key(mention), 0) + 1
    return sum(n * (n - 1) // 2 for n in blocks.values())


def clusters_json(clusters) -> str:
    return json.dumps(sorted(
        (tuple(sorted(c.mention_ids)), c.canonical_name)
        for c in clusters), sort_keys=True)


def fused_values_json(values) -> str:
    return json.dumps(
        [{"entity": v.entity, "attribute": v.attribute,
          "value": repr(v.value), "confidence": round(v.confidence, 12),
          "support": v.support, "conflict": v.conflict,
          "spans": [(s.doc_id, s.start, s.end) for s in v.spans]}
         for v in values], sort_keys=True)


def result_set(db: Database) -> set[str]:
    rows = execute_sql(
        db, "SELECT entity, attribute, value_num, value_text, support "
            "FROM fused_facts")
    return {json.dumps(r, sort_keys=True) for r in rows}


def build_pipeline(db: Database) -> StreamingPipeline:
    return StreamingPipeline(
        db, {"person": PersonExtractor()},
        resolver=EntityResolver(blocking_key=surname_blocking_key),
    )


def bench_churn(num_docs: int, num_surnames: int, churn_batches: int,
                churn_fraction: float) -> dict:
    """Seed the corpus, then run churn batches with identity checks."""
    rng = random.Random(24)
    surnames = [f"Surname{i:04d}" for i in range(num_surnames)]
    db = Database()
    pipeline = build_pipeline(db)
    manager = ContinuousQueryManager(db)
    notifications: list[dict] = []
    manager.register(ContinuousQuery(
        "e24", "SELECT entity, attribute, value_num, value_text, support "
               "FROM fused_facts",
        callback=lambda qid, row: notifications.append(row)))

    live: dict[str, int] = {}  # doc_id -> identity
    next_doc = 0
    seed = []
    for _ in range(num_docs):
        doc_id = f"d{next_doc}"
        identity = rng.randrange(num_docs // 3 + 1)
        live[doc_id] = identity
        seed.append(make_doc(doc_id, identity, surnames, rng))
        next_doc += 1
    t0 = time.perf_counter()
    pipeline.process(DocDelta(added=tuple(seed)))
    seed_seconds = time.perf_counter() - t0
    seed_pairs = pipeline.stats.pairs_scored

    prev_results = result_set(db)
    batch_rows = []
    identity_failures = 0
    batch_size = max(1, int(num_docs * churn_fraction))
    for batch in range(churn_batches):
        notifications.clear()
        doc_ids = sorted(live)
        changed, removed, added = [], [], []
        for doc_id in rng.sample(doc_ids, min(batch_size, len(doc_ids))):
            roll = rng.random()
            if roll < 0.4:
                changed.append(make_doc(doc_id, live[doc_id], surnames, rng))
            elif roll < 0.7:
                removed.append(doc_id)
                del live[doc_id]
            else:
                changed.append(make_doc(doc_id, rng.randrange(
                    num_docs // 3 + 1), surnames, rng))
        for _ in range(len(removed)):  # keep the corpus size steady
            doc_id = f"d{next_doc}"
            identity = rng.randrange(num_docs // 3 + 1)
            live[doc_id] = identity
            added.append(make_doc(doc_id, identity, surnames, rng))
            next_doc += 1
        for doc in changed:
            live[doc.doc_id] = live.get(doc.doc_id, 0)

        pairs_before = pipeline.stats.pairs_scored
        t0 = time.perf_counter()
        pipeline.process(DocDelta(tuple(added), tuple(changed),
                                  tuple(removed)))
        batch_seconds = time.perf_counter() - t0
        batch_pairs = pipeline.stats.pairs_scored - pairs_before
        full_pairs = full_resolution_pairs(pipeline)

        # identity gates: clusters, fused values, notifications
        clusters_ok = (clusters_json(pipeline.resolver.clusters())
                       == clusters_json(pipeline.oracle_clusters()))
        fused_ok = (fused_values_json(pipeline.fused_values())
                    == fused_values_json(pipeline.oracle_fused()))
        current = result_set(db)
        got = sorted(json.dumps(r, sort_keys=True) for r in notifications)
        notify_ok = got == sorted(current - prev_results)
        prev_results = current
        if not (clusters_ok and fused_ok and notify_ok):
            identity_failures += 1
        batch_rows.append({
            "batch": batch,
            "delta_docs": len(added) + len(changed) + len(removed),
            "pairs_scored": batch_pairs,
            "full_resolution_pairs": full_pairs,
            "pairs_ratio": (full_pairs / batch_pairs
                            if batch_pairs else float(full_pairs)),
            "seconds": batch_seconds,
            "clusters_identical": clusters_ok,
            "fused_identical": fused_ok,
            "notifications_identical": notify_ok,
        })

    mean_batch_pairs = (sum(b["pairs_scored"] for b in batch_rows)
                       / len(batch_rows))
    return {
        "num_docs": num_docs,
        "num_surnames": num_surnames,
        "churn_fraction": churn_fraction,
        "seed_seconds": seed_seconds,
        "seed_pairs_scored": seed_pairs,
        "mean_batch_pairs": mean_batch_pairs,
        "full_resolution_pairs": batch_rows[-1]["full_resolution_pairs"],
        "pairs_ratio": (batch_rows[-1]["full_resolution_pairs"]
                        / mean_batch_pairs if mean_batch_pairs else 0.0),
        "identity_failures": identity_failures,
        "batches": batch_rows,
    }


def bench_backpressure(deltas: int, queue_size: int) -> dict:
    """A producer ~5x faster than the consumer over a bounded queue."""

    consumer_delay = 0.004

    class SlowExtractor(PersonExtractor):
        def extract(self, doc):
            time.sleep(consumer_delay)
            return super().extract(doc)

    rng = random.Random(42)
    surnames = [f"Surname{i:04d}" for i in range(40)]
    db = Database()
    pipeline = StreamingPipeline(
        db, {"person": SlowExtractor()},
        resolver=EntityResolver(blocking_key=surname_blocking_key),
        queue_size=queue_size)
    pipeline.start()
    t0 = time.perf_counter()
    for i in range(deltas):
        doc = make_doc(f"d{i}", i % 60, surnames, rng)
        pipeline.submit(DocDelta(added=(doc,)))
        time.sleep(consumer_delay / 5)  # the producer's own (faster) pace
    submit_seconds = time.perf_counter() - t0
    pipeline.stop()
    fused_ok = (fused_values_json(pipeline.fused_values())
                == fused_values_json(pipeline.oracle_fused()))
    return {
        "deltas_submitted": deltas,
        "deltas_processed": pipeline.stats.deltas_in,
        "queue_size": queue_size,
        "max_queue_depth": pipeline.stats.max_queue_depth,
        "submit_seconds": submit_seconds,
        "producer_throttled": submit_seconds > consumer_delay * deltas * 0.5,
        "fused_identical_after_drain": fused_ok,
    }


def bench_attr_hoist(block_size: int) -> dict:
    """Micro-benchmark: the attribute-dict hoist in pair scoring."""
    from repro.integration.entity_resolution import Mention

    rng = random.Random(7)
    mentions = [
        Mention(i, f"{rng.choice(GIVEN_VARIANTS)} Surname0000",
                tuple((a, rng.randrange(5)) for a in ATTRS))
        for i in range(block_size)]
    resolver = EntityResolver()

    t0 = time.perf_counter()
    for i in range(len(mentions)):
        for j in range(i + 1, len(mentions)):
            resolver.score_pair(mentions[i], mentions[j])  # 2 attr_dicts/pair
    per_pair_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    attrs = [m.attr_dict() for m in mentions]  # hoisted: once per mention
    for i in range(len(mentions)):
        for j in range(i + 1, len(mentions)):
            resolver._score_with_attrs(mentions[i], mentions[j],
                                       attrs[i], attrs[j])
    hoisted_seconds = time.perf_counter() - t0
    return {
        "block_size": block_size,
        "pairs": block_size * (block_size - 1) // 2,
        "per_pair_attr_dict_seconds": per_pair_seconds,
        "hoisted_seconds": hoisted_seconds,
        "speedup": (per_pair_seconds / hoisted_seconds
                    if hoisted_seconds else 1.0),
    }


def _gate(name: str, actual: float, op: str, threshold: float) -> dict:
    ops = {">=": actual >= threshold, "<=": actual <= threshold,
           "==": actual == threshold}
    return {"name": name, "actual": float(actual), "op": op,
            "threshold": threshold, "pass": ops[op]}


def run_bench(num_docs: int = 10_000, num_surnames: int = 1_500,
              churn_batches: int = 3, smoke: bool = False) -> dict:
    churn = bench_churn(num_docs, num_surnames, churn_batches,
                        churn_fraction=0.01)
    backpressure = bench_backpressure(deltas=40 if smoke else 120,
                                      queue_size=4)
    hoist = bench_attr_hoist(block_size=60 if smoke else 200)

    gates = [
        _gate("identity_failures", churn["identity_failures"], "==", 0.0),
        _gate("backpressure_depth_bound",
              backpressure["max_queue_depth"], "<=",
              backpressure["queue_size"]),
        _gate("backpressure_no_drops",
              backpressure["deltas_processed"], "==",
              backpressure["deltas_submitted"]),
        _gate("backpressure_fused_identity",
              1.0 if backpressure["fused_identical_after_drain"] else 0.0,
              "==", 1.0),
    ]
    if not smoke:
        gates.append(_gate("pairs_ratio", churn["pairs_ratio"], ">=", 10.0))

    write_table(
        "e24_streaming",
        f"E24: streaming DGE under churn ({num_docs} docs, "
        f"{num_surnames} surnames, {churn_batches} x 1% churn batches)",
        ["metric", "value"],
        [["seed pairs scored", churn["seed_pairs_scored"]],
         ["mean churn-batch pairs", churn["mean_batch_pairs"]],
         ["full re-resolution pairs", churn["full_resolution_pairs"]],
         ["pairs ratio (full/batch)", round(churn["pairs_ratio"], 1)],
         ["identity failures", churn["identity_failures"]],
         ["max queue depth / bound",
          f"{backpressure['max_queue_depth']}/{backpressure['queue_size']}"],
         ["deltas processed/submitted",
          f"{backpressure['deltas_processed']}"
          f"/{backpressure['deltas_submitted']}"],
         ["attr-hoist speedup", round(hoist["speedup"], 2)]],
    )

    payload = {
        "experiment": "e24_streaming",
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "churn": churn,
        "backpressure": backpressure,
        "attr_hoist": hoist,
        "gates": gates,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    print(f"\nwrote {JSON_PATH}")

    for gate in gates:
        assert gate["pass"], (
            f"{gate['name']}: {gate['actual']:.3f} violates "
            f"{gate['op']} {gate['threshold']}"
        )
    return payload


# --------------------------------------------------------------- pytest


def test_e24_smoke():
    """Small-scale E24: identity + backpressure invariants, no ratio gate."""
    payload = run_bench(num_docs=400, num_surnames=80, churn_batches=2,
                        smoke=True)
    assert payload["churn"]["identity_failures"] == 0
    assert payload["backpressure"]["deltas_processed"] \
        == payload["backpressure"]["deltas_submitted"]
    assert payload["backpressure"]["max_queue_depth"] \
        <= payload["backpressure"]["queue_size"]


# ----------------------------------------------------------------- main


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--docs", type=int, default=10_000,
                        help="corpus size (documents)")
    parser.add_argument("--surnames", type=int, default=1_500,
                        help="distinct surname blocking keys")
    parser.add_argument("--batches", type=int, default=3,
                        help="1%% churn batches after the seed")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload, identity gates only")
    args = parser.parse_args(argv)
    if args.smoke:
        args.docs = min(args.docs, 400)
        args.surnames = min(args.surnames, 80)
        args.batches = min(args.batches, 2)
    payload = run_bench(num_docs=args.docs, num_surnames=args.surnames,
                        churn_batches=args.batches, smoke=args.smoke)
    churn = payload["churn"]
    print(f"seed: {churn['seed_pairs_scored']} pairs in "
          f"{churn['seed_seconds']:.2f}s; churn batches: "
          f"{churn['mean_batch_pairs']:.0f} pairs vs "
          f"{churn['full_resolution_pairs']} full "
          f"({churn['pairs_ratio']:.1f}x), "
          f"identity failures {churn['identity_failures']}")
    bp = payload["backpressure"]
    print(f"backpressure: depth {bp['max_queue_depth']}/{bp['queue_size']}, "
          f"{bp['deltas_processed']}/{bp['deltas_submitted']} processed, "
          f"throttled={bp['producer_throttled']}")
    print(f"attr hoist: {payload['attr_hoist']['speedup']:.2f}x over "
          f"per-pair attr_dict construction")
    return 0


if __name__ == "__main__":
    sys.exit(main())
