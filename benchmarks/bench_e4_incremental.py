"""E4 — Incremental, best-effort structure generation.

Paper anchor: Section 3.2 — "a user looking for a new job may start out
extracting only monthly temperatures ... later ... may want to also
extract city populations, and so on."

Reported series: cumulative extraction cost (cost-weighted characters
scanned) after each demand step, for the incremental strategy vs the
one-shot extract-everything strategy.  Incremental cost grows with the
information need and stays below one-shot whenever some registered
attribute is never demanded.
"""

from _tables import write_table

from repro.core.incremental import IncrementalExtractionManager
from repro.datagen.cities import CityCorpusConfig, generate_city_corpus
from repro.extraction.infobox import InfoboxExtractor
from repro.extraction.normalize import MONTHS
from repro.extraction.regex_extractor import RegexExtractor
from repro.extraction.normalize import normalize_number

TEMP_ATTRS = [f"{m[:3]}_temp" for m in MONTHS]


def _manager(num_cities=30):
    corpus, truth = generate_city_corpus(
        CityCorpusConfig(num_cities=num_cities, seed=71, styles=("infobox",))
    )
    manager = IncrementalExtractionManager(corpus=list(corpus))
    manager.register(
        "temps", InfoboxExtractor(include_fields=tuple(TEMP_ATTRS)),
        attributes=TEMP_ATTRS,
    )
    manager.register(
        "population",
        RegexExtractor(pattern=r"population = (?P<population>[\d,]+)",
                       normalizers={"population": normalize_number},
                       cost_per_char=1.5),
        attributes=["population"],
    )
    manager.register(
        "state",
        RegexExtractor(pattern=r"state = (?P<state>[A-Za-z ]+)",
                       cost_per_char=1.5),
        attributes=["state"],
    )
    manager.register(
        "expensive_unused",
        RegexExtractor(pattern=r"(?P<festival>festival)", cost_per_char=8.0),
        attributes=["festival"],
    )
    return manager, truth


def test_e4_incremental_vs_one_shot(benchmark):
    incremental, _ = _manager()
    rows = []
    steps = [
        ("demand sep_temp (job hunt begins)", ["sep_temp"]),
        ("demand all monthly temps", TEMP_ATTRS),
        ("demand population (filter > 500k)", ["population"]),
        ("demand state", ["state"]),
    ]
    for label, attrs in steps:
        facts = incremental.demand(attrs)
        rows.append([label, len(facts), incremental.work_done])

    one_shot, _ = _manager()
    one_shot.extract_all()
    rows.append(["one-shot extract everything",
                 len(one_shot.cached()), one_shot.work_done])
    write_table(
        "e4_incremental",
        "E4: cumulative extraction cost, incremental vs one-shot "
        "(cost-weighted chars scanned)",
        ["step", "facts available", "cumulative cost"],
        rows,
    )
    # incremental never exceeded one-shot, and saved the unused extractor
    assert rows[-2][2] < rows[-1][2]
    # the curve is monotone: each demand only adds cost
    costs = [r[2] for r in rows[:-1]]
    assert costs == sorted(costs)
    # re-demanding is free
    before = incremental.work_done
    incremental.demand(["sep_temp"])
    assert incremental.work_done == before

    fresh, _ = _manager()
    benchmark(lambda: fresh.demand(["sep_temp"]) if not fresh.demanded_attributes()
              else fresh.demand(["sep_temp"]))


def test_e4_cost_scales_with_corpus(benchmark):
    rows = []
    for n in (10, 20, 40):
        manager, _ = _manager(num_cities=n)
        manager.demand(["sep_temp"])
        rows.append([n, manager.work_done])
    write_table(
        "e4b_cost_vs_corpus",
        "E4b: incremental first-demand cost vs corpus size",
        ["cities", "cost"],
        rows,
    )
    assert rows[0][1] < rows[1][1] < rows[2][1]
    manager, _ = _manager(num_cities=10)
    benchmark(manager.extract_all)
