"""E2 — Human feedback improves integration accuracy; mass collaboration
beats a single user.

Paper anchor: Section 3.2 — "applications often want to have a human in
the loop, to help improve the accuracy of the underlying automatic IE/II
techniques ... it may be highly beneficial to allow a multitude of users
... to provide feedback, in a mass collaboration fashion."

Reported series:
  (a) entity-resolution pairwise F1 vs HI feedback budget (0..80 pairs);
  (b) F1 vs crowd size at a fixed budget (1, 3, 5, 9 workers);
  (c) ablation: majority vote vs reputation-weighted vote with a sloppy
      crowd;
  (d) ablation: blocking on/off (candidate-pair counts and F1).
"""

from _tables import write_table

from repro.datagen.people import PeopleCorpusConfig, generate_people_corpus
from repro.hi.aggregate import aggregate_majority, aggregate_weighted
from repro.hi.crowd import SimulatedCrowd
from repro.hi.reputation import ReputationManager
from repro.hi.tasks import VerifyMatchTask
from repro.integration.entity_resolution import (
    EntityResolver,
    MatchConstraints,
    Mention,
)


def _workload(seed=61):
    _, people, _ = generate_people_corpus(
        PeopleCorpusConfig(num_people=30, mentions_per_person=3,
                           confusable_fraction=0.5, seed=seed)
    )
    mentions, truth_of = [], {}
    mid = 0
    for person in people:
        for variant in person.variants()[:3]:
            mentions.append(Mention(mid, variant))
            truth_of[mid] = person.person_id
            mid += 1
    return mentions, truth_of


def pairwise_f1(clusters, truth_of):
    predicted = {
        (a, b)
        for cluster in clusters
        for i, a in enumerate(cluster.mention_ids)
        for b in cluster.mention_ids[i + 1:]
    }
    ids = sorted(truth_of)
    actual = {
        (ids[i], ids[j])
        for i in range(len(ids)) for j in range(i + 1, len(ids))
        if truth_of[ids[i]] == truth_of[ids[j]]
    }
    tp = len(predicted & actual)
    if not tp:
        return 0.0
    precision, recall = tp / len(predicted), tp / len(actual)
    return 2 * precision * recall / (precision + recall)


def _feedback_constraints(resolver, mentions, truth_of, crowd, budget,
                          redundancy, weighted=False, reputation=None):
    constraints = MatchConstraints()
    for pair in resolver.uncertain_pairs(mentions, band=0.15, limit=budget):
        truth = truth_of[pair.left] == truth_of[pair.right]
        task = VerifyMatchTask(task_id=f"{pair.left}-{pair.right}", prompt="")
        responses = crowd.ask(task, truth, redundancy=redundancy)
        if weighted and reputation is not None:
            answer, _ = aggregate_weighted(responses, reputation.weights())
            reputation.record_agreement(responses, answer)
        else:
            answer, _ = aggregate_majority(responses)
        if answer:
            constraints.add_must(pair.left, pair.right)
        else:
            constraints.add_cannot(pair.left, pair.right)
    return constraints


def test_e2_f1_vs_feedback_budget(benchmark):
    mentions, truth_of = _workload()
    resolver = EntityResolver(threshold=0.86)
    crowd = SimulatedCrowd.uniform(5, accuracy=0.92, seed=5)
    rows = []
    for budget in (0, 10, 20, 40, 80):
        constraints = _feedback_constraints(
            resolver, mentions, truth_of, crowd, budget, redundancy=5
        )
        f1 = pairwise_f1(resolver.resolve(mentions, constraints), truth_of)
        rows.append([budget, len(constraints), f1])
    write_table(
        "e2a_f1_vs_budget",
        "E2a: ER pairwise F1 vs HI feedback budget (crowd of 5 @ 0.92)",
        ["feedback pairs", "constraints", "F1"],
        rows,
    )
    assert rows[-1][2] > rows[0][2]

    constraints = _feedback_constraints(
        resolver, mentions, truth_of, crowd, 40, redundancy=5
    )
    benchmark(lambda: resolver.resolve(mentions, constraints))


def test_e2_decision_accuracy_vs_crowd_size(benchmark):
    """Mass collaboration: the fraction of HI decisions that match the
    truth grows with the number of redundant workers per question."""
    mentions, truth_of = _workload(seed=62)
    resolver = EntityResolver(threshold=0.86)
    pairs = resolver.uncertain_pairs(mentions, band=0.2, limit=60)
    rows = []
    for size in (1, 3, 5, 9):
        correct = total = 0
        for trial in range(4):  # average over crowds
            crowd = SimulatedCrowd.uniform(size, accuracy=0.75,
                                           seed=100 * trial + size)
            for pair in pairs:
                truth = truth_of[pair.left] == truth_of[pair.right]
                task = VerifyMatchTask(
                    task_id=f"t{trial}-{pair.left}-{pair.right}", prompt=""
                )
                answer, _ = aggregate_majority(crowd.ask(task, truth))
                total += 1
                if answer == truth:
                    correct += 1
        rows.append([size, correct / total])
    write_table(
        "e2b_decision_accuracy_vs_crowd_size",
        "E2b: HI decision accuracy vs crowd size (workers @ 0.75)",
        ["crowd size", "decision accuracy"],
        rows,
    )
    assert rows[-1][1] > rows[0][1]
    benchmark(lambda: pairwise_f1(resolver.resolve(mentions), truth_of))


def test_e2_vote_aggregation_ablation(benchmark):
    mentions, truth_of = _workload(seed=63)
    resolver = EntityResolver(threshold=0.86)
    # a sloppy crowd: two good workers, three coin-flippers
    accuracies = [0.95, 0.95, 0.55, 0.52, 0.5]
    rows = []
    for label, weighted in (("majority vote", False),
                            ("reputation-weighted", True)):
        crowd = SimulatedCrowd.mixed(accuracies, seed=17)
        reputation = ReputationManager()
        if weighted:
            # calibrate on gold questions first
            for i, pair in enumerate(
                resolver.uncertain_pairs(mentions, limit=15)
            ):
                truth = truth_of[pair.left] == truth_of[pair.right]
                task = VerifyMatchTask(task_id=f"g{i}", prompt="")
                for response in crowd.ask(task, truth):
                    reputation.record_gold(response.worker_id,
                                           response.answer == truth)
        constraints = _feedback_constraints(
            resolver, mentions, truth_of, crowd, budget=40, redundancy=5,
            weighted=weighted, reputation=reputation,
        )
        f1 = pairwise_f1(resolver.resolve(mentions, constraints), truth_of)
        rows.append([label, f1])
    write_table(
        "e2c_vote_ablation",
        "E2c: aggregation ablation with a sloppy crowd "
        "(accuracies 0.95/0.95/0.55/0.52/0.50)",
        ["aggregation", "F1"],
        rows,
    )
    assert rows[1][1] >= rows[0][1]
    benchmark(lambda: resolver.candidate_pairs(mentions))


def test_e2_blocking_ablation(benchmark):
    mentions, truth_of = _workload(seed=64)
    rows = []
    for label, key in (("with blocking", "default"), ("all pairs", None)):
        resolver = (EntityResolver(threshold=0.86) if key == "default"
                    else EntityResolver(threshold=0.86, blocking_key=None))
        pairs = resolver.candidate_pairs(mentions)
        f1 = pairwise_f1(resolver.resolve(mentions), truth_of)
        rows.append([label, len(pairs), f1])
    write_table(
        "e2d_blocking_ablation",
        "E2d: blocking ablation (pairs scored vs resulting F1)",
        ["variant", "pairs scored", "F1"],
        rows,
    )
    assert rows[0][1] < rows[1][1]  # blocking prunes pairs
    assert abs(rows[0][2] - rows[1][2]) < 0.1  # with little quality loss
    resolver = EntityResolver(threshold=0.86)
    benchmark(lambda: resolver.candidate_pairs(mentions))
