"""E3 — Recognition vs generation: candidate narrowing.

Paper anchor: Section 3.3 — "often narrowing the set of potential matches
to a manageable number allows users to spot the correct match, when they
would be swamped by the total number of potential matches ... users are
much better at recognizing when a query form matches their information
need than at writing the equivalent SQL query from scratch."

Reported series: task success rate vs the number of candidates shown
(ranked list, correct answer present), against the unaided *generation*
baseline.  The narrowing curve should stay high up to the human attention
budget and collapse beyond it; generation should be far below recognition
at manageable list sizes.
"""

from _tables import write_table

from repro.hi.aggregate import aggregate_majority
from repro.hi.crowd import SimulatedCrowd
from repro.hi.tasks import GenerateAnswerTask, SelectCandidateTask

TRIALS = 150


def _success_rate_selection(crowd, k, correct_rank, trials=TRIALS):
    hits = 0
    for i in range(trials):
        candidates = tuple(
            "correct-answer" if j == correct_rank % k else f"distractor-{j}"
            for j in range(k)
        )
        task = SelectCandidateTask(task_id=f"sel-{k}-{i}", prompt="",
                                   candidates=candidates)
        responses = crowd.ask(task, truth="correct-answer", redundancy=3)
        answer, _ = aggregate_majority(responses)
        if answer == candidates.index("correct-answer"):
            hits += 1
    return hits / trials


def _success_rate_generation(crowd, trials=TRIALS):
    hits = 0
    for i in range(trials):
        task = GenerateAnswerTask(task_id=f"gen-{i}", prompt="")
        responses = crowd.ask(task, truth="correct-answer", redundancy=3)
        answer, _ = aggregate_majority(responses)
        if answer == "correct-answer":
            hits += 1
    return hits / trials


def test_e3_narrowing_curve(benchmark):
    crowd = SimulatedCrowd.uniform(
        3, accuracy=0.92, attention_budget=8, generation_skill=0.2, seed=33
    )
    rows = []
    for k in (1, 2, 4, 8, 16, 32, 64):
        # correct answer placed mid-list so long lists push it past budget
        rate = _success_rate_selection(crowd, k, correct_rank=k // 2)
        rows.append([f"select from {k}", rate])
    generation = _success_rate_generation(crowd)
    rows.append(["generate from scratch", generation])
    write_table(
        "e3_candidate_narrowing",
        "E3: task success vs candidate-list length "
        "(attention budget 8, accuracy 0.92, 3-worker majority)",
        ["task", "success rate"],
        rows,
    )
    small_k = rows[2][1]   # k = 4
    large_k = rows[6][1]   # k = 64
    assert small_k > 0.85
    assert large_k < 0.3        # swamped beyond the attention budget
    assert small_k > generation + 0.3  # recognition >> generation

    benchmark(lambda: _success_rate_selection(crowd, 8, 4, trials=20))


def test_e3_narrowing_helps_even_weak_workers(benchmark):
    """The principle holds for less reliable users too — the curve shifts
    down but the recognition-vs-generation gap persists."""
    crowd = SimulatedCrowd.uniform(
        3, accuracy=0.7, attention_budget=6, generation_skill=0.1, seed=34
    )
    narrow = _success_rate_selection(crowd, 4, correct_rank=2)
    wide = _success_rate_selection(crowd, 48, correct_rank=24)
    generation = _success_rate_generation(crowd)
    write_table(
        "e3b_weak_workers",
        "E3b: weak workers (accuracy 0.7, budget 6)",
        ["task", "success rate"],
        [["select from 4", narrow], ["select from 48", wide],
         ["generate from scratch", generation]],
    )
    assert narrow > wide
    assert narrow > generation
    benchmark(lambda: _success_rate_generation(crowd, trials=20))
