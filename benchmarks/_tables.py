"""Shared table reporting for the experiment benchmarks.

Every experiment prints its rows (the series a paper table/figure would
show) and also writes them to ``benchmarks/results/<name>.txt`` so the
numbers survive pytest's output capturing.  EXPERIMENTS.md records the
measured values from these files.
"""

from __future__ import annotations

import os
from typing import Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_table(name: str, title: str, headers: Sequence[str],
                rows: Sequence[Sequence[object]]) -> str:
    """Format, print, and persist one experiment table; returns the text."""
    widths = [
        max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [title]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(_fmt(cell).ljust(w) for cell, w in zip(row, widths))
        )
    text = "\n".join(lines)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, name + ".txt"), "w",
              encoding="utf-8") as f:
        f.write(text + "\n")
    print("\n" + text)
    return text


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
